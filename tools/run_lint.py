#!/usr/bin/env python
"""CI entry point for the repro static-analysis pass.

Runs the lint rule set over ``src/repro`` against the committed baseline
and exits non-zero on any *new* finding.  Equivalent to::

    python -m repro lint src/repro --baseline tools/lint_baseline.json

Refresh the baseline after deliberately accepting findings with::

    python tools/run_lint.py --update-baseline

Exit codes (shared with ``python -m repro lint``):

* ``0`` -- no new findings (baselined findings do not fail the run, and
  ``--update-baseline`` always exits 0 after rewriting the baseline)
* ``1`` -- at least one finding not covered by the baseline
* ``2`` -- usage or configuration error (unknown rule id, missing path,
  ``--profile`` combined with ``--select``)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"
DEFAULT_PATHS = [str(REPO_ROOT / "src" / "repro")]


def main(argv: list[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument("--select", default=None)
    parser.add_argument(
        "--profile",
        choices=["all", "arrays", "conc", "grad", "perf"],
        default=None,
        help="named rule family shortcut (mutually exclusive with --select)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-write the baseline from the current findings",
    )
    args = parser.parse_args(argv)

    from repro.cli import main as repro_main

    forwarded = ["lint", *args.paths, "--baseline", args.baseline]
    forwarded += ["--format", args.format]
    if args.select:
        forwarded += ["--select", args.select]
    if args.profile:
        forwarded += ["--profile", args.profile]
    if args.update_baseline:
        forwarded.append("--write-baseline")
    return repro_main(forwarded)


if __name__ == "__main__":
    raise SystemExit(main())
