"""Assemble EXPERIMENTS.md from the template + benchmarks/results/*.txt.

Usage:  python tools/build_experiments.py

Replaces ``{{name}}`` placeholders in ``tools/EXPERIMENTS.template.md``
with the content of ``benchmarks/results/<name>.txt`` (fenced as code)
and writes the result to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TEMPLATE = ROOT / "tools" / "EXPERIMENTS.template.md"
RESULTS = ROOT / "benchmarks" / "results"
OUTPUT = ROOT / "EXPERIMENTS.md"


def main() -> int:
    text = TEMPLATE.read_text(encoding="utf-8")
    missing: list[str] = []

    def substitute(match: re.Match[str]) -> str:
        name = match.group(1)
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            return f"*(results file {name}.txt not found — run the benchmarks)*"
        return "```\n" + path.read_text(encoding="utf-8").rstrip() + "\n```"

    rendered = re.sub(r"\{\{(\w+)\}\}", substitute, text)
    OUTPUT.write_text(rendered, encoding="utf-8")
    if missing:
        print(f"WARNING: missing results: {', '.join(missing)}", file=sys.stderr)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
