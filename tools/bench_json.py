"""Machine-readable benchmark output (the ``BENCH_*.json`` files).

The text tables under ``benchmarks/results`` are for humans; CI and the
tracking scripts want stable JSON.  :func:`write_bench_json` wraps a
bench's metric dict with the environment block (interpreter, numpy,
cpu count) every measurement needs for interpretation, and writes it
atomically so a crashed bench never leaves a truncated file behind.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from pathlib import Path


def environment_info() -> dict:
    """Interpreter / numpy / host facts that contextualise timings."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def write_bench_json(path: str | Path, name: str, metrics: dict) -> Path:
    """Write ``{name, generated, environment, metrics}`` to ``path``.

    Returns the path written.  The write goes through a ``.tmp`` sibling
    plus rename, so readers never observe a partial file.
    """
    path = Path(path)
    payload = {
        "name": name,
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "environment": environment_info(),
        "metrics": metrics,
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path
