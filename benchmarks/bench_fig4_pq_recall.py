"""Figure 4 — recall of the compressed (PQ) index vs k.

Protocol: EL-NC (uncompressed) is the ground truth; recall@k is the
overlap between EL's and EL-NC's top-k result sets.

Paper shape: recall is comparatively low at k=1 and recovers toward 1.0
for the k=20-100 regime the applications use.
"""

import numpy as np
import pytest

from conftest import record_table
from repro.evaluation.metrics import index_recall_overlap
from repro.text.noise import NoiseModel
from repro.text.tokenize import normalize

KS = (1, 5, 10, 20, 50, 100)


@pytest.fixture(scope="module")
def recall_curve(kg_wikidata, el_wikidata, elnc_wikidata):
    noise = NoiseModel(seed=66)
    queries = [
        noise.corrupt(normalize(e.label))
        for e in list(kg_wikidata.entities())[:400]
    ]
    model = el_wikidata.model
    vectors = np.concatenate(
        [model.embed(queries[i : i + 256]) for i in range(0, len(queries), 256)]
    )
    k_max = max(KS)
    approx = el_wikidata.index.search(vectors, k_max)
    exact = elnc_wikidata.index.search(vectors, k_max)
    return {
        k: index_recall_overlap(approx.ids, exact.ids, k) for k in KS
    }


def test_fig4_pq_recall_vs_k(benchmark, recall_curve):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [[k, recall_curve[k]] for k in KS]
    record_table(
        "fig4_pq_recall",
        ["k", "recall (PQ vs exact)"],
        table,
        title="Figure 4: impact of compression on recall (EL vs EL-NC)",
    )

    # Shape 1: the curve recovers with k.
    assert recall_curve[100] > recall_curve[1]
    assert recall_curve[100] > recall_curve[5]
    # Shape 2: the application regime (k >= 20) is comfortable.
    assert recall_curve[20] > 0.6
    assert recall_curve[100] >= 0.7
    # Shape 3: monotone-ish (allow small wiggle).
    values = [recall_curve[k] for k in KS]
    for earlier, later in zip(values, values[2:]):
        assert later >= earlier - 0.05
