"""Table VIII — varying the embedding dimension (uncompressed index).

Paper shape (F clean / F error): 32-d drops sharply (0.64/0.56); 64-d is
the sweet spot (0.88/0.84); 128-d and 256-d add only slightly
(0.90/0.87, 0.91/0.88).  The index stores full embeddings (no PQ) to
isolate the dimension effect.
"""

import pytest

from conftest import BENCH_TRAIN_CONFIG, cached_emblookup, record_table
from repro.evaluation.metrics import candidate_recall_at_k
from repro.lookup.emblookup_service import EmbLookupService
from repro.text.noise import NoiseModel

from dataclasses import replace

DIMENSIONS = (16, 64, 128)   # scaled analogue of the paper's 32/64/128/256
K = 10


@pytest.fixture(scope="module")
def workload(ds_medium):
    refs = [r for r in ds_medium.annotated_cells() if ds_medium.cell_text(r)]
    clean = [ds_medium.cell_text(ref) for ref in refs]
    truth = [ds_medium.cea[ref] for ref in refs]
    noisy = [NoiseModel(seed=55).corrupt(q) for q in clean]
    return clean, noisy, truth


@pytest.fixture(scope="module")
def services_by_dim(kg_medium):
    services = {}
    for dim in DIMENSIONS:
        config = replace(
            BENCH_TRAIN_CONFIG,
            embedding_dim=dim,
            compression="none",
            pq_m=8 if dim % 8 == 0 else 4,
        )
        pipeline = cached_emblookup(f"el_medium_d{dim}", kg_medium, config)
        services[dim] = EmbLookupService(pipeline)
    return services


def _score(service, queries, truth):
    results = service.lookup_batch(queries, K)
    ids = [[c.entity_id for c in row] for row in results]
    return candidate_recall_at_k(ids, truth, K)


def test_table8_embedding_dimension(benchmark, services_by_dim, workload):
    clean, noisy, truth = workload

    def evaluate():
        return {
            dim: (_score(svc, clean, truth), _score(svc, noisy, truth))
            for dim, svc in services_by_dim.items()
        }

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    table = [
        [f"{dim}", clean_f, noisy_f]
        for dim, (clean_f, noisy_f) in sorted(scores.items())
    ]
    record_table(
        "table8_dimension",
        ["dimension", "F (no error)", "F (error)"],
        table,
        title="Table VIII: varying the embedding dimension (no compression)",
    )

    smallest = min(DIMENSIONS)
    default = 64
    largest = max(DIMENSIONS)
    # Shape 1: too-small dimension hurts, especially under errors.
    assert scores[default][1] > scores[smallest][1]
    # Shape 2: growing beyond the default gives at most marginal gains.
    assert scores[largest][0] <= scores[default][0] + 0.08
    assert scores[largest][1] >= scores[default][1] - 0.08
