"""Table I — statistics of the tabular benchmark datasets.

Paper values (full scale):     ST-Wikidata  ST-DBPedia  Tough Tables
  #Tables                      109K         14K         180
  Avg #Rows                    6.6          26.2        1080
  Avg #Cols                    4.1          5.1         804
  #Cells to annotate           2.03M        877K        663K

We regenerate the same *shape* at reproduction scale: ST-Wikidata has the
most tables, Tough Tables has by far the largest tables, and every dataset
carries complete CEA ground truth.
"""

from conftest import record_table


def test_table1_dataset_statistics(
    benchmark, ds_wikidata, ds_dbpedia, ds_tough
):
    def build():
        return [d.statistics() for d in (ds_wikidata, ds_dbpedia, ds_tough)]

    stats = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        [s.name, s.num_tables, s.avg_rows, s.avg_cols, s.cells_to_annotate]
        for s in stats
    ]
    record_table(
        "table1_datasets",
        ["dataset", "#tables", "avg_rows", "avg_cols", "#cells"],
        rows,
        title="Table I: statistics of the tabular datasets (repro scale)",
    )

    wikidata, dbpedia, tough = stats
    # Shape assertions mirroring the paper's Table I.
    assert wikidata.num_tables > dbpedia.num_tables > tough.num_tables
    assert tough.avg_rows > wikidata.avg_rows
    assert tough.avg_rows > dbpedia.avg_rows
    assert all(s.cells_to_annotate > 0 for s in stats)
