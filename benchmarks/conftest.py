"""Benchmark fixtures and reporting.

Heavy artefacts (generated KGs, trained EmbLookup models) are session-scoped
and disk-cached under ``benchmarks/.cache`` so re-runs skip training.
Every bench registers its paper-style table through :func:`record_table`;
a ``pytest_terminal_summary`` hook prints them all at the end of the run,
so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the reproduced tables alongside pytest-benchmark's timing output.  Each
table is also written to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import EmbLookup, EmbLookupConfig
from repro.evaluation.reporting import format_table
from repro.kg import KnowledgeGraph, SyntheticKGConfig, generate_kg
from repro.tables import (
    BenchmarkConfig,
    TabularDataset,
    generate_benchmark,
    generate_tough_tables,
)

CACHE_DIR = Path(__file__).parent / ".cache"
RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale knobs (paper scale requires a GPU; DESIGN.md records the
#: correspondence: 2.03 M cells / 100 epochs there, ~1.5 k entities / 8
#: epochs here).
WIKIDATA_ENTITIES = 1500
DBPEDIA_ENTITIES = 1200
MEDIUM_ENTITIES = 700

BENCH_TRAIN_CONFIG = EmbLookupConfig(
    epochs=8,
    triplets_per_entity=14,
    fasttext_epochs=2,
    batch_size=256,
    margin=0.3,
    seed=1,
)

_RECORDED_TABLES: list[tuple[str, str]] = []


def record_table(name: str, headers, rows, title: str) -> str:
    """Render, persist, and register a results table; returns the text."""
    text = format_table(headers, rows, title=title)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    _RECORDED_TABLES.append((name, text))
    return text


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RECORDED_TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for name, text in _RECORDED_TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)


def cached_emblookup(
    key: str, kg: KnowledgeGraph, config: EmbLookupConfig
) -> EmbLookup:
    """Train (or load a cached) EmbLookup pipeline for ``kg``."""
    cache = CACHE_DIR / key
    marker = cache / "meta.json"
    if marker.exists():
        try:
            return EmbLookup.load(cache, kg)
        except (KeyError, ValueError, FileNotFoundError):
            pass  # stale cache (config changed) -> retrain below
    service = EmbLookup(config)
    service.fit(kg)
    service.save(cache)
    return service


# -- knowledge graphs -------------------------------------------------------------


@pytest.fixture(scope="session")
def kg_wikidata() -> KnowledgeGraph:
    return generate_kg(
        SyntheticKGConfig(num_entities=WIKIDATA_ENTITIES, flavour="wikidata", seed=3)
    )


@pytest.fixture(scope="session")
def kg_dbpedia() -> KnowledgeGraph:
    return generate_kg(
        SyntheticKGConfig(num_entities=DBPEDIA_ENTITIES, flavour="dbpedia", seed=4)
    )


@pytest.fixture(scope="session")
def kg_medium() -> KnowledgeGraph:
    """Smaller graph for the hyperparameter sweeps (Tables VII-VIII, Fig 3/5)."""
    return generate_kg(
        SyntheticKGConfig(num_entities=MEDIUM_ENTITIES, flavour="wikidata", seed=5)
    )


# -- benchmark datasets --------------------------------------------------------------


@pytest.fixture(scope="session")
def ds_wikidata(kg_wikidata) -> TabularDataset:
    return generate_benchmark(
        kg_wikidata, BenchmarkConfig(name="st_wikidata", num_tables=25, seed=11)
    )


@pytest.fixture(scope="session")
def ds_dbpedia(kg_dbpedia) -> TabularDataset:
    return generate_benchmark(
        kg_dbpedia, BenchmarkConfig(name="st_dbpedia", num_tables=20, seed=12)
    )


@pytest.fixture(scope="session")
def ds_tough(kg_wikidata) -> TabularDataset:
    return generate_tough_tables(kg_wikidata, num_tables=8, seed=29)


@pytest.fixture(scope="session")
def ds_medium(kg_medium) -> TabularDataset:
    return generate_benchmark(
        kg_medium, BenchmarkConfig(name="st_medium", num_tables=14, seed=13)
    )


# -- trained pipelines -----------------------------------------------------------------


@pytest.fixture(scope="session")
def el_wikidata(kg_wikidata) -> EmbLookup:
    return cached_emblookup("el_wikidata", kg_wikidata, BENCH_TRAIN_CONFIG)


@pytest.fixture(scope="session")
def elnc_wikidata(el_wikidata) -> EmbLookup:
    return el_wikidata.clone_with_compression("none")


@pytest.fixture(scope="session")
def el_dbpedia(kg_dbpedia) -> EmbLookup:
    return cached_emblookup("el_dbpedia", kg_dbpedia, BENCH_TRAIN_CONFIG)


@pytest.fixture(scope="session")
def elnc_dbpedia(el_dbpedia) -> EmbLookup:
    return el_dbpedia.clone_with_compression("none")


@pytest.fixture(scope="session")
def el_medium(kg_medium) -> EmbLookup:
    return cached_emblookup("el_medium", kg_medium, BENCH_TRAIN_CONFIG)
