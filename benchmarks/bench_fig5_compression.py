"""Figure 5 — PQ vs PCA at matched storage budgets (CEA + CTA, bbw).

Protocol: vary bytes/vector; PQ uses m = bytes one-byte codes, PCA keeps
bytes/4 float32 components (both applied to the same trained 64-d
embeddings).  The bbw system consumes each variant's candidates.

Paper shape: the PQ curves are almost flat (quantization costs little
accuracy even at 8 bytes) while PCA collapses as the budget shrinks.
"""

import numpy as np
import pytest

from conftest import record_table
from bench_common import SYSTEM_ROWS, run_system
from repro.index.flat import FlatIndex
from repro.index.pca import PCATransform
from repro.index.pq import PQIndex
from repro.lookup.base import Candidate, LookupService
from repro.text.tokenize import normalize

BYTE_BUDGETS = (8, 16, 32, 64)

_CEA_SPEC = next(
    s for s in SYSTEM_ROWS if s.task == "CEA" and s.system_name == "bbw"
)
_CTA_SPEC = next(
    s for s in SYSTEM_ROWS if s.task == "CTA" and s.system_name == "bbw"
)


class _CompressedService(LookupService):
    """Lookup over a pre-built index + shared embedding model."""

    def __init__(self, model, index, row_to_entity, transform=None, name="x"):
        super().__init__()
        self.model = model
        self.index = index
        self.row_to_entity = row_to_entity
        self.transform = transform
        self.name = name

    def _lookup_batch(self, queries, k):
        vectors = self.model.embed([normalize(q) for q in queries])
        if self.transform is not None:
            vectors = self.transform.apply(vectors)
        result = self.index.search(vectors, min(k, self.index.ntotal))
        out = []
        for row_ids, row_d in zip(result.ids, result.distances):
            out.append(
                [
                    Candidate(self.row_to_entity[int(i)], -float(d))
                    for i, d in zip(row_ids, row_d)
                    if i >= 0
                ][:k]
            )
        return out


@pytest.fixture(scope="module")
def services(kg_wikidata, el_wikidata):
    model = el_wikidata.model
    labels = [normalize(e.label) for e in kg_wikidata.entities()]
    row_to_entity = [e.entity_id for e in kg_wikidata.entities()]
    vectors = np.concatenate(
        [model.embed(labels[i : i + 256]) for i in range(0, len(labels), 256)]
    )
    dim = vectors.shape[1]

    built = {}
    for bytes_per_vec in BYTE_BUDGETS:
        pq = PQIndex(dim, m=bytes_per_vec, seed=7)
        pq.train(vectors)
        pq.add(vectors)
        built[("PQ", bytes_per_vec)] = _CompressedService(
            model, pq, row_to_entity, name=f"pq{bytes_per_vec}"
        )

        pca = PCATransform(max(bytes_per_vec // 4, 1)).train(vectors)
        flat = FlatIndex(pca.n_components)
        flat.add(pca.apply(vectors))
        built[("PCA", bytes_per_vec)] = _CompressedService(
            model, flat, row_to_entity, transform=pca, name=f"pca{bytes_per_vec}"
        )
    return built


@pytest.fixture(scope="module")
def fig5(kg_wikidata, ds_wikidata, services):
    # The error variant is what separates compression schemes: for clean
    # cells the query embedding coincides exactly with the indexed label
    # embedding, so even a 2-d PCA projection retrieves it at distance 0.
    noisy = ds_wikidata.with_noise(fraction=0.3, seed=51)
    results = {}
    for (method, bytes_per_vec), service in services.items():
        cea = run_system(_CEA_SPEC, service, noisy, kg_wikidata).f_score
        cta = run_system(_CTA_SPEC, service, noisy, kg_wikidata).f_score
        results[(method, bytes_per_vec)] = (cea, cta)
    return results


def test_fig5_pq_vs_pca(benchmark, fig5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = []
    for bytes_per_vec in BYTE_BUDGETS:
        pq_cea, pq_cta = fig5[("PQ", bytes_per_vec)]
        pca_cea, pca_cta = fig5[("PCA", bytes_per_vec)]
        table.append([bytes_per_vec, pq_cea, pca_cea, pq_cta, pca_cta])
    record_table(
        "fig5_compression",
        ["bytes/vec", "CEA PQ", "CEA PCA", "CTA PQ", "CTA PCA"],
        table,
        title="Figure 5: PQ vs PCA compression at equal storage (bbw)",
    )

    # Shape 1: PQ is nearly flat across budgets.
    pq_cea_scores = [fig5[("PQ", b)][0] for b in BYTE_BUDGETS]
    assert max(pq_cea_scores) - min(pq_cea_scores) < 0.12

    # Shape 2: at the tightest budget PQ clearly beats PCA.
    assert fig5[("PQ", 8)][0] > fig5[("PCA", 8)][0]

    # Shape 3: PCA degrades as the budget shrinks.
    assert fig5[("PCA", 64)][0] >= fig5[("PCA", 8)][0] - 0.02
