"""Tiered-router benchmark: mixed-workload latency, tier costs, type filters.

Writes ``BENCH_router.json`` at the repo root (override with ``--out``).
Measurement families, matching the router's design levers:

1. **Mixed-workload latency** — per-query wall times over a realistic
   annotation mix (exact label hits, short/symbolic strings, typo'd
   labels) served one query at a time, for the pure-embedding engine and
   the routed engine.  The headline number is the p50: the router's
   exact tier answers the head of the mix in hash-probe time, so its p50
   must sit *strictly below* the pure-embedding baseline (asserted).
2. **Per-tier costs** — seconds per query for the exact probe, the fuzzy
   tier, and the full embed+search+rank ANN path, from the router's tier
   stopwatches and the engine's stage stopwatches.  The exact tier must
   be >= 10x cheaper per query than the ANN path (asserted).
3. **Type-constrained lookups** — rows scanned under ``type_filter`` on
   a :class:`TypePartitionedIndex` versus the full index, plus an
   identity check: partition-restricted results must match a full-scan
   engine's post-filtered results (same entities, scores to float
   tolerance — asserted).
4. **Accuracy** — top-10 recall of both engines on the ground-truthed
   part of the mix; the router must not lose accuracy (asserted).

``--smoke`` shrinks the workload to CI scale; the checked-in
``BENCH_router.json`` comes from a full run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

for _var in (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import EmbLookupConfig  # noqa: E402
from repro.core.pipeline import EmbLookup  # noqa: E402
from repro.evaluation.metrics import candidate_recall_at_k  # noqa: E402
from repro.index.partitioned import TypePartitionedIndex  # noqa: E402
from repro.kg import SyntheticKGConfig, generate_kg  # noqa: E402
from repro.serving.engine import LookupEngine  # noqa: E402
from repro.text.noise import NoiseModel  # noqa: E402
from tools.bench_json import write_bench_json  # noqa: E402

K = 10


def build_workload(kg, num_queries: int, seed: int):
    """A heavy-tailed annotation mix over ``kg``'s entities.

    Returns ``(queries, truth, kinds)``: 50% verbatim labels/aliases
    (exact-tier food), 25% typo'd labels (ANN-tier food), 25% short
    prefixes (fuzzy-tier food).  Every query keeps its source entity as
    ground truth so both engines are scored on the same workload.
    """
    rng = np.random.default_rng(seed)
    entities = list(kg.entities())
    noise = NoiseModel(max_edits=2, seed=seed + 1)
    queries, truth, kinds = [], [], []
    for _ in range(num_queries):
        entity = entities[int(rng.integers(0, len(entities)))]
        roll = rng.random()
        if roll < 0.5:
            mentions = entity.mentions
            queries.append(mentions[int(rng.integers(0, len(mentions)))])
            kinds.append("exact")
        elif roll < 0.75:
            queries.append(noise.corrupt(entity.label))
            kinds.append("typo")
        else:
            queries.append(entity.label[:3])
            kinds.append("short")
        truth.append(entity.entity_id)
    return queries, truth, kinds


def per_query_times(engine, queries: list[str]) -> np.ndarray:
    """Serve one query at a time, recording each wall time."""
    times = np.empty(len(queries))
    for i, query in enumerate(queries):
        start = time.perf_counter()
        engine.lookup_batch([query], K)
        times[i] = time.perf_counter() - start
    return times


def percentiles(times: np.ndarray) -> dict[str, float]:
    return {
        "p50_us": float(np.percentile(times, 50) * 1e6),
        "p90_us": float(np.percentile(times, 90) * 1e6),
        "p99_us": float(np.percentile(times, 99) * 1e6),
        "mean_us": float(times.mean() * 1e6),
    }


def bench_latency(baseline, routed, queries, truth):
    """Mixed-workload per-query latency plus top-10 recall, both engines."""
    out = {}
    for name, engine in (("pure_embedding", baseline), ("router", routed)):
        engine.reset_timers()
        times = per_query_times(engine, queries)
        rows = engine.lookup_batch(queries, K)
        recall = candidate_recall_at_k(
            [[c.entity_id for c in row] for row in rows], truth, K
        )
        out[name] = {**percentiles(times), "recall_at_10": recall}
    speedup = out["pure_embedding"]["p50_us"] / out["router"]["p50_us"]
    out["p50_speedup"] = speedup
    assert out["router"]["p50_us"] < out["pure_embedding"]["p50_us"], (
        "router p50 must be strictly below the pure-embedding baseline"
    )
    assert out["router"]["recall_at_10"] >= out["pure_embedding"][
        "recall_at_10"
    ], "router must not lose accuracy on the mixed workload"
    return out


def bench_tiers(routed, queries):
    """Per-tier seconds/query from the tier and stage stopwatches."""
    routed.reset_timers()
    for query in queries:
        routed.lookup_batch([query], K)
    stats = routed.serving_stats()
    tiers = routed.router.tier_seconds()
    stages = routed.stage_seconds()
    total = len(queries)
    exact_per_probe = tiers["exact"] / total  # every query is probed
    fuzzy_per_query = (
        tiers["fuzzy"] / stats["fuzzy_routed"] if stats["fuzzy_routed"] else 0.0
    )
    ann_seconds = stages["embed"] + stages["search"] + stages["rank"]
    ann_per_query = (
        ann_seconds / stats["ann_routed"] if stats["ann_routed"] else 0.0
    )
    assert stats["ann_routed"], "workload never reached the ANN tier"
    assert ann_per_query >= 10 * exact_per_probe, (
        f"exact probe ({exact_per_probe * 1e6:.2f}us) must be >=10x cheaper "
        f"than the ANN path ({ann_per_query * 1e6:.2f}us)"
    )
    return {
        "queries": total,
        "routed": {
            "exact_hits": stats["exact_hits"],
            "fuzzy_routed": stats["fuzzy_routed"],
            "ann_routed": stats["ann_routed"],
        },
        "exact_probe_us_per_query": exact_per_probe * 1e6,
        "fuzzy_us_per_query": fuzzy_per_query * 1e6,
        "ann_us_per_query": ann_per_query * 1e6,
        "ann_over_exact": ann_per_query / exact_per_probe,
    }


def bench_type_filter(pipeline, routed, queries):
    """Partition-scan savings and the full-scan identity check."""
    kg = pipeline.kg
    type_map = routed._type_map
    index = routed.index
    assert isinstance(index, TypePartitionedIndex)
    # The narrowest and the widest populated types bracket the savings.
    coverage = sorted(
        (index.rows_in(type_map.partitions_for(t.type_id)), t.type_id)
        for t in kg.types()
        if type_map.allowed(t.type_id)
    )
    fallback = LookupEngine.from_pipeline(pipeline, router=True)
    rows_by_type = {}
    identical = True
    for rows_in, tid in (coverage[0], coverage[-1]):
        before = routed.serving_stats()
        # One query per call: every ANN-routed query then maps to exactly
        # one typed search (exact/fuzzy-tier hits never scan the index).
        got = [
            routed.lookup_batch([query], K, type_filter=tid)[0]
            for query in queries
        ]
        after = routed.serving_stats()
        scanned = (
            after["type_filtered_rows_scanned"]
            - before["type_filtered_rows_scanned"]
        )
        ann_routed = after["ann_routed"] - before["ann_routed"]
        assert ann_routed > 0, "typed workload never reached the ANN scan"
        assert scanned == rows_in * ann_routed, (
            "typed scan must touch exactly the matching partitions' rows"
        )
        want = fallback.lookup_batch(queries, K, type_filter=tid)
        for got_row, want_row in zip(got, want):
            if [c.entity_id for c in got_row] != [
                c.entity_id for c in want_row
            ]:
                identical = False
            elif not np.allclose(
                [c.score for c in got_row],
                [c.score for c in want_row],
                rtol=1e-6,
                atol=1e-9,
            ):
                identical = False
        rows_by_type[tid] = {
            "rows_scanned_per_query": rows_in,
            "fraction_of_index": rows_in / index.ntotal,
        }
    assert identical, (
        "partition-restricted results diverged from post-filtered full scan"
    )
    return {
        "index_rows": index.ntotal,
        "per_type": rows_by_type,
        "identical_to_post_filtered_full_scan": identical,
    }


def main(argv=None) -> int:
    """Run the router benchmark and write BENCH_router.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_router.json",
        help="output JSON path",
    )
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    if args.smoke:
        num_entities, num_queries = 300, 400
        config = EmbLookupConfig(
            epochs=4, triplets_per_entity=10, fasttext_epochs=6,
            batch_size=64, seed=2,
        )
    else:
        num_entities, num_queries = 2000, 3000
        config = EmbLookupConfig(
            epochs=8, triplets_per_entity=20, fasttext_epochs=8,
            batch_size=128, seed=2,
        )

    kg = generate_kg(SyntheticKGConfig(num_entities=num_entities, seed=args.seed))
    pipeline = EmbLookup(config)
    pipeline.fit(kg)
    queries, truth, kinds = build_workload(kg, num_queries, args.seed)
    mix = {kind: kinds.count(kind) for kind in ("exact", "typo", "short")}
    print(
        f"workload: {len(queries)} queries over {num_entities} entities "
        f"(mix={mix})"
    )

    baseline = LookupEngine.from_pipeline(pipeline)
    routed = LookupEngine.from_pipeline(
        pipeline, partition_by_type=True, router=True
    )

    # Warm both engines (first call pays numpy/BLAS one-time costs).
    baseline.lookup_batch(queries[:8], K)
    routed.lookup_batch(queries[:8], K)

    latency = bench_latency(baseline, routed, queries, truth)
    for name in ("pure_embedding", "router"):
        row = latency[name]
        print(
            f"  {name:15s} p50={row['p50_us']:8.1f}us "
            f"p99={row['p99_us']:9.1f}us recall@10={row['recall_at_10']:.3f}"
        )
    print(f"  p50 speedup: {latency['p50_speedup']:.1f}x")

    tiers = bench_tiers(routed, queries)
    print(
        f"  tiers: exact={tiers['exact_probe_us_per_query']:.2f}us "
        f"fuzzy={tiers['fuzzy_us_per_query']:.1f}us "
        f"ann={tiers['ann_us_per_query']:.1f}us "
        f"(ann/exact={tiers['ann_over_exact']:.0f}x)"
    )

    type_filter = bench_type_filter(pipeline, routed, queries[:32])
    for tid, row in type_filter["per_type"].items():
        print(
            f"  type_filter={tid}: scans {row['rows_scanned_per_query']} of "
            f"{type_filter['index_rows']} rows "
            f"({row['fraction_of_index']:.1%})"
        )

    metrics = {
        "smoke": args.smoke,
        "workload": {
            "num_entities": num_entities,
            "num_queries": num_queries,
            "k": K,
            "seed": args.seed,
            "mix": mix,
        },
        "cpu_count": os.cpu_count() or 1,
        "latency": latency,
        "tier_costs": tiers,
        "type_filter": type_filter,
    }
    path = write_bench_json(args.out, "router", metrics)
    print(f"wrote {path}")
    routed.close()
    baseline.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
