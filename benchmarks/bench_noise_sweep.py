"""Extension: F-score as a function of the noise fraction.

Table IV fixes the noise level at 10 %; this sweep varies it (0 % -> 50 %)
for one representative system (bbw CEA) under its original lookup and
under EmbLookup, exposing the *divergence rate*: the brittle service's
curve falls away while EmbLookup's stays flat — the mechanism behind the
paper's "especially shines when the data is noisy".
"""

import pytest

from conftest import record_table
from bench_common import SYSTEM_ROWS, run_system
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.remote import SimulatedRemoteLookup

NOISE_LEVELS = (0.0, 0.1, 0.25, 0.5)

_SPEC = next(s for s in SYSTEM_ROWS if s.task == "CEA" and s.system_name == "bbw")


@pytest.fixture(scope="module")
def sweep(kg_wikidata, ds_wikidata, el_wikidata):
    el = EmbLookupService(el_wikidata)
    # A brittle original: exact alias matching behind a remote endpoint
    # (the no-fuzzy configuration many production endpoints run).
    brittle = SimulatedRemoteLookup.build_exactish(kg_wikidata, name="exact_api")
    results = {}
    for level in NOISE_LEVELS:
        dataset = (
            ds_wikidata
            if level == 0.0
            else ds_wikidata.with_noise(fraction=level, seed=int(level * 1000))
        )
        f_orig = run_system(_SPEC, brittle, dataset, kg_wikidata).f_score
        f_el = run_system(_SPEC, el, dataset, kg_wikidata).f_score
        results[level] = (f_orig, f_el)
    return results


def test_noise_sweep(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [
        [f"{level:.0%}", f_orig, f_el] for level, (f_orig, f_el) in sweep.items()
    ]
    record_table(
        "noise_sweep",
        ["noise fraction", "F exact-match API", "F EmbLookup"],
        table,
        title="Extension: CEA F-score vs injected-noise fraction (bbw)",
    )

    # Shape 1: comparable at zero noise.
    orig0, el0 = sweep[0.0]
    assert abs(orig0 - el0) < 0.1
    # Shape 2: the brittle service decays much faster.
    orig_drop = orig0 - sweep[0.5][0]
    el_drop = el0 - sweep[0.5][1]
    assert orig_drop > el_drop + 0.1
    # Shape 3: EmbLookup stays usable even at 50 % noise.
    assert sweep[0.5][1] > 0.6
