"""Table VI — semantic lookup: cells replaced by entity aliases.

Protocol (paper Section IV-D): each annotated cell is replaced with a
uniformly random alias of its ground-truth entity (unchanged when the
entity has none); 5 perturbed variants are generated and mean F-scores
reported.

Paper shape: systems backed by label-only local indexes collapse (they
have never seen the aliases), while EmbLookup — whose embedding function
*encodes* the alias structure without storing aliases — stays far ahead.
The paper also notes the storage angle: indexing aliases explicitly blows
up the index (790 MB vs 63 MB for ES), whereas EmbLookup's index is
unchanged.
"""

import pytest

from conftest import record_table
from bench_common import SYSTEM_ROWS, run_system
from repro.lookup.elastic import ElasticLookup
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.levenshtein import LevenshteinLookup

# The paper averages 5 perturbed variants; 3 keeps the single-core run
# tractable (each variant re-runs the slow scan-matcher originals).  Set
# to 5 to match the paper exactly.
NUM_VARIANTS = 3

# For the semantic experiment the originals run on their *local label-only*
# indexes (the paper's point: those indexes are alias-blind).
_LOCAL_ORIGINALS = {
    "bbw": lambda kg: FuzzyWuzzyLookup.build(kg),
    "MantisTable": lambda kg: ElasticLookup.build(kg),
    "JenTab": lambda kg: ElasticLookup.build(kg),
    "DoSeR": lambda kg: FuzzyWuzzyLookup.build(kg),
    "Katara": lambda kg: LevenshteinLookup.build(kg),
}


@pytest.fixture(scope="module")
def alias_variants(ds_wikidata, kg_wikidata):
    # prefer_dissimilar compensates for the synthetic alias inventory's
    # syntactic skew (DESIGN.md): the paper's KGs are rich in
    # cross-lingual aliases, ours in derived surface forms, so uniform
    # sampling would under-represent the semantic gap under test.
    return [
        ds_wikidata.with_alias_substitution(
            kg_wikidata, seed=100 + i, prefer_dissimilar=True
        )
        for i in range(NUM_VARIANTS)
    ]


@pytest.fixture(scope="module")
def table6(kg_wikidata, alias_variants, el_wikidata):
    el = EmbLookupService(el_wikidata)
    rows = []
    for spec in SYSTEM_ROWS:
        original_lookup = _LOCAL_ORIGINALS[spec.system_name](kg_wikidata)
        f_orig, f_el = 0.0, 0.0
        for variant in alias_variants:
            f_orig += run_system(spec, original_lookup, variant, kg_wikidata).f_score
            f_el += run_system(spec, el, variant, kg_wikidata).f_score
        rows.append(
            (spec, f_orig / NUM_VARIANTS, f_el / NUM_VARIANTS)
        )
    return rows


def test_table6_semantic_lookup(benchmark, table6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [
        [spec.task, spec.system_name, f_orig, f_el]
        for spec, f_orig, f_el in table6
    ]
    record_table(
        "table6_semantic",
        ["task", "system", "F original (mean)", "F EmbLookup (mean)"],
        table,
        title="Table VI: semantic (alias) lookup, ST-Wikidata",
    )

    # Shape: on the *entity-level* tasks (CEA, EA, DR) the alias-blind
    # label-only indexes fall behind EmbLookup, whose embedding encodes
    # the alias structure without storing it.  CTA is excluded from the
    # assertion: its majority-type vote forgives entity-level mistakes
    # that land in the right type, which favours the originals' failure
    # mode at this scale (documented in EXPERIMENTS.md).
    entity_margins = [
        f_el - f_orig
        for spec, f_orig, f_el in table6
        if spec.task in ("CEA", "EA", "DR")
    ]
    wins = sum(1 for m in entity_margins if m > -0.02)
    assert wins >= len(entity_margins) - 1, entity_margins
    assert sum(entity_margins) / len(entity_margins) > 0.02


def test_table6_index_size_argument(benchmark, kg_wikidata, el_wikidata):
    """Indexing aliases explicitly inflates the symbolic index; EmbLookup's
    index doesn't grow because aliases live in the model weights."""
    def measure():
        label_only = ExactMatchLookup.build(kg_wikidata)
        with_aliases = ExactMatchLookup.build(kg_wikidata, include_aliases=True)
        return label_only.index_bytes(), with_aliases.index_bytes()

    label_bytes, alias_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    el = EmbLookupService(el_wikidata)
    assert alias_bytes > label_bytes * 2
    # EmbLookup's PQ index stays compact (codes ~8 B/entity + codebook).
    assert el.index_bytes() < alias_bytes
