"""Table III — the Table II experiment repeated on ST-DBPedia.

The paper's point: the speedups and accuracy hold across knowledge graphs
("due to the algorithmic choices and not inherently due to the knowledge
graph"), so the same shape assertions must pass on the DBPedia-flavoured
graph as on the Wikidata one.
"""

import pytest

from conftest import record_table
from bench_common import SYSTEM_ROWS, emblookup_services, original_service, run_system


@pytest.fixture(scope="module")
def table3_rows(kg_dbpedia, ds_dbpedia, el_dbpedia, elnc_dbpedia):
    el_cpu, elnc_cpu, el_gpu, elnc_gpu = emblookup_services(
        el_dbpedia, elnc_dbpedia
    )
    rows = []
    for spec in SYSTEM_ROWS:
        original = run_system(
            spec, original_service(spec, kg_dbpedia), ds_dbpedia, kg_dbpedia
        )
        rows.append(
            {
                "spec": spec,
                "original": original,
                "el": run_system(spec, el_cpu, ds_dbpedia, kg_dbpedia),
                "elnc": run_system(spec, elnc_cpu, ds_dbpedia, kg_dbpedia),
                "el_gpu": run_system(spec, el_gpu, ds_dbpedia, kg_dbpedia),
            }
        )
    return rows


def test_table3_speedup_and_fscore(benchmark, table3_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = []
    for row in table3_rows:
        spec, original = row["spec"], row["original"]
        table.append(
            [
                spec.task,
                spec.system_name,
                f"{row['el'].speedup_over(original):.0f}x",
                f"{row['elnc'].speedup_over(original):.0f}x",
                f"{row['el_gpu'].speedup_over(original):.0f}x*",
                original.f_score,
                row["el"].f_score,
                row["elnc"].f_score,
            ]
        )
    record_table(
        "table3_st_dbpedia",
        ["task", "system", "EL cpu", "EL-NC cpu", "EL gpu",
         "F orig", "F EL", "F EL-NC"],
        table,
        title=(
            "Table III: EmbLookup accelerating lookups, ST-DBPedia "
            "(* = modelled V100 throughput)"
        ),
    )

    for row in table3_rows:
        spec, original = row["spec"], row["original"]
        label = f"{spec.task}/{spec.system_name}"
        assert row["el"].speedup_over(original) > 5, label
        assert row["el"].f_score > original.f_score - 0.12, label
        assert row["elnc"].f_score >= row["el"].f_score - 0.05, label
