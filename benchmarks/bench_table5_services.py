"""Table V — head-to-head against eight lookup services (CEA, top-10).

Protocol (paper Section IV-C): every service answers the same queries with
k=10; a query succeeds when the ground-truth entity is in the top-10.
Reported per service: EmbLookup's speedup (CPU + modelled GPU) and both
services' success rates with and without injected errors.

Paper shape: EmbLookup is faster than every service — ~1 order of
magnitude vs optimized local indexes, ~2 vs scan matchers and rate-limited
remote endpoints — while matching or beating their accuracy, especially
under errors.  Exact match / q-gram / Levenshtein are served through the
same local-service layer the paper used (ElasticSearch-hosted operations),
so their timings include the per-request service overhead.
"""

import pytest

from conftest import record_table
from bench_common import lamapi_model
from repro.evaluation.metrics import candidate_recall_at_k
from repro.lookup.elastic import ElasticLookup
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.levenshtein import LevenshteinLookup
from repro.lookup.lsh_lookup import LSHStringLookup
from repro.lookup.qgram import QGramLookup
from repro.lookup.remote import RemoteServiceModel, SimulatedRemoteLookup
from repro.lookup.router import LookupRouter
from repro.text.noise import NoiseModel

K = 10


@pytest.fixture(scope="module")
def workload(ds_wikidata):
    """(clean queries, noisy queries, ground-truth entity ids)."""
    refs = ds_wikidata.annotated_cells()
    clean = [ds_wikidata.cell_text(ref) for ref in refs]
    truth = [ds_wikidata.cea[ref] for ref in refs]
    keep = [i for i, text in enumerate(clean) if text]
    clean = [clean[i] for i in keep]
    truth = [truth[i] for i in keep]
    noise = NoiseModel(seed=33)
    noisy = [noise.corrupt(q) for q in clean]
    return clean, noisy, truth


def _baselines(kg):
    local_service = lamapi_model()  # ES-hosted ops pay per-request overhead
    return [
        ("FuzzyWuzzy", FuzzyWuzzyLookup.build(kg)),
        ("ElasticSearch", ElasticLookup.build(kg)),
        ("LSH", LSHStringLookup.build(kg)),
        ("ExactMatch", SimulatedRemoteLookup(
            ExactMatchLookup.build(kg), local_service, name="exact_es")),
        ("q-gram", SimulatedRemoteLookup(
            QGramLookup.build(kg), local_service, name="qgram_es")),
        ("Levenshtein", SimulatedRemoteLookup(
            LevenshteinLookup.build(kg), local_service, name="lev_es")),
        ("WikidataAPI", SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.wikidata(), name="wikidata_api")),
        ("SearX", SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.searx(), name="searx")),
    ]


def _success(service, queries, truth):
    service.reset_timers()
    results = service.lookup_batch(queries, K)
    candidate_ids = [[c.entity_id for c in row] for row in results]
    return (
        candidate_recall_at_k(candidate_ids, truth, K),
        service.total_lookup_seconds,
    )


@pytest.fixture(scope="module")
def table5(kg_wikidata, el_wikidata, workload):
    clean, noisy, truth = workload
    el_cpu = EmbLookupService(el_wikidata)
    el_gpu = EmbLookupService(el_wikidata, gpu_mode=True)

    el_clean_f, el_clean_t = _success(el_cpu, clean, truth)
    el_noisy_f, el_noisy_t = _success(el_cpu, noisy, truth)
    _, el_gpu_t = _success(el_gpu, clean, truth)
    el_time = el_clean_t + el_noisy_t

    rows = []
    for name, service in _baselines(kg_wikidata):
        base_clean_f, base_clean_t = _success(service, clean, truth)
        base_noisy_f, base_noisy_t = _success(service, noisy, truth)
        base_time = base_clean_t + base_noisy_t
        rows.append(
            {
                "name": name,
                "speedup_cpu": base_time / el_time,
                "speedup_gpu": base_time / (el_gpu_t * 2),
                "base_clean": base_clean_f,
                "base_noisy": base_noisy_f,
            }
        )
    # The tiered router *on top of* EmbLookup (ISSUE 9): exact hits
    # short-circuit the embedding path, short/symbolic strings go to
    # q-gram, the rest falls through to the same EmbLookup ANN tier.  A
    # speedup_cpu below 1.0 means it beats pure EmbLookup on this
    # workload while the accuracy columns must not regress.
    router = LookupRouter.build(
        kg_wikidata, ann=EmbLookupService(el_wikidata), fuzzy="qgram"
    )
    router_clean_f, router_clean_t = _success(router, clean, truth)
    router_noisy_f, router_noisy_t = _success(router, noisy, truth)
    rows.append(
        {
            "name": "TieredRouter",
            "speedup_cpu": (router_clean_t + router_noisy_t) / el_time,
            "speedup_gpu": (router_clean_t + router_noisy_t) / (el_gpu_t * 2),
            "base_clean": router_clean_f,
            "base_noisy": router_noisy_f,
        }
    )
    return rows, el_clean_f, el_noisy_f


def test_table5_lookup_services(benchmark, table5):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows, el_clean, el_noisy = table5
    table = [
        [
            r["name"],
            f"{r['speedup_cpu']:.0f}x",
            f"{r['speedup_gpu']:.0f}x*",
            r["base_clean"],
            el_clean,
            r["base_noisy"],
            el_noisy,
        ]
        for r in rows
    ]
    record_table(
        "table5_services",
        ["approach", "speedup cpu", "speedup gpu",
         "F base (clean)", "F EL (clean)", "F base (err)", "F EL (err)"],
        table,
        title=(
            "Table V: EmbLookup vs lookup services, ST-Wikidata CEA top-10 "
            "(* = modelled V100 throughput)"
        ),
    )

    by_name = {r["name"]: r for r in rows}
    # Shape 1: order(s)-of-magnitude speedup over scan matchers and remote
    # endpoints; clear speedup over the service-hosted index operations.
    assert by_name["FuzzyWuzzy"]["speedup_cpu"] > 20
    assert by_name["Levenshtein"]["speedup_cpu"] > 10
    assert by_name["WikidataAPI"]["speedup_cpu"] > 20
    assert by_name["SearX"]["speedup_cpu"] > 50
    for name in ("ElasticSearch", "ExactMatch", "q-gram"):
        assert by_name[name]["speedup_cpu"] > 1.5, name
    # Our banded MinHash LSH is itself hash-bucket fast; unlike the
    # paper's implementation it is not clearly slower than EmbLookup —
    # it pays in the error column instead (see accuracy assertions).
    # Both are sub-millisecond systems, so the ratio is scheduling-noise
    # sensitive; only guard against an order-of-magnitude surprise.
    assert by_name["LSH"]["speedup_cpu"] > 0.2

    # Shape 2: near-perfect on clean queries.
    assert el_clean > 0.9

    # Shape 3: under errors EmbLookup beats the brittle services clearly.
    assert el_noisy > by_name["ExactMatch"]["base_noisy"] + 0.2
    assert el_noisy > by_name["LSH"]["base_noisy"]
    # And stays within a modest gap of the exhaustive edit-distance scans
    # (which pay 1-2 orders of magnitude more time for that accuracy; at
    # this KG scale the scans are effectively exact, see EXPERIMENTS.md).
    assert el_noisy > by_name["FuzzyWuzzy"]["base_noisy"] - 0.3

    # Shape 4 (ISSUE 9): the tiered router must be strictly faster than
    # pure EmbLookup on this workload (clean queries are mostly exact
    # hits that never pay the embedding tower) at no accuracy cost —
    # exact hits cannot miss, and ANN-routed queries get EmbLookup's own
    # answers.
    router = by_name["TieredRouter"]
    assert router["speedup_cpu"] < 1.0
    assert router["base_clean"] >= el_clean
    assert router["base_noisy"] >= el_noisy - 0.02
