"""Online-mutation benchmark: lookup latency under sustained index churn.

Writes ``BENCH_mutation.json`` at the repo root (override with ``--out``).
Measurement families, matching the online-mutation design levers:

1. **Latency under churn** — per-query p50/p99 for a frozen-index
   baseline engine versus an identical engine whose index receives a
   sustained change-feed (add/remove via a background
   :class:`~repro.serving.ingest.ChangeFeedConsumer`) while the queries
   are served.  Mutations must not break serving: every query answers,
   and entities untouched by the feed are still found (asserted).
2. **Mutation throughput** — synchronously applied mutations per second
   (embed + index publish + router/cache bookkeeping), per kind.
3. **Tombstone drag and compaction** — p50 with an accumulated tombstone
   fraction versus p50 after :meth:`LookupEngine.compact` reclaims the
   rows; compaction must restore ``ntotal`` to the live count
   (asserted) so the scan cost tracks the live set, not history.

``--smoke`` shrinks the workload to CI scale; the checked-in
``BENCH_mutation.json`` comes from a smoke run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

for _var in (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import EmbLookupConfig  # noqa: E402
from repro.core.pipeline import EmbLookup  # noqa: E402
from repro.kg import SyntheticKGConfig, generate_kg  # noqa: E402
from repro.serving.engine import LookupEngine  # noqa: E402
from repro.serving.ingest import ChangeFeedConsumer, IndexMutation  # noqa: E402
from tools.bench_json import write_bench_json  # noqa: E402

K = 10


def build_feed(num_mutations: int, seed: int) -> list[IndexMutation]:
    """An add-then-remove churn feed of synthetic entities.

    The feed only ever touches entities it created itself, so the
    original KG entities stay servable throughout — which is what lets
    the benchmark assert accuracy under churn.
    """
    rng = np.random.default_rng(seed)
    feed: list[IndexMutation] = []
    seq = 0
    live: list[str] = []
    for i in range(num_mutations):
        if live and rng.random() < 0.4:
            eid = live.pop(int(rng.integers(0, len(live))))
            feed.append(IndexMutation(seq, "remove", eid))
        else:
            eid = f"churn-{i}"
            mentions = tuple(
                f"churn entity {i} form {j}"
                for j in range(int(rng.integers(1, 3)))
            )
            feed.append(IndexMutation(seq, "add", eid, mentions=mentions))
            live.append(eid)
        seq += 1
    return feed


def per_query_times(engine, queries: list[str]) -> np.ndarray:
    """Serve one query at a time, recording each wall time."""
    times = np.empty(len(queries))
    for i, query in enumerate(queries):
        start = time.perf_counter()
        engine.lookup_batch([query], K)
        times[i] = time.perf_counter() - start
    return times


def percentiles(times: np.ndarray) -> dict[str, float]:
    return {
        "p50_us": float(np.percentile(times, 50) * 1e6),
        "p90_us": float(np.percentile(times, 90) * 1e6),
        "p99_us": float(np.percentile(times, 99) * 1e6),
        "mean_us": float(times.mean() * 1e6),
    }


def bench_latency_under_churn(pipeline, queries, truth, feed):
    """Frozen-index p50 vs p50 while a background feed mutates the index."""
    frozen = LookupEngine.from_pipeline(pipeline)
    churned = LookupEngine.from_pipeline(pipeline)
    try:
        frozen.lookup_batch(queries[:8], K)  # warm numpy/BLAS one-time costs
        churned.lookup_batch(queries[:8], K)
        frozen_times = per_query_times(frozen, queries)
        with ChangeFeedConsumer(churned) as consumer:
            for record in feed:
                consumer.publish(record)
            churn_times = per_query_times(churned, queries)
            consumer.drain()
            assert consumer.dead_letters == (), "churn feed dead-lettered"
            assert consumer.watermark == feed[-1].seq
        # Accuracy must survive the churn: the feed never touches the
        # original entities, so they are all still found.
        rows = churned.lookup_batch(queries, K)
        hits = sum(
            any(c.entity_id == want for c in row)
            for row, want in zip(rows, truth)
        )
        frozen_rows = frozen.lookup_batch(queries, K)
        frozen_hits = sum(
            any(c.entity_id == want for c in row)
            for row, want in zip(frozen_rows, truth)
        )
        assert hits >= frozen_hits * 0.95, (
            f"churn lost accuracy: {hits}/{len(queries)} vs frozen "
            f"{frozen_hits}/{len(queries)}"
        )
        stats = churned.serving_stats()
        assert stats["mutations_applied"] == len(feed)
        return {
            "frozen": percentiles(frozen_times),
            "under_churn": percentiles(churn_times),
            "churn_overhead_p50": float(
                np.percentile(churn_times, 50)
                / np.percentile(frozen_times, 50)
            ),
            "mutations_interleaved": len(feed),
            "hit_rate_frozen": frozen_hits / len(queries),
            "hit_rate_under_churn": hits / len(queries),
        }
    finally:
        frozen.close()
        churned.close()


def bench_mutation_throughput(pipeline, num_mutations: int, seed: int):
    """Synchronous mutations/second through the full engine path."""
    engine = LookupEngine.from_pipeline(pipeline)
    consumer = ChangeFeedConsumer(engine)
    feed = build_feed(num_mutations, seed + 7)
    by_kind: dict[str, list[float]] = {"add": [], "remove": []}
    try:
        for record in feed:
            start = time.perf_counter()
            assert consumer.apply(record)
            by_kind[record.kind].append(time.perf_counter() - start)
        out = {}
        for kind, times in by_kind.items():
            if not times:
                continue
            arr = np.asarray(times)
            out[kind] = {
                "count": len(times),
                "mean_us": float(arr.mean() * 1e6),
                "per_second": float(1.0 / arr.mean()),
            }
        return out
    finally:
        engine.close()


def bench_compaction(pipeline, queries, num_removed: int):
    """Tombstone drag on p50, then the post-compaction recovery."""
    engine = LookupEngine.from_pipeline(pipeline)
    try:
        # Bury a slab of synthetic rows to accumulate tombstones.
        adds = [
            IndexMutation(i, "add", f"pad-{i}", mentions=(f"pad row {i}",))
            for i in range(num_removed)
        ]
        consumer = ChangeFeedConsumer(engine)
        consumer.consume(adds)
        consumer.consume(
            IndexMutation(num_removed + i, "remove", f"pad-{i}")
            for i in range(num_removed)
        )
        index = engine.index
        fraction = index.tombstone_count / index.ntotal
        engine.lookup_batch(queries[:8], K)
        tombstoned_times = per_query_times(engine, queries)
        live = index.nlive
        assert engine.compact() is True
        assert index.ntotal == live, "compaction must shrink to the live set"
        assert index.tombstone_count == 0
        compacted_times = per_query_times(engine, queries)
        return {
            "tombstone_fraction": fraction,
            "with_tombstones": percentiles(tombstoned_times),
            "after_compaction": percentiles(compacted_times),
            "rows_reclaimed": num_removed,
        }
    finally:
        engine.close()


def main(argv=None) -> int:
    """Run the mutation benchmark and write BENCH_mutation.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_mutation.json",
        help="output JSON path",
    )
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    if args.smoke:
        num_entities, num_queries, num_mutations = 300, 250, 60
        config = EmbLookupConfig(
            epochs=4, triplets_per_entity=10, fasttext_epochs=6,
            batch_size=64, seed=2,
        )
    else:
        num_entities, num_queries, num_mutations = 2000, 2000, 400
        config = EmbLookupConfig(
            epochs=8, triplets_per_entity=20, fasttext_epochs=8,
            batch_size=128, seed=2,
        )

    kg = generate_kg(
        SyntheticKGConfig(num_entities=num_entities, seed=args.seed)
    )
    pipeline = EmbLookup(config)
    pipeline.fit(kg)
    rng = np.random.default_rng(args.seed)
    entities = list(kg.entities())
    picks = [
        entities[int(rng.integers(0, len(entities)))]
        for _ in range(num_queries)
    ]
    queries = [e.label for e in picks]
    truth = [e.entity_id for e in picks]
    feed = build_feed(num_mutations, args.seed)
    print(
        f"workload: {num_queries} queries over {num_entities} entities, "
        f"{num_mutations} interleaved mutations"
    )

    latency = bench_latency_under_churn(pipeline, queries, truth, feed)
    print(
        f"  frozen     p50={latency['frozen']['p50_us']:8.1f}us "
        f"p99={latency['frozen']['p99_us']:9.1f}us"
    )
    print(
        f"  churned    p50={latency['under_churn']['p50_us']:8.1f}us "
        f"p99={latency['under_churn']['p99_us']:9.1f}us "
        f"(x{latency['churn_overhead_p50']:.2f} p50 overhead)"
    )

    throughput = bench_mutation_throughput(pipeline, num_mutations, args.seed)
    for kind, row in throughput.items():
        print(
            f"  {kind:7s} {row['per_second']:8.0f} mutations/s "
            f"({row['mean_us']:.0f}us each, n={row['count']})"
        )

    compaction = bench_compaction(
        pipeline, queries[: max(64, num_queries // 8)], num_mutations
    )
    print(
        f"  compaction: {compaction['tombstone_fraction']:.1%} tombstones "
        f"p50={compaction['with_tombstones']['p50_us']:.1f}us -> "
        f"{compaction['after_compaction']['p50_us']:.1f}us after reclaim"
    )

    metrics = {
        "smoke": args.smoke,
        "workload": {
            "num_entities": num_entities,
            "num_queries": num_queries,
            "num_mutations": num_mutations,
            "k": K,
            "seed": args.seed,
        },
        "cpu_count": os.cpu_count() or 1,
        "latency": latency,
        "mutation_throughput": throughput,
        "compaction": compaction,
    }
    path = write_bench_json(args.out, "mutation", metrics)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
