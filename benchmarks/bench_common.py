"""Shared helpers for the table/figure benchmarks.

Pairs each application system with the lookup service the original used
(paper Section IV: bbw queried the SearX metasearch endpoint, MantisTable
its ElasticSearch-backed LamAPI service, JenTab the Wikidata API, DoSeR a
local fuzzy matcher, Katara an edit-distance module), and provides runners
that swap in EmbLookup and report speedup + F-score.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.annotation.bbw import BbwAnnotator
from repro.annotation.doser import DoSeRDisambiguator
from repro.annotation.jentab import JenTabAnnotator
from repro.annotation.katara import KataraRepairer
from repro.annotation.mantistable import MantisTableAnnotator
from repro.core.pipeline import EmbLookup
from repro.evaluation.harness import (
    AnnotationRun,
    run_cea_system,
    run_cta_system,
    run_disambiguation,
    run_repair,
)
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import LookupService
from repro.lookup.elastic import ElasticLookup
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.levenshtein import LevenshteinLookup
from repro.lookup.remote import RemoteServiceModel, SimulatedRemoteLookup
from repro.tables.dataset import TabularDataset

__all__ = [
    "SYSTEM_ROWS",
    "SystemSpec",
    "lamapi_model",
    "original_service",
    "run_system",
]


def lamapi_model() -> RemoteServiceModel:
    """MantisTable's LamAPI: a *local* HTTP service (ES-backed) — small
    per-request overhead, generous parallelism."""
    return RemoteServiceModel(
        latency_seconds=0.004, max_parallel=8, requests_per_second=500.0
    )


@dataclass(frozen=True)
class SystemSpec:
    """One row of Tables II/III: task + system + its original lookup."""

    task: str
    system_name: str
    make_runner: Callable  # (lookup_service) -> runner object
    run: Callable          # (runner, dataset, kg) -> AnnotationRun
    make_original: Callable  # (kg) -> LookupService


def _bbw(lookup):
    return BbwAnnotator(lookup)


def _mantis(lookup):
    return MantisTableAnnotator(lookup)


def _jentab(lookup):
    return JenTabAnnotator(lookup)


SYSTEM_ROWS: list[SystemSpec] = [
    SystemSpec(
        "CEA", "bbw", _bbw, run_cea_system,
        lambda kg: SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.searx(), name="searx"
        ),
    ),
    SystemSpec(
        "CEA", "MantisTable", _mantis, run_cea_system,
        lambda kg: SimulatedRemoteLookup(
            ElasticLookup.build(kg, include_aliases=True),
            lamapi_model(),
            name="lamapi",
        ),
    ),
    SystemSpec(
        "CEA", "JenTab", _jentab, run_cea_system,
        lambda kg: SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.wikidata(), name="wikidata_api"
        ),
    ),
    SystemSpec(
        "CTA", "bbw", _bbw, run_cta_system,
        lambda kg: SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.searx(), name="searx"
        ),
    ),
    SystemSpec(
        "CTA", "MantisTable", _mantis, run_cta_system,
        lambda kg: SimulatedRemoteLookup(
            ElasticLookup.build(kg, include_aliases=True),
            lamapi_model(),
            name="lamapi",
        ),
    ),
    SystemSpec(
        "CTA", "JenTab", _jentab, run_cta_system,
        lambda kg: SimulatedRemoteLookup.build(
            kg, RemoteServiceModel.wikidata(), name="wikidata_api"
        ),
    ),
    SystemSpec(
        "EA", "DoSeR",
        lambda lookup: DoSeRDisambiguator(lookup),
        run_disambiguation,
        lambda kg: FuzzyWuzzyLookup.build(kg),
    ),
    SystemSpec(
        "DR", "Katara",
        lambda lookup: KataraRepairer(lookup),
        run_repair,
        lambda kg: LevenshteinLookup.build(kg),
    ),
]


def original_service(spec: SystemSpec, kg: KnowledgeGraph) -> LookupService:
    return spec.make_original(kg)


def run_system(
    spec: SystemSpec,
    lookup: LookupService,
    dataset: TabularDataset,
    kg: KnowledgeGraph,
) -> AnnotationRun:
    """Run one (system, lookup) pair on a dataset."""
    runner = spec.make_runner(lookup)
    return spec.run(runner, dataset, kg)


def emblookup_services(pipeline: EmbLookup, pipeline_nc: EmbLookup):
    """The four EmbLookup variants of Tables II/III:
    (EL cpu, EL-NC cpu, EL gpu-modelled, EL-NC gpu-modelled)."""
    return (
        EmbLookupService(pipeline),
        EmbLookupService(pipeline_nc),
        EmbLookupService(pipeline, gpu_mode=True),
        EmbLookupService(pipeline_nc, gpu_mode=True),
    )
