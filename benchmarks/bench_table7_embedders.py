"""Table VII — varying the embedding algorithm (CEA, clean vs errors).

Paper shape (F clean / F error):
  EmbLookup 0.88 / 0.84 > LSTM 0.86 / 0.78 > fastText 0.76 / 0.72
  > BERT 0.77 / 0.68 >> word2vec 0.72 / 0.29.

The invariant to reproduce: EmbLookup on top in both columns; the triplet-
trained LSTM the strongest baseline; subword models (fastText, the
wordpiece BERT stand-in) degrade gracefully under errors; whole-word
word2vec collapses under errors (typos are out-of-vocabulary).
"""

import pytest

from conftest import record_table
from repro.embedding.lstm import CharLSTMConfig, CharLSTMEmbedder
from repro.embedding.fasttext import FastTextConfig, FastTextModel
from repro.embedding.word2vec import Word2VecConfig, Word2VecModel
from repro.embedding.wordpiece import WordPieceConfig, WordPieceModel
from repro.evaluation.metrics import candidate_recall_at_k
from repro.lookup.embedder_service import EmbedderLookupService
from repro.lookup.emblookup_service import EmbLookupService
from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder
from repro.text.noise import NoiseModel
from repro.text.tokenize import normalize
from repro.triplets.mining import TripletMiner, TripletMiningConfig

K = 10


@pytest.fixture(scope="module")
def workload(ds_medium):
    refs = [r for r in ds_medium.annotated_cells() if ds_medium.cell_text(r)]
    clean = [ds_medium.cell_text(ref) for ref in refs]
    truth = [ds_medium.cea[ref] for ref in refs]
    noise = NoiseModel(seed=44)
    noisy = [noise.corrupt(q) for q in clean]
    return clean, noisy, truth


@pytest.fixture(scope="module")
def synonym_groups(kg_medium):
    return [list(e.mentions) for e in kg_medium.entities()]


@pytest.fixture(scope="module")
def embedder_services(kg_medium, synonym_groups, el_medium):
    corpus = [normalize(m) for group in synonym_groups for m in group]
    encoder = OneHotEncoder(Alphabet.fit(corpus), max_length=32)

    word2vec = Word2VecModel(Word2VecConfig(dim=64, epochs=3, seed=0))
    word2vec.fit(synonym_groups)

    fasttext = FastTextModel(FastTextConfig(dim=64, epochs=3, seed=0))
    fasttext.fit(synonym_groups)

    wordpiece = WordPieceModel(WordPieceConfig(dim=64, epochs=3, seed=0))
    wordpiece.fit(synonym_groups)

    lstm = CharLSTMEmbedder(
        encoder, CharLSTMConfig(dim=64, hidden=32, epochs=2, seed=0)
    )
    miner = TripletMiner(
        kg_medium, TripletMiningConfig(triplets_per_entity=4, seed=0)
    )
    lstm.fit(miner.mine())

    return {
        "EmbLookup": EmbLookupService(el_medium),
        "word2vec": EmbedderLookupService.build(
            kg_medium, embedder=word2vec, name="word2vec"),
        "fastText": EmbedderLookupService.build(
            kg_medium, embedder=fasttext, name="fasttext"),
        "BERT-style": EmbedderLookupService.build(
            kg_medium, embedder=wordpiece, name="wordpiece"),
        "LSTM": EmbedderLookupService.build(
            kg_medium, embedder=lstm, name="lstm"),
    }


def _score(service, queries, truth):
    results = service.lookup_batch(queries, K)
    ids = [[c.entity_id for c in row] for row in results]
    return candidate_recall_at_k(ids, truth, K)


def test_table7_embedding_algorithms(benchmark, embedder_services, workload):
    clean, noisy, truth = workload

    def evaluate():
        rows = {}
        for name, service in embedder_services.items():
            rows[name] = (
                _score(service, clean, truth),
                _score(service, noisy, truth),
            )
        return rows

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    table = [
        [name, clean_f, noisy_f]
        for name, (clean_f, noisy_f) in scores.items()
    ]
    record_table(
        "table7_embedders",
        ["embedding", "F (no error)", "F (error)"],
        table,
        title="Table VII: varying the embedding generation algorithm (CEA)",
    )

    el_clean, el_noisy = scores["EmbLookup"]
    # Shape 1: EmbLookup leads both columns.
    for name, (clean_f, noisy_f) in scores.items():
        if name == "EmbLookup":
            continue
        assert el_clean >= clean_f - 0.05, name
        assert el_noisy >= noisy_f - 0.05, name

    # Shape 2: word2vec collapses under errors (OOV typos).
    w2v_clean, w2v_noisy = scores["word2vec"]
    assert w2v_noisy < w2v_clean - 0.2
    assert el_noisy > w2v_noisy + 0.2

    # Shape 3: subword models degrade gracefully, not catastrophically.
    ft_clean, ft_noisy = scores["fastText"]
    assert ft_noisy > w2v_noisy
