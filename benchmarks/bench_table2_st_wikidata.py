"""Table II — EmbLookup accelerating five systems on ST-Wikidata.

Paper shape: EL achieves 20-64x CPU speedup (78-163x GPU) over each
system's original lookup service with F-score within 0.03; EL-NC is a bit
slower than EL but matches the original F-score almost exactly.

Here the original services are the simulated remote endpoints / local
scan matchers each system actually used (see bench_common.SYSTEM_ROWS);
GPU rows use the documented V100 throughput model and are labelled
"modelled".
"""

import pytest

from conftest import record_table
from bench_common import SYSTEM_ROWS, emblookup_services, original_service, run_system


@pytest.fixture(scope="module")
def table2_rows(kg_wikidata, ds_wikidata, el_wikidata, elnc_wikidata):
    el_cpu, elnc_cpu, el_gpu, elnc_gpu = emblookup_services(
        el_wikidata, elnc_wikidata
    )
    rows = []
    for spec in SYSTEM_ROWS:
        original = run_system(
            spec, original_service(spec, kg_wikidata), ds_wikidata, kg_wikidata
        )
        run_el = run_system(spec, el_cpu, ds_wikidata, kg_wikidata)
        run_elnc = run_system(spec, elnc_cpu, ds_wikidata, kg_wikidata)
        run_el_gpu = run_system(spec, el_gpu, ds_wikidata, kg_wikidata)
        run_elnc_gpu = run_system(spec, elnc_gpu, ds_wikidata, kg_wikidata)
        rows.append(
            {
                "spec": spec,
                "original": original,
                "el": run_el,
                "elnc": run_elnc,
                "el_gpu": run_el_gpu,
                "elnc_gpu": run_elnc_gpu,
            }
        )
    return rows


def test_table2_speedup_and_fscore(benchmark, table2_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = []
    for row in table2_rows:
        spec = row["spec"]
        original = row["original"]
        table.append(
            [
                spec.task,
                spec.system_name,
                f"{row['el'].speedup_over(original):.0f}x",
                f"{row['elnc'].speedup_over(original):.0f}x",
                f"{row['el_gpu'].speedup_over(original):.0f}x*",
                f"{row['elnc_gpu'].speedup_over(original):.0f}x*",
                original.f_score,
                row["el"].f_score,
                row["elnc"].f_score,
            ]
        )
    record_table(
        "table2_st_wikidata",
        ["task", "system", "EL cpu", "EL-NC cpu", "EL gpu", "EL-NC gpu",
         "F orig", "F EL", "F EL-NC"],
        table,
        title=(
            "Table II: EmbLookup accelerating lookups, ST-Wikidata "
            "(* = modelled V100 throughput)"
        ),
    )

    for row in table2_rows:
        original, el, elnc = row["original"], row["el"], row["elnc"]
        spec = row["spec"]
        label = f"{spec.task}/{spec.system_name}"
        # Shape 1: order-of-magnitude speedup over the original service.
        assert el.speedup_over(original) > 5, label
        # Shape 2: GPU-modelled beats CPU.
        assert row["el_gpu"].speedup_over(original) > el.speedup_over(original), label
        # Shape 3: near-zero accuracy loss (paper: max 0.03; we allow a
        # looser envelope at reproduction scale).
        assert el.f_score > original.f_score - 0.12, label
        # Shape 4: EL-NC at least as accurate as EL (no quantization loss).
        assert elnc.f_score >= el.f_score - 0.05, label
