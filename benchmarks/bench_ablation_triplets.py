"""Ablation (extension beyond the paper): triplet-source composition.

DESIGN.md calls out EmbLookup's triplet mixture (alias positives, typo
perturbations, same-type neighbours) as a design choice worth ablating.
We train four variants at the same total budget — alias-only, typo-only,
type-only, and the full mixture — and evaluate syntactic (noisy) and
semantic (alias) lookup success.

Expected shape: typo-only wins syntactic but loses semantic; alias-only
the reverse; the full mixture is the best compromise (highest mean).
"""

from dataclasses import replace

import pytest

from conftest import BENCH_TRAIN_CONFIG, cached_emblookup, record_table
from repro.evaluation.metrics import candidate_recall_at_k
from repro.lookup.emblookup_service import EmbLookupService
from repro.text.noise import NoiseModel
from repro.triplets.mining import TripletMiningConfig

K = 10

MIXTURES = {
    "alias-only": (1.0, 0.0, 0.0),
    "typo-only": (0.0, 1.0, 0.0),
    "type-only": (0.0, 0.0, 1.0),
    "full": (0.4, 0.45, 0.15),
}


@pytest.fixture(scope="module")
def workloads(kg_medium):
    entities = list(kg_medium.entities())[:300]
    noise = NoiseModel(seed=88)
    noisy = ([noise.corrupt(e.label) for e in entities],
             [e.entity_id for e in entities])
    alias_pairs = [(e.aliases[0], e.entity_id) for e in entities if e.aliases]
    aliases = ([a for a, _ in alias_pairs], [t for _, t in alias_pairs])
    return noisy, aliases


@pytest.fixture(scope="module")
def ablation(kg_medium, workloads):
    (noisy_q, noisy_t), (alias_q, alias_t) = workloads
    results = {}
    for name, (alias_f, typo_f, type_f) in MIXTURES.items():
        config = replace(
            BENCH_TRAIN_CONFIG,
            mining=TripletMiningConfig(
                triplets_per_entity=BENCH_TRAIN_CONFIG.triplets_per_entity,
                alias_fraction=alias_f,
                typo_fraction=typo_f,
                type_fraction=type_f,
                seed=1,
            ),
        )
        pipeline = cached_emblookup(f"el_ablate_{name}", kg_medium, config)
        service = EmbLookupService(pipeline)

        def success(queries, truth):
            rows = service.lookup_batch(queries, K)
            ids = [[c.entity_id for c in row] for row in rows]
            return candidate_recall_at_k(ids, truth, K)

        results[name] = (success(noisy_q, noisy_t), success(alias_q, alias_t))
    return results


def test_ablation_triplet_sources(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [
        [name, syntactic, semantic, (syntactic + semantic) / 2]
        for name, (syntactic, semantic) in ablation.items()
    ]
    record_table(
        "ablation_triplets",
        ["mixture", "syntactic (typos)", "semantic (aliases)", "mean"],
        table,
        title="Ablation: triplet-source composition (recall@10)",
    )

    # Shape 1: each specialist beats the opposite specialist on its axis.
    assert ablation["typo-only"][0] > ablation["alias-only"][0] - 0.03
    assert ablation["alias-only"][1] > ablation["typo-only"][1]

    # Shape 2: the full mixture is the best (or near-best) compromise.
    full_mean = sum(ablation["full"]) / 2
    for name, scores in ablation.items():
        assert full_mean >= sum(scores) / 2 - 0.06, name
