"""Figure 3 — impact of the triplet budget on the four tasks.

Paper shape: accuracy rises with the number of triplets per entity but
with rapidly diminishing returns (the text: "increasing the number of
triplets slightly increases the accuracy"), while training time grows
proportionately (1 h at 100/entity, 1.8 h at 200, 9.2 h at 1000).

Scaled sweep: 4 / 10 / 20 triplets per entity on the medium KG; we report
the F-score of all four tasks plus measured training time per budget.
"""

import time
from dataclasses import replace

import pytest

from conftest import BENCH_TRAIN_CONFIG, cached_emblookup, record_table
from bench_common import SYSTEM_ROWS, run_system
from repro.lookup.emblookup_service import EmbLookupService
from repro.triplets.mining import TripletMiningConfig

BUDGETS = (4, 10, 20)

#: One representative system per task (the figure plots per-task curves).
_TASK_SPECS = {
    "CEA": next(s for s in SYSTEM_ROWS if s.task == "CEA" and s.system_name == "bbw"),
    "CTA": next(s for s in SYSTEM_ROWS if s.task == "CTA" and s.system_name == "bbw"),
    "EA": next(s for s in SYSTEM_ROWS if s.task == "EA"),
    "DR": next(s for s in SYSTEM_ROWS if s.task == "DR"),
}


@pytest.fixture(scope="module")
def sweep(kg_medium, ds_medium):
    results = {}
    for budget in BUDGETS:
        config = replace(
            BENCH_TRAIN_CONFIG,
            triplets_per_entity=budget,
            mining=TripletMiningConfig(triplets_per_entity=budget, seed=1),
        )
        start = time.perf_counter()
        pipeline = cached_emblookup(f"el_medium_t{budget}", kg_medium, config)
        train_seconds = time.perf_counter() - start
        service = EmbLookupService(pipeline)
        scores = {
            task: run_system(spec, service, ds_medium, kg_medium).f_score
            for task, spec in _TASK_SPECS.items()
        }
        results[budget] = (scores, train_seconds)
    return results


def test_fig3_triplet_budget(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = []
    for budget in BUDGETS:
        scores, train_seconds = sweep[budget]
        table.append(
            [budget, scores["CEA"], scores["CTA"], scores["EA"], scores["DR"],
             f"{train_seconds:.0f}s"]
        )
    record_table(
        "fig3_triplets",
        ["triplets/entity", "F CEA", "F CTA", "F EA", "F DR", "train time"],
        table,
        title=(
            "Figure 3: accuracy vs triplets per entity (train time 0s = "
            "loaded from cache)"
        ),
    )

    smallest, largest = BUDGETS[0], BUDGETS[-1]
    for task in _TASK_SPECS:
        low = sweep[smallest][0][task]
        high = sweep[largest][0][task]
        # Shape: more triplets never hurt much, and the mean across tasks
        # improves from the smallest to the largest budget.
        assert high >= low - 0.08, task
    mean_low = sum(sweep[smallest][0].values()) / 4
    mean_high = sum(sweep[largest][0].values()) / 4
    assert mean_high >= mean_low - 0.02
