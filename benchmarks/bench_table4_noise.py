"""Table IV — F-scores under noisy tabular data (3 datasets).

Paper shape: with 10 % of cells corrupted, the original systems collapse
(e.g. JenTab CEA 0.25 on ST-Wikidata) while EmbLookup stays much closer to
its no-error score; Tough Tables shows the same gap.  Retrieval speed is
unchanged by noise.
"""

import pytest

from conftest import record_table
from bench_common import SYSTEM_ROWS, original_service, run_system
from repro.lookup.emblookup_service import EmbLookupService


@pytest.fixture(scope="module")
def noisy_wikidata(ds_wikidata):
    return ds_wikidata.with_noise(fraction=0.1, seed=21)


@pytest.fixture(scope="module")
def noisy_dbpedia(ds_dbpedia):
    return ds_dbpedia.with_noise(fraction=0.1, seed=22)


def _rows_for(kg, noisy_ds, el_pipeline):
    el = EmbLookupService(el_pipeline)
    rows = []
    for spec in SYSTEM_ROWS:
        original = run_system(spec, original_service(spec, kg), noisy_ds, kg)
        replaced = run_system(spec, el, noisy_ds, kg)
        rows.append((spec, original, replaced))
    return rows


@pytest.fixture(scope="module")
def wikidata_rows(kg_wikidata, noisy_wikidata, el_wikidata):
    return _rows_for(kg_wikidata, noisy_wikidata, el_wikidata)


@pytest.fixture(scope="module")
def dbpedia_rows(kg_dbpedia, noisy_dbpedia, el_dbpedia):
    return _rows_for(kg_dbpedia, noisy_dbpedia, el_dbpedia)


@pytest.fixture(scope="module")
def tough_rows(kg_wikidata, ds_tough, el_wikidata):
    return _rows_for(kg_wikidata, ds_tough, el_wikidata)


def test_table4_noise_robustness(
    benchmark, wikidata_rows, dbpedia_rows, tough_rows
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = []
    datasets = [
        ("st_wikidata+err", wikidata_rows),
        ("st_dbpedia+err", dbpedia_rows),
        ("tough_tables", tough_rows),
    ]
    by_spec: dict[str, list[float]] = {}
    for ds_name, rows in datasets:
        for spec, original, replaced in rows:
            table.append(
                [ds_name, spec.task, spec.system_name,
                 original.f_score, replaced.f_score]
            )
            by_spec.setdefault(f"{spec.task}/{spec.system_name}", []).append(
                replaced.f_score - original.f_score
            )
    record_table(
        "table4_noise",
        ["dataset", "task", "system", "F original", "F EmbLookup"],
        table,
        title="Table IV: F-score under noisy tabular data",
    )

    # Shape 1: EmbLookup wins or ties on the strong majority of rows.
    # (At this KG scale a 10 % noise level barely dents the originals —
    # multi-word cells still word-match and the exhaustive local scans are
    # effectively exact; the divergence is documented in EXPERIMENTS.md,
    # and the noise *sweep* bench shows the paper's separation once the
    # noise level rises.)
    margins = [m for ms in by_spec.values() for m in ms]
    wins = sum(1 for m in margins if m > -0.03)
    assert wins >= int(0.7 * len(margins)), f"wins={wins}/{len(margins)}"
    # Shape 2: where the original relies on collective disambiguation over
    # noisy candidates (DoSeR), EmbLookup's robust candidates win clearly.
    ea_margins = by_spec["EA/DoSeR"]
    assert sum(ea_margins) / len(ea_margins) > 0.02
    # Shape 3: EmbLookup's own accuracy stays usable on every noisy row of
    # the annotation tasks (the paper: "not that far off from no-error").
    for (spec, original, replaced) in (
        wikidata_rows + dbpedia_rows + tough_rows
    ):
        if spec.task in ("CEA", "CTA"):
            assert replaced.f_score > 0.6, f"{spec.task}/{spec.system_name}"


def test_table4_speed_unaffected_by_noise(
    benchmark, kg_wikidata, ds_wikidata, noisy_wikidata, el_wikidata
):
    """Paper: 'the retrieval speed of EmbLookup is not affected by the
    presence or absence of errors.'"""
    from bench_common import SYSTEM_ROWS

    spec = SYSTEM_ROWS[0]  # CEA / bbw
    el = EmbLookupService(el_wikidata)

    def run_clean():
        return run_system(spec, el, ds_wikidata, kg_wikidata)

    clean = benchmark.pedantic(run_clean, rounds=1, iterations=1)
    noisy = run_system(spec, el, noisy_wikidata, kg_wikidata)
    ratio = noisy.lookup_seconds / max(clean.lookup_seconds, 1e-9)
    assert 0.4 < ratio < 2.5
