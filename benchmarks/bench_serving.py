"""Serving-path benchmark: blockwise scans, shard scaling, cache hit curves.

Writes ``BENCH_serving.json`` at the repo root (override with ``--out``).
Three measurement families, matching the serving engine's design levers:

1. **Scan throughput** — the pre-blockwise flat scan materialised the full
   ``(num_queries, ntotal)`` float64 distance matrix; the streaming scan
   caps the working set at ``(num_queries, block)``.  Both are timed on
   the same workload.
2. **Shard scaling** — :class:`ShardedIndex` over 1/2/4/8 flat shards,
   reported as speedup against the full-materialisation baseline (the
   paper-style single-shard scan).  Result equality with the unsharded
   scan is asserted, not assumed.
3. **Cache hit curves** — LRU hit rate of :class:`QueryCache` under a
   Zipf-skewed query stream, across cache capacities.

``--smoke`` shrinks the workload to a few seconds of CI time; the checked
in ``BENCH_serving.json`` comes from a full run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

# Pin BLAS pools before numpy loads: shard fan-out supplies the thread
# parallelism here, and nested BLAS threading only adds contention.
for _var in (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from repro.index.flat import FlatIndex  # noqa: E402
from repro.index.sharded import ShardedIndex  # noqa: E402
from repro.index.topk import block_topk  # noqa: E402
from repro.lookup.cache import QueryCache  # noqa: E402
from tools.bench_json import write_bench_json  # noqa: E402


def timed(fn, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock seconds and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def full_scan(data: np.ndarray, queries: np.ndarray, k: int):
    """The pre-blockwise reference: materialise every pairwise distance.

    This reproduces the old ``FlatIndex.search`` memory profile — one
    ``(num_queries, ntotal)`` float64 matrix — and is the "single-shard
    flat scan" baseline the shard-scaling numbers are measured against.
    """
    a = queries.astype(np.float64)
    b = data.astype(np.float64)
    d = (
        (a * a).sum(axis=1)[:, None]
        - 2.0 * (a @ b.T)
        + (b * b).sum(axis=1)[None, :]
    )
    np.maximum(d, 0.0, out=d)
    return block_topk(d, k)


def bench_scans(data, queries, k, block_sizes, repeats):
    """Time the full-materialisation scan against blockwise scans."""
    nq = len(queries)
    full_s, (ref_ids, _) = timed(lambda: full_scan(data, queries, k), repeats)
    scans = {
        "full_materialization": {
            "seconds": full_s,
            "queries_per_sec": nq / full_s,
        }
    }
    shard_ref_ids = ref_ids
    for block in block_sizes:
        index = FlatIndex(data.shape[1], block_size=block)
        index.add(data)
        sec, result = timed(lambda: index.search(queries, k), repeats)
        assert np.array_equal(result.ids, ref_ids), (
            f"blockwise scan (block={block}) diverged from full scan"
        )
        scans[f"blockwise_{block}"] = {
            "seconds": sec,
            "queries_per_sec": nq / sec,
        }
    return scans, shard_ref_ids, full_s


def bench_shards(data, queries, k, shard_counts, repeats, ref_ids, full_s):
    """Time ShardedIndex fan-out, checking equality with the flat scan."""
    out = {}
    for num_shards in shard_counts:
        index = ShardedIndex(data.shape[1], num_shards)
        index.add(data)
        index.search(queries[:4], k)  # spin up the worker pool
        sec, result = timed(lambda: index.search(queries, k), repeats)
        assert np.array_equal(result.ids, ref_ids), (
            f"{num_shards}-shard scan diverged from the flat scan"
        )
        out[str(num_shards)] = {
            "seconds": sec,
            "queries_per_sec": len(queries) / sec,
            "speedup_vs_full_scan": full_s / sec,
        }
        index.close()
    return out


def bench_cache(capacities, num_queries, vocab, zipf_a, dim, seed):
    """LRU hit rate under a Zipf-skewed stream, per cache capacity."""
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(zipf_a, size=num_queries)
    ranks = np.minimum(ranks, vocab) - 1
    vector = np.zeros(dim, dtype=np.float32)
    curves = {}
    for capacity in capacities:
        cache = QueryCache(capacity)
        for r in ranks:
            query = f"entity-{r}"
            if cache.get_embedding(query) is None:
                cache.put_embedding(query, vector)
        curves[str(capacity)] = {
            "hit_rate": cache.stats.hit_rate,
            "evictions": cache.stats.evictions,
        }
    return curves


def main(argv=None) -> int:
    """Run the serving benchmark and write BENCH_serving.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_serving.json",
        help="output JSON path",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.smoke:
        n, dim, nq, repeats = 4000, 64, 32, 1
        block_sizes = [1024, 4096]
        cache_queries, vocab = 2000, 500
    else:
        n, dim, nq, repeats = 50_000, 64, 256, 3
        block_sizes = [1024, 4096, 8192]
        cache_queries, vocab = 20_000, 5_000
    k = 10
    shard_counts = [1, 2, 4, 8]

    rng = np.random.default_rng(args.seed)
    data = rng.normal(size=(n, dim)).astype(np.float32)
    queries = rng.normal(size=(nq, dim)).astype(np.float32)

    print(f"workload: {n} vectors x {dim}d, {nq} queries, k={k}")
    scans, ref_ids, full_s = bench_scans(data, queries, k, block_sizes, repeats)
    for name, row in scans.items():
        print(f"  scan {name:24s} {row['seconds'] * 1e3:8.1f} ms")
    shards = bench_shards(
        data, queries, k, shard_counts, repeats, ref_ids, full_s
    )
    for num, row in shards.items():
        print(
            f"  shards={num:3s} {row['seconds'] * 1e3:8.1f} ms "
            f"({row['speedup_vs_full_scan']:.2f}x vs full scan)"
        )
    cache_curves = bench_cache(
        [64, 256, 1024, 4096], cache_queries, vocab, 1.3, dim, args.seed
    )
    for cap, row in cache_curves.items():
        print(f"  cache cap={cap:5s} hit_rate={row['hit_rate']:.3f}")

    metrics = {
        "smoke": args.smoke,
        "workload": {
            "num_vectors": n,
            "dim": dim,
            "num_queries": nq,
            "k": k,
            "seed": args.seed,
            "repeats": repeats,
        },
        "scan_throughput": scans,
        "shard_scaling": shards,
        "cache_hit_rates": cache_curves,
        "results_identical_across_variants": True,
    }
    path = write_bench_json(args.out, "serving", metrics)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
