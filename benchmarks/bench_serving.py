"""Serving-path benchmark: blockwise scans, shard scaling, cache hit curves.

Writes ``BENCH_serving.json`` at the repo root (override with ``--out``).
Four measurement families, matching the serving engine's design levers:

1. **Scan throughput** — the pre-blockwise flat scan materialised the full
   ``(num_queries, ntotal)`` float64 distance matrix; the streaming scan
   caps the working set at ``(num_queries, block)``.  Both are timed on
   the same workload.
2. **PQ ADC kernels** — the legacy per-subquantizer fancy-index
   accumulation against the transposed-LUT contiguous-gather kernel
   (``ProductQuantizer.scan_codes``), both inside the same blockwise
   top-k scan; bit-identical ids *and* distances are asserted.
3. **Shard scaling** — :class:`ShardedIndex` over 1/2/4/8 flat shards for
   each executor (``thread`` and, on multi-core hosts, ``process``),
   reported as speedup against the full-materialisation baseline (the
   paper-style single-shard scan) plus per-shard wall seconds from
   ``health_stats``.  Result equality with the unsharded scan is
   asserted, not assumed.  Shard scaling is executor- and core-count
   dependent, which is why every row records ``cpu_count`` and the
   executor it ran on: on a 1-CPU host neither executor can beat the
   single-shard scan, and the process pool additionally pays IPC.
4. **Cache hit curves** — LRU hit rate of :class:`QueryCache` under a
   Zipf-skewed query stream, across cache capacities.

``--smoke`` shrinks the workload to a few seconds of CI time; the checked
in ``BENCH_serving.json`` comes from a full run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

# Pin BLAS pools before numpy loads: shard fan-out supplies the thread
# parallelism here, and nested BLAS threading only adds contention.
for _var in (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from repro.index.flat import FlatIndex  # noqa: E402
from repro.index.pq import PQIndex  # noqa: E402
from repro.index.sharded import ShardedIndex  # noqa: E402
from repro.index.topk import (  # noqa: E402
    auto_block_size,
    block_topk,
    blockwise_topk,
)
from repro.lookup.cache import QueryCache  # noqa: E402
from tools.bench_json import write_bench_json  # noqa: E402


def timed(fn, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock seconds and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def full_scan(data: np.ndarray, queries: np.ndarray, k: int):
    """The pre-blockwise reference: materialise every pairwise distance.

    This reproduces the old ``FlatIndex.search`` memory profile — one
    ``(num_queries, ntotal)`` float64 matrix — and is the "single-shard
    flat scan" baseline the shard-scaling numbers are measured against.
    """
    a = queries.astype(np.float64)
    b = data.astype(np.float64)
    d = (
        (a * a).sum(axis=1)[:, None]
        - 2.0 * (a @ b.T)
        + (b * b).sum(axis=1)[None, :]
    )
    np.maximum(d, 0.0, out=d)
    return block_topk(d, k)


def bench_scans(data, queries, k, block_sizes, repeats):
    """Time the full-materialisation scan against blockwise scans."""
    nq = len(queries)
    full_s, (ref_ids, _) = timed(lambda: full_scan(data, queries, k), repeats)
    scans = {
        "full_materialization": {
            "seconds": full_s,
            "queries_per_sec": nq / full_s,
        }
    }
    shard_ref_ids = ref_ids
    for block in block_sizes:
        index = FlatIndex(data.shape[1], block_size=block)
        index.add(data)
        sec, result = timed(lambda: index.search(queries, k), repeats)
        assert np.array_equal(result.ids, ref_ids), (
            f"blockwise scan (block={block}) diverged from full scan"
        )
        scans[f"blockwise_{block}"] = {
            "seconds": sec,
            "queries_per_sec": nq / sec,
        }
    # The cache-budget heuristic (block_size=None): the largest
    # power-of-two block whose score tile stays inside the LLC budget —
    # this is what fixed the blockwise-8192 regression at nq=256.
    index = FlatIndex(data.shape[1])
    index.add(data)
    sec, result = timed(lambda: index.search(queries, k), repeats)
    assert np.array_equal(result.ids, ref_ids), (
        "auto-block scan diverged from full scan"
    )
    scans["blockwise_auto"] = {
        "seconds": sec,
        "queries_per_sec": nq / sec,
        "block_size": auto_block_size(nq),
    }
    return scans, shard_ref_ids, full_s


def legacy_pq_block_scan(index, queries, k):
    """The pre-PR 6 ADC kernel inside the same blockwise top-k scan.

    Per block it fancy-indexes ``tables[:, j, codes[:, j]]`` for each
    subquantizer — one mapiter-driven gather per (query, row) element —
    which is the per-subquantizer accumulation the transposed-LUT
    ``scan_codes`` kernel replaced.  Summation order over ``j`` is
    identical, so the two kernels must agree bit-for-bit.
    """
    tables = index.pq.distance_tables(queries)
    codes = index.codes

    def score(start, stop):
        block = codes[start:stop]
        out = np.zeros((len(queries), len(block)), dtype=np.float64)  # repro: noqa[REP102]
        for j in range(index.pq.m):
            out += tables[:, j, block[:, j]]
        return out

    ids, distances = blockwise_topk(
        score, len(codes), k, len(queries), block_size=index.block_size
    )
    return ids, distances


def bench_pq_scans(data, queries, k, repeats, m=8, nbits=8, seed=3):
    """Legacy fancy-index ADC vs the transposed-LUT gather kernel."""
    index = PQIndex(data.shape[1], m=m, nbits=nbits, seed=seed)
    index.train(data[: min(len(data), 20_000)])
    index.add(data)
    nq = len(queries)
    legacy_s, (legacy_ids, legacy_d) = timed(
        lambda: legacy_pq_block_scan(index, queries, k), repeats
    )
    new_s, result = timed(lambda: index.search(queries, k), repeats)
    assert np.array_equal(result.ids, legacy_ids), (
        "transposed-LUT ADC kernel diverged from the legacy kernel"
    )
    assert np.array_equal(result.distances, legacy_d), (
        "transposed-LUT ADC distances diverged from the legacy kernel"
    )
    return {
        "m": m,
        "nbits": nbits,
        "legacy_fancy_index": {
            "seconds": legacy_s,
            "queries_per_sec": nq / legacy_s,
        },
        "transposed_lut_gather": {
            "seconds": new_s,
            "queries_per_sec": nq / new_s,
        },
        "speedup": legacy_s / new_s,
    }


def bench_shards(
    data, queries, k, shard_counts, repeats, ref_ids, full_s, executors
):
    """Time ShardedIndex fan-out per executor, checking scan equality.

    Each row carries the per-shard wall seconds accumulated by
    ``health_stats`` across the timed repeats, so a lopsided shard (or a
    worker paying IPC) is visible in the checked-in JSON, not just the
    aggregate.
    """
    out = {}
    for executor in executors:
        rows = {}
        for num_shards in shard_counts:
            index = ShardedIndex(
                data.shape[1], num_shards, executor=executor
            )
            index.add(data)
            index.search(queries[:4], k)  # spin up the worker pool
            baseline = index.health_stats()
            sec, result = timed(lambda: index.search(queries, k), repeats)
            assert np.array_equal(result.ids, ref_ids), (
                f"{num_shards}-shard {executor} scan diverged from flat"
            )
            health = index.health_stats()
            shard_seconds = [
                round(
                    (after["seconds"] - before["seconds"]) / repeats, 6
                )
                for after, before in zip(
                    health["shards"], baseline["shards"]
                )
            ]
            rows[str(num_shards)] = {
                "seconds": sec,
                "queries_per_sec": len(queries) / sec,
                "speedup_vs_full_scan": full_s / sec,
                "mean_shard_seconds_per_search": shard_seconds,
            }
            index.close()
        out[executor] = rows
    return out


def bench_cache(capacities, num_queries, vocab, zipf_a, dim, seed):
    """LRU hit rate under a Zipf-skewed stream, per cache capacity."""
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(zipf_a, size=num_queries)
    ranks = np.minimum(ranks, vocab) - 1
    vector = np.zeros(dim, dtype=np.float32)
    curves = {}
    for capacity in capacities:
        cache = QueryCache(capacity)
        for r in ranks:
            query = f"entity-{r}"
            if cache.get_embedding(query) is None:
                cache.put_embedding(query, vector)
        curves[str(capacity)] = {
            "hit_rate": cache.stats.hit_rate,
            "evictions": cache.stats.evictions,
        }
    return curves


def main(argv=None) -> int:
    """Run the serving benchmark and write BENCH_serving.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_serving.json",
        help="output JSON path",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.smoke:
        n, dim, nq, repeats = 4000, 64, 32, 1
        block_sizes = [1024, 4096]
        cache_queries, vocab = 2000, 500
    else:
        n, dim, nq, repeats = 50_000, 64, 256, 3
        block_sizes = [1024, 4096, 8192]
        cache_queries, vocab = 20_000, 5_000
    k = 10
    shard_counts = [1, 2, 4, 8]

    rng = np.random.default_rng(args.seed)
    data = rng.normal(size=(n, dim)).astype(np.float32)
    queries = rng.normal(size=(nq, dim)).astype(np.float32)

    cpu_count = os.cpu_count() or 1
    executors = ["thread"]
    if cpu_count > 1:
        executors.append("process")
    print(
        f"workload: {n} vectors x {dim}d, {nq} queries, k={k} "
        f"(cpu_count={cpu_count}, executors={executors})"
    )
    scans, ref_ids, full_s = bench_scans(data, queries, k, block_sizes, repeats)
    for name, row in scans.items():
        print(f"  scan {name:24s} {row['seconds'] * 1e3:8.1f} ms")
    pq_scans = bench_pq_scans(data, queries, k, repeats)
    print(
        f"  pq adc legacy {pq_scans['legacy_fancy_index']['seconds'] * 1e3:8.1f} ms"
        f" -> gather {pq_scans['transposed_lut_gather']['seconds'] * 1e3:8.1f} ms"
        f" ({pq_scans['speedup']:.2f}x)"
    )
    shards = bench_shards(
        data, queries, k, shard_counts, repeats, ref_ids, full_s, executors
    )
    for executor, rows in shards.items():
        for num, row in rows.items():
            print(
                f"  {executor:7s} shards={num:3s} "
                f"{row['seconds'] * 1e3:8.1f} ms "
                f"({row['speedup_vs_full_scan']:.2f}x vs full scan)"
            )
    cache_curves = bench_cache(
        [64, 256, 1024, 4096], cache_queries, vocab, 1.3, dim, args.seed
    )
    for cap, row in cache_curves.items():
        print(f"  cache cap={cap:5s} hit_rate={row['hit_rate']:.3f}")

    metrics = {
        "smoke": args.smoke,
        "workload": {
            "num_vectors": n,
            "dim": dim,
            "num_queries": nq,
            "k": k,
            "seed": args.seed,
            "repeats": repeats,
        },
        "cpu_count": cpu_count,
        "executors_measured": executors,
        "scan_throughput": scans,
        "pq_adc_kernels": pq_scans,
        "shard_scaling": shards,
        "cache_hit_rates": cache_curves,
        "results_identical_across_variants": True,
    }
    path = write_bench_json(args.out, "serving", metrics)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
