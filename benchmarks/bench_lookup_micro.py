"""Micro-benchmarks of the lookup services (pytest-benchmark timings).

These complement the table benches with repeated-measurement timings of
the raw ``lookup_batch`` call for EmbLookup (EL and EL-NC) and the local
baselines — the quantity behind every speedup column.
"""

import pytest

from repro.lookup.elastic import ElasticLookup
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.qgram import QGramLookup
from repro.text.noise import NoiseModel

K = 10
BATCH = 64


@pytest.fixture(scope="module")
def queries(kg_wikidata):
    noise = NoiseModel(seed=77)
    labels = [e.label for e in list(kg_wikidata.entities())[:BATCH]]
    # Half clean, half corrupted — the realistic mixture.
    return [
        noise.corrupt(label) if i % 2 else label
        for i, label in enumerate(labels)
    ]


def test_bench_emblookup_pq(benchmark, el_wikidata, queries):
    service = EmbLookupService(el_wikidata)
    benchmark(service.lookup_batch, queries, K)


def test_bench_emblookup_flat(benchmark, elnc_wikidata, queries):
    service = EmbLookupService(elnc_wikidata)
    benchmark(service.lookup_batch, queries, K)


def test_bench_exact_match(benchmark, kg_wikidata, queries):
    service = ExactMatchLookup.build(kg_wikidata)
    benchmark(service.lookup_batch, queries, K)


def test_bench_qgram(benchmark, kg_wikidata, queries):
    service = QGramLookup.build(kg_wikidata)
    benchmark(service.lookup_batch, queries, K)


def test_bench_elastic(benchmark, kg_wikidata, queries):
    service = ElasticLookup.build(kg_wikidata)
    benchmark(service.lookup_batch, queries, K)


def test_bench_fuzzywuzzy(benchmark, kg_wikidata, queries):
    service = FuzzyWuzzyLookup.build(kg_wikidata)
    benchmark.pedantic(service.lookup_batch, args=(queries, K), rounds=1, iterations=1)
