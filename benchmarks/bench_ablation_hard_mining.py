"""Ablation: the offline -> online hard-mining schedule (Section III-B).

The paper trains the first 50 epochs on all triplets and the second 50 on
hard/semi-hard triplets only, arguing easy triplets "slow the learning
process".  We compare three schedules at equal budget: offline-only,
the paper's half-and-half, and online-from-the-start.
"""

from dataclasses import replace

import pytest

from conftest import BENCH_TRAIN_CONFIG, cached_emblookup, record_table
from repro.evaluation.metrics import candidate_recall_at_k
from repro.lookup.emblookup_service import EmbLookupService
from repro.text.noise import NoiseModel

K = 10

SCHEDULES = {
    "offline-only": 1.0,
    "half-online (paper)": 0.5,
    "online-from-start": 0.0,
}


@pytest.fixture(scope="module")
def workloads(kg_medium):
    entities = list(kg_medium.entities())[:300]
    noise = NoiseModel(seed=111)
    return (
        ([noise.corrupt(e.label) for e in entities],
         [e.entity_id for e in entities]),
        ([e.aliases[0] for e in entities if e.aliases],
         [e.entity_id for e in entities if e.aliases]),
    )


@pytest.fixture(scope="module")
def schedule_results(kg_medium, workloads):
    (noisy_q, noisy_t), (alias_q, alias_t) = workloads
    results = {}
    for name, start in SCHEDULES.items():
        config = replace(BENCH_TRAIN_CONFIG, hard_mining_start=start)
        key = f"el_mining_{int(start * 100)}"
        pipeline = cached_emblookup(key, kg_medium, config)
        service = EmbLookupService(pipeline)

        def success(queries, truth):
            rows = service.lookup_batch(queries, K)
            ids = [[c.entity_id for c in row] for row in rows]
            return candidate_recall_at_k(ids, truth, K)

        results[name] = (success(noisy_q, noisy_t), success(alias_q, alias_t))
    return results


def test_ablation_hard_mining_schedule(benchmark, schedule_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [
        [name, syntactic, semantic, (syntactic + semantic) / 2]
        for name, (syntactic, semantic) in schedule_results.items()
    ]
    record_table(
        "ablation_hard_mining",
        ["schedule", "syntactic (typos)", "semantic (aliases)", "mean"],
        table,
        title="Ablation: hard-mining schedule (recall@10)",
    )

    paper = schedule_results["half-online (paper)"]
    # Every schedule must produce a usable space; the paper's schedule
    # should not be clearly dominated by either extreme.
    for name, scores in schedule_results.items():
        assert min(scores) > 0.3, name
    paper_mean = sum(paper) / 2
    best_other = max(
        sum(scores) / 2
        for name, scores in schedule_results.items()
        if name != "half-online (paper)"
    )
    assert paper_mean >= best_other - 0.08
