"""Extension: index-family comparison (Flat / PQ / IVF-Flat / IVF-PQ / LSH).

The paper settled on FAISS "after an empirical analysis" of indexing
options (Section III-C).  This bench reproduces that analysis on our
index library: recall vs the exact index, per-query latency, and memory.
"""

import time

import numpy as np
import pytest

from conftest import record_table
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivfpq import IVFPQIndex
from repro.index.lsh import LSHIndex
from repro.index.pq import PQIndex
from repro.evaluation.metrics import index_recall_overlap
from repro.text.noise import NoiseModel
from repro.text.tokenize import normalize

K = 10


@pytest.fixture(scope="module")
def embeddings(kg_wikidata, el_wikidata):
    model = el_wikidata.model
    labels = [normalize(e.label) for e in kg_wikidata.entities()]
    vectors = np.concatenate(
        [model.embed(labels[i : i + 256]) for i in range(0, len(labels), 256)]
    )
    noise = NoiseModel(seed=13)
    queries = [noise.corrupt(label) for label in labels[:300]]
    query_vectors = np.concatenate(
        [model.embed(queries[i : i + 256]) for i in range(0, len(queries), 256)]
    )
    return vectors, query_vectors


@pytest.fixture(scope="module")
def family_results(embeddings):
    vectors, queries = embeddings
    dim = vectors.shape[1]

    flat = FlatIndex(dim)
    flat.add(vectors)
    exact = flat.search(queries, K)

    def build_and_measure(index):
        index.train(vectors)
        index.add(vectors)
        start = time.perf_counter()
        result = index.search(queries, K)
        elapsed = time.perf_counter() - start
        recall = index_recall_overlap(result.ids, exact.ids, K)
        return recall, elapsed / len(queries), index.memory_bytes()

    start = time.perf_counter()
    flat.search(queries, K)
    flat_time = (time.perf_counter() - start) / len(queries)

    results = {
        "Flat (exact)": (1.0, flat_time, flat.memory_bytes()),
        "PQ": build_and_measure(PQIndex(dim, m=8, seed=1)),
        "IVF-Flat": build_and_measure(
            IVFFlatIndex(dim, nlist=32, nprobe=6, seed=1)
        ),
        "IVF-PQ": build_and_measure(
            IVFPQIndex(dim, nlist=32, m=8, nprobe=6, seed=1)
        ),
        "LSH": build_and_measure(LSHIndex(dim, nbits=14, ntables=8, seed=1)),
        "HNSW": build_and_measure(
            HNSWIndex(dim, m=12, ef_search=40, seed=1)
        ),
    }
    return results


def test_index_family_tradeoffs(benchmark, family_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [
        [name, recall, f"{per_query * 1e6:.0f}us", f"{mem / 1024:.0f}KiB"]
        for name, (recall, per_query, mem) in family_results.items()
    ]
    record_table(
        "index_families",
        ["index", "recall@10 vs exact", "time/query", "memory"],
        table,
        title="Extension: index-family empirical analysis (Section III-C)",
    )

    recalls = {name: r for name, (r, _, _) in family_results.items()}
    memories = {name: m for name, (_, _, m) in family_results.items()}
    # Shape 1: exact search defines the ceiling.
    assert all(recalls[name] <= 1.0 for name in recalls)
    # Shape 2: PQ trades recall for a much smaller index.
    assert memories["PQ"] < memories["Flat (exact)"] / 4
    assert recalls["PQ"] > 0.5
    # Shape 3: IVF-Flat keeps higher recall than IVF-PQ (no code loss).
    assert recalls["IVF-Flat"] >= recalls["IVF-PQ"] - 0.05
    # Shape 4: the graph index reaches high recall without compression.
    assert recalls["HNSW"] > 0.7
