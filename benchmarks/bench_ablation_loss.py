"""Ablation (paper future work): triplet loss vs contrastive loss.

Section VI: "There are a number of interesting directions for future work
such as evaluating other loss functions".  We train the same architecture
with the paper's triplet margin loss and with a pairwise contrastive loss
and compare syntactic/semantic lookup success at the same budget.
"""

from dataclasses import replace

import pytest

from conftest import BENCH_TRAIN_CONFIG, cached_emblookup, record_table
from repro.evaluation.metrics import candidate_recall_at_k
from repro.lookup.emblookup_service import EmbLookupService
from repro.text.noise import NoiseModel

K = 10


@pytest.fixture(scope="module")
def workloads(kg_medium):
    entities = list(kg_medium.entities())[:300]
    noise = NoiseModel(seed=99)
    noisy = ([noise.corrupt(e.label) for e in entities],
             [e.entity_id for e in entities])
    alias_pairs = [(e.aliases[0], e.entity_id) for e in entities if e.aliases]
    aliases = ([a for a, _ in alias_pairs], [t for _, t in alias_pairs])
    return noisy, aliases


@pytest.fixture(scope="module")
def loss_variants(kg_medium, workloads):
    (noisy_q, noisy_t), (alias_q, alias_t) = workloads
    results = {}
    for loss in ("triplet", "contrastive"):
        config = replace(BENCH_TRAIN_CONFIG, loss=loss)
        pipeline = cached_emblookup(f"el_loss_{loss}", kg_medium, config)
        service = EmbLookupService(pipeline)

        def success(queries, truth):
            rows = service.lookup_batch(queries, K)
            ids = [[c.entity_id for c in row] for row in rows]
            return candidate_recall_at_k(ids, truth, K)

        results[loss] = (success(noisy_q, noisy_t), success(alias_q, alias_t))
    return results


def test_ablation_loss_functions(benchmark, loss_variants):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = [
        [loss, syntactic, semantic]
        for loss, (syntactic, semantic) in loss_variants.items()
    ]
    record_table(
        "ablation_loss",
        ["loss", "syntactic (typos)", "semantic (aliases)"],
        table,
        title="Ablation: triplet vs contrastive loss (recall@10)",
    )

    triplet = loss_variants["triplet"]
    contrastive = loss_variants["contrastive"]
    # Both objectives must produce a working metric space.  (Empirically,
    # at reproduction scale the contrastive loss *outperforms* the paper's
    # triplet loss on both axes — evidence that the paper's "evaluate
    # other loss functions" future-work direction is worth pursuing; see
    # EXPERIMENTS.md.)
    assert min(triplet) > 0.4
    assert min(contrastive) > 0.4
    assert max(triplet[0], contrastive[0]) > 0.7
