"""Lint rules enforcing this reproduction's correctness invariants.

Rule families (ids are stable and documented in DESIGN.md §8):

- **R1 dtype discipline** — ``REP101`` (numpy constructor without an
  explicit ``dtype``) and ``REP102`` (float64 leaking into a hot path).
  The paper's 64-d → 8 B product quantization assumes 256 B float32
  vectors; implicit float64 silently doubles memory and changes hashes.
- **R2 autograd safety** — ``REP201``: in-place mutation of
  ``Tensor.data`` / ``Tensor.grad`` outside the engine-internal modules
  invalidates recorded backward closures that captured the old payload.
- **R3 RNG determinism** — ``REP301``: direct ``np.random.*`` /
  stdlib-``random`` usage bypasses the seeded generators in
  ``repro.utils.rng`` and breaks bit-reproducible triplet mining.
- **R4 API hygiene** — ``REP401`` bare ``except:``, ``REP402`` mutable
  default argument, ``REP403`` ``print()`` in library code.

Each rule is registered in :data:`RULES` and consumed by
:mod:`repro.analysis.engine`; paths are matched on their ``repro/...``
tail so test fixtures can emulate any package layout.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.findings import Finding, Severity

__all__ = [
    "LintContext",
    "LintRule",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES",
    "register",
    "register_project",
]

#: Packages where dtype discipline is enforced (embedding hot paths).
HOT_PACKAGES: tuple[str, ...] = ("repro/nn", "repro/index", "repro/embedding")

#: Modules allowed to use float64 explicitly (numerical gradient checking).
FLOAT64_ALLOWLIST: tuple[str, ...] = ("repro/nn/gradcheck.py",)

#: Engine-internal modules allowed to mutate tensor payloads in place.
MUTATION_ALLOWLIST: tuple[str, ...] = (
    "repro/nn/tensor.py",
    "repro/nn/functional.py",
    "repro/nn/layers.py",
    "repro/nn/optim.py",
    "repro/nn/gradcheck.py",
    "repro/nn/serialization.py",
)

#: The one module allowed to touch raw numpy / stdlib randomness.
RNG_ALLOWLIST: tuple[str, ...] = ("repro/utils/rng.py",)

#: Entry-point modules where ``print`` is the intended output channel.
PRINT_ALLOWLIST: tuple[str, ...] = ("repro/cli.py", "repro/__main__.py")

#: numpy array constructors that accept (and should be given) ``dtype=``.
_NUMPY_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "array",
        "asarray",
        "ascontiguousarray",
        "arange",
        "eye",
        "linspace",
        "fromiter",
    }
)


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs to inspect one parsed source file."""

    path: str
    tree: ast.Module
    source: str
    lines: tuple[str, ...]

    def finding(
        self, rule: "LintRule", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` on behalf of ``rule``."""
        return Finding(
            rule=rule.rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=rule.severity,
            message=message,
        )


def module_tail(path: str) -> str:
    """The ``repro/...`` tail of ``path`` (or the whole path, normalised).

    Matching on the tail makes rules independent of where the package is
    checked out (``src/repro/...``, a fixture directory, a tempdir).
    """
    posix = path.replace("\\", "/")
    marker = "repro/"
    index = posix.rfind(marker)
    return posix[index:] if index >= 0 else posix


def _in_packages(path: str, packages: tuple[str, ...]) -> bool:
    tail = module_tail(path)
    return any(tail == pkg or tail.startswith(pkg + "/") for pkg in packages)


def _in_modules(path: str, modules: tuple[str, ...]) -> bool:
    return module_tail(path) in modules


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class LintRule:
    """Base class: one registered rule with a stable id and severity."""

    rule_id: str = "REP000"
    name: str = "base"
    severity: str = Severity.WARNING
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` at all (package scoping)."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one file (subclass hook)."""
        raise NotImplementedError


class ProjectRule(LintRule):
    """A rule that needs the whole project (import/call graph) at once.

    Instead of :meth:`LintRule.check`, subclasses implement
    :meth:`check_project` against a
    :class:`~repro.analysis.graph.ProjectContext`; ``applies_to`` still
    scopes which files' findings are kept.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:  # pragma: no cover
        raise TypeError(f"{self.rule_id} is a project rule; use check_project")

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings across the whole project (subclass hook)."""
        raise NotImplementedError


#: Registry of all known per-file rules, keyed by rule id.
RULES: dict[str, LintRule] = {}

#: Registry of project-scoped rules, keyed by rule id.
PROJECT_RULES: dict[str, ProjectRule] = {}


def register(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding an instance of ``rule_cls`` to :data:`RULES`."""
    instance = rule_cls()
    if instance.rule_id in RULES or instance.rule_id in PROJECT_RULES:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    RULES[instance.rule_id] = instance
    return rule_cls


def register_project(rule_cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding an instance to :data:`PROJECT_RULES`."""
    instance = rule_cls()
    if instance.rule_id in RULES or instance.rule_id in PROJECT_RULES:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    PROJECT_RULES[instance.rule_id] = instance
    return rule_cls


@register
class ImplicitDtypeRule(LintRule):
    """REP101: numpy constructor without an explicit ``dtype`` in a hot path.

    ``np.zeros(n)`` silently allocates float64; in ``repro.nn`` /
    ``repro.index`` / ``repro.embedding`` every array that feeds the
    embedding pipeline must state its dtype.  ``*_like`` constructors are
    exempt (they inherit the prototype's dtype).
    """

    rule_id = "REP101"
    name = "implicit-dtype"
    severity = Severity.WARNING
    description = "numpy constructor without explicit dtype in a hot path"

    def applies_to(self, path: str) -> bool:
        """Hot-path packages only."""
        return _in_packages(path, HOT_PACKAGES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag ``np.<constructor>(...)`` calls lacking a ``dtype=`` kwarg."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            root = func.value
            if not (isinstance(root, ast.Name) and root.id in ("np", "numpy")):
                continue
            if func.attr not in _NUMPY_CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            yield ctx.finding(
                self,
                node,
                f"np.{func.attr}(...) without explicit dtype= "
                "(dtype inferred implicitly in a hot path)",
            )


@register
class Float64LeakRule(LintRule):
    """REP102: explicit float64 in a hot path.

    The PQ compression story (64-d float32 = 256 B → 8 B codes) and the
    index memory model assume float32 end-to-end; float64 is reserved for
    ``gradcheck`` numerics.  Deliberate float64 accumulation sites (e.g.
    k-means distance kernels) are carried in the committed baseline.
    """

    rule_id = "REP102"
    name = "float64-leak"
    severity = Severity.WARNING
    description = "explicit float64 dtype in a hot path"

    def applies_to(self, path: str) -> bool:
        """Hot-path packages, minus the gradcheck allowlist."""
        return _in_packages(path, HOT_PACKAGES) and not _in_modules(
            path, FLOAT64_ALLOWLIST
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag ``np.float64`` attributes and ``dtype="float64"`` strings."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "float64":
                root = node.value
                if isinstance(root, ast.Name) and root.id in ("np", "numpy"):
                    yield ctx.finding(
                        self, node, "np.float64 used in a float32 hot path"
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "dtype"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value == "float64"
                    ):
                        yield ctx.finding(
                            self,
                            kw.value,
                            'dtype="float64" used in a float32 hot path',
                        )


@register
class TensorMutationRule(LintRule):
    """REP201: in-place mutation of ``Tensor.data`` / ``Tensor.grad``.

    Backward closures capture array references at forward time; writing
    through ``t.data[...]``, ``t.data += ...`` or ``t.grad = ...`` outside
    the engine invalidates the recorded graph silently.  Engine-internal
    modules (tensor/optim/layers/serialization/gradcheck) are allowlisted.
    """

    rule_id = "REP201"
    name = "tensor-mutation"
    severity = Severity.ERROR
    description = "in-place mutation of Tensor.data/.grad outside the engine"

    _ATTRS = ("data", "grad")

    def applies_to(self, path: str) -> bool:
        """Everywhere except the allowlisted engine internals."""
        return not _in_modules(path, MUTATION_ALLOWLIST)

    def _mutated_attr(self, target: ast.AST) -> str | None:
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in self._ATTRS:
            return node.attr
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag assignments/aug-assignments/deletes through ``.data``/``.grad``."""
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST]
            verb = "assignment to"
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
                verb = "augmented assignment to"
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
                verb = "deletion of"
            else:
                continue
            for target in targets:
                attr = self._mutated_attr(target)
                if attr is not None:
                    yield ctx.finding(
                        self,
                        node,
                        f"{verb} .{attr} mutates an autograd payload "
                        "outside the engine (breaks recorded backward "
                        "closures)",
                    )


@register
class RawRandomRule(LintRule):
    """REP301: raw randomness outside ``repro.utils.rng``.

    Seeded, stream-derived generators are the only sanctioned randomness
    source; ``np.random.*`` module calls and the stdlib ``random`` module
    draw from hidden global state and break run-to-run reproducibility of
    triplet mining and noise injection.
    """

    rule_id = "REP301"
    name = "raw-random"
    severity = Severity.ERROR
    description = "direct np.random.* / stdlib random usage outside repro.utils.rng"

    def applies_to(self, path: str) -> bool:
        """Everywhere except the rng helper module itself."""
        return not _in_modules(path, RNG_ALLOWLIST)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag np.random calls and stdlib-random imports/calls."""
        stdlib_random_imported = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        stdlib_random_imported |= alias.name == "random"
                        yield ctx.finding(
                            self,
                            node,
                            f"import of {alias.name!r}: use repro.utils.rng "
                            "generators instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("numpy.random"):
                    yield ctx.finding(
                        self,
                        node,
                        f"import from {module!r}: use repro.utils.rng "
                        "generators instead",
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.startswith(("np.random.", "numpy.random.")):
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() draws from numpy global/unmanaged state; "
                    "route through repro.utils.rng",
                )
            elif stdlib_random_imported and dotted.startswith("random."):
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() draws from stdlib global state; "
                    "route through repro.utils.rng",
                )


@register
class BareExceptRule(LintRule):
    """REP401: bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``."""

    rule_id = "REP401"
    name = "bare-except"
    severity = Severity.ERROR
    description = "bare except clause"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag ``except:`` handlers with no exception type."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                )


@register
class MutableDefaultRule(LintRule):
    """REP402: mutable default argument shared across calls."""

    rule_id = "REP402"
    name = "mutable-default"
    severity = Severity.WARNING
    description = "mutable default argument"

    _MUTABLE_CALLS = ("list", "dict", "set")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag list/dict/set literals (or calls) used as parameter defaults."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default argument in {node.name}() is "
                        "shared across calls",
                    )


@register
class PrintInLibraryRule(LintRule):
    """REP403: ``print()`` in library code (CLI entry points are exempt)."""

    rule_id = "REP403"
    name = "print-in-library"
    severity = Severity.WARNING
    description = "print() call in library code"

    def applies_to(self, path: str) -> bool:
        """Library modules only; CLI entry points own stdout."""
        return not _in_modules(path, PRINT_ALLOWLIST)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag bare ``print(...)`` calls."""
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self,
                    node,
                    "print() in library code; return strings or use the "
                    "CLI layer for output",
                )
