"""The :class:`Finding` record emitted by every lint rule.

A finding pins a rule violation to a file/line/column and carries a
content-based *fingerprint* so the committed baseline survives unrelated
line-number churn: the fingerprint hashes the rule id, the file path, the
stripped source line, and an occurrence counter (for identical lines in
the same file) — never the line number itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "SEVERITIES", "Severity"]


class Severity:
    """Finding severity levels, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"


SEVERITIES: tuple[str, ...] = (Severity.ERROR, Severity.WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes
    ----------
    rule:
        Rule identifier (e.g. ``REP101``).
    path:
        File path as linted (posix-style, relative where possible).
    line / col:
        1-based line and 0-based column of the offending node.
    severity:
        ``"error"`` (breaks an invariant) or ``"warning"`` (hygiene).
    message:
        Human-readable description of the violation.
    fingerprint:
        Stable content hash used by the baseline; filled in by the engine
        (empty for findings constructed directly in rule unit tests).
    """

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str
    fingerprint: str = field(default="", compare=False)

    def location(self) -> str:
        """``path:line:col`` display form."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (used by reporter + baseline)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def with_fingerprint(self, fingerprint: str) -> "Finding":
        """A copy of this finding carrying ``fingerprint``."""
        return Finding(
            rule=self.rule,
            path=self.path,
            line=self.line,
            col=self.col,
            severity=self.severity,
            message=self.message,
            fingerprint=fingerprint,
        )


def compute_fingerprint(
    rule: str, path: str, source_line: str, occurrence: int
) -> str:
    """Content hash identifying a finding independently of line numbers."""
    payload = f"{rule}::{path}::{source_line.strip()}::{occurrence}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]
