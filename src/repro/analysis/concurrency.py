"""Concurrency & process-safety lint rules (REP7xx).

The process-parallel serving stack (persistent ``multiprocessing`` shard
workers, shared-memory segments, pipes, per-object locks) concentrates a
bug class the dtype/gradient rules cannot see: data races on shared
counters, lock-order deadlocks, unpicklable objects crossing process
boundaries, and leaked ``/dev/shm`` segments.  These rules encode the
discipline the serving layer follows, reusing the project call graph
(:mod:`repro.analysis.graph`) for thread-reachability and the code-unit
iteration of the dataflow engine (:mod:`repro.analysis.dataflow`):

- **REP701 unlocked-shared-write** (project, error) — an augmented
  assignment through ``self``/a parameter, or a write to a ``global``
  name, on a path reachable from thread or process entry points
  (methods of lock-owning classes, executor-``submit`` callables,
  ``Thread``/``Process`` targets) without a guarding ``with <lock>:``.
- **REP702 acquire-outside-with** (file, error) — ``lock.acquire()``
  as a bare statement not paired with a ``try/finally`` release.
- **REP703 lock-order-inversion** (project, error) — a cycle in the
  lock-acquisition-order graph built across functions (nested ``with``
  blocks plus calls made while holding locks), detected with the same
  Tarjan SCC pass the import-cycle checker uses: a static deadlock
  detector.  The runtime sanitizer
  (:mod:`repro.testing.sanitizer`) cross-validates this rule
  dynamically during the property suites.
- **REP704 pickle-unsafe-flow** (file, warning) — a lock, shm handle,
  or open file flowing into ``Pipe.send``/``pickle.dumps``/process-pool
  ``submit``/``Process(args=...)``; such objects do not survive pickling
  across a process boundary.
- **REP705 shm-lifecycle** (file, error) — a ``SharedMemory``/
  registry/``attach`` handle bound in a function that neither escapes
  nor reaches ``close()``/``unlink()`` on all paths (the static
  generalization of the ``owned_segment_names`` leak probe).
- **REP706 blocking-no-timeout** (file, warning, serving packages
  only) — ``recv()``/``acquire()``/``join()``/``result()``/``wait()``
  with no timeout on the serving path can hang a request forever.

Static approximations are deliberate and documented per rule: lock
identity is canonicalised by *name* (``module.Class.attr`` for
``self``-attached locks, ``module.function.name`` for locals), so two
instances of one class share a lock node — exactly the abstraction the
runtime sanitizer's creation-site naming mirrors.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.dataflow import iter_code_units, iter_unit_nodes
from repro.analysis.findings import Finding, Severity
from repro.analysis.graph import _strongly_connected_cycles
from repro.analysis.rules import (
    LintContext,
    LintRule,
    ProjectRule,
    _dotted_name,
    _in_packages,
    register,
    register_project,
)

__all__ = [
    "SERVING_PACKAGES",
    "AcquireOutsideWithRule",
    "BlockingNoTimeoutRule",
    "LockOrderInversionRule",
    "PickleUnsafeFlowRule",
    "ShmLifecycleRule",
    "UnlockedSharedWriteRule",
]

#: Packages where a blocked call stalls live queries (REP706 scope).
SERVING_PACKAGES: tuple[str, ...] = (
    "repro/index",
    "repro/lookup",
    "repro/serving",
)

#: Constructors whose result is a lock-like synchronisation primitive.
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Constructors whose result is a shared-memory handle.
_SHM_CTORS = frozenset({"SharedMemory", "ShmRegistry", "AttachedSegments"})


def _terminal(node: ast.AST) -> str | None:
    """Last component of a callable expression (``threading.Lock`` → Lock)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _lockish(name: str) -> bool:
    """Whether a name reads as a lock by convention (``_stats_lock`` …)."""
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


def _class_lock_attrs(tree: ast.AST) -> dict[str, set[str]]:
    """Per-class instance attributes assigned a lock constructor.

    ``self._cond = threading.Condition()`` marks ``_cond`` as a lock
    attribute of its class even though the name itself is not lockish.
    """
    out: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: set[str] = set()
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Assign)
                and isinstance(sub.value, ast.Call)
                and _terminal(sub.value.func) in _LOCK_CTORS
            ):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        if attrs:
            out[node.name] = attrs
    return out


def _is_lock_guard(expr: ast.expr, owner_lock_attrs: set[str]) -> bool:
    """Whether a ``with`` item's context expression is a lock.

    Accepts dotted lockish names, ``self.<declared lock attr>``, and
    lock-returning helper calls (``self._lock_for(key)``).
    """
    dotted = _dotted_name(expr)
    if dotted is None:
        if isinstance(expr, ast.Call):
            name = _terminal(expr.func)
            return name is not None and _lockish(name)
        return False
    parts = dotted.split(".")
    if _lockish(parts[-1]):
        return True
    return parts[0] == "self" and len(parts) > 1 and parts[1] in owner_lock_attrs


def _stmt_lists(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """Nested statement lists of a compound statement (handlers included)."""
    lists: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        sub = getattr(stmt, attr, None)
        if sub:
            lists.append(sub)
    for handler in getattr(stmt, "handlers", []):
        lists.append(handler.body)
    return lists


# -- REP701 ---------------------------------------------------------------------


@register_project
class UnlockedSharedWriteRule(ProjectRule):
    """REP701: unguarded write to shared state on a thread-reachable path.

    Entry points: every method of a class that owns a lock (its instances
    are, by construction, shared across threads), every callable handed to
    an executor ``submit``, and every ``Thread``/``Process`` ``target=``.
    On the call-graph closure of those seeds, an augmented assignment
    whose target roots at ``self`` or a parameter (objects that escaped
    the function) — or any write to a ``global`` name — must sit inside a
    ``with <lock>:`` block.  Writes through function-locals are private
    and ignored; read-modify-write is the racy shape, so plain attribute
    assignment is left alone.
    """

    rule_id = "REP701"
    name = "unlocked-shared-write"
    severity = Severity.ERROR
    description = "shared state written on a thread-reachable path without a lock"

    def check_project(self, project) -> Iterator[Finding]:
        """Flag unguarded RMW/global writes reachable from thread seeds."""
        graph = project.call_graph
        lock_attrs: dict[tuple[str, str], set[str]] = {}
        for module in project.modules.values():
            for cls_name, attrs in _class_lock_attrs(module.tree).items():
                lock_attrs[(module.name, cls_name)] = attrs
        reached = graph.reachable_from(self._seeds(graph, lock_attrs))
        for key in sorted(reached):
            info = graph.functions.get(key)
            if info is None:
                continue
            module = graph.modules.get(info.module)
            if module is None:
                continue
            owner_attrs = (
                lock_attrs.get((info.module, info.owner_class), set())
                if info.owner_class
                else set()
            )
            for node, what in self._unguarded_writes(info, owner_attrs):
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    severity=self.severity,
                    message=(
                        f"{what} is written in {info.qualname}() on a "
                        "thread/process-reachable path without a guarding "
                        "`with <lock>:`"
                    ),
                )

    def _seeds(self, graph, lock_attrs) -> set[tuple[str, str]]:
        """Thread/process entry points: lock-owner methods + submitted fns."""
        seeds: set[tuple[str, str]] = set()
        for key, info in graph.functions.items():
            if (
                info.owner_class
                and (info.module, info.owner_class) in lock_attrs
            ):
                seeds.add(key)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "submit"
                    and node.args
                ):
                    target = graph.resolve_callable(info, node.args[0])
                    if target is not None:
                        seeds.add(target)
                if _terminal(func) in ("Thread", "Process"):
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target = graph.resolve_callable(info, kw.value)
                            if target is not None:
                                seeds.add(target)
        return seeds

    def _unguarded_writes(
        self, info, owner_attrs: set[str]
    ) -> list[tuple[ast.stmt, str]]:
        args = info.node.args
        params = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        } - {"self"}
        global_names = {
            name
            for node in ast.walk(info.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        out: list[tuple[ast.stmt, str]] = []

        def visit(body: list[ast.stmt], held: bool) -> None:
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    locked = held or any(
                        _is_lock_guard(item.context_expr, owner_attrs)
                        for item in stmt.items
                    )
                    visit(stmt.body, locked)
                    continue
                if not held:
                    if isinstance(stmt, ast.AugAssign):
                        root = self._shared_root(stmt.target, params)
                        if root is not None:
                            out.append(
                                (stmt, f"`{ast.unparse(stmt.target)}`")
                            )
                        elif (
                            isinstance(stmt.target, ast.Name)
                            and stmt.target.id in global_names
                        ):
                            out.append(
                                (stmt, f"global `{stmt.target.id}`")
                            )
                    elif isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Name)
                                and target.id in global_names
                            ):
                                out.append(
                                    (stmt, f"global `{target.id}`")
                                )
                                break
                for sub in _stmt_lists(stmt):
                    visit(sub, held)

        visit(info.node.body, False)
        return out

    @staticmethod
    def _shared_root(target: ast.expr, params: set[str]) -> str | None:
        """Root name of an attribute-bearing target, if it escaped the fn."""
        node: ast.expr = target
        saw_attribute = False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            saw_attribute |= isinstance(node, ast.Attribute)
            node = node.value
        if not (saw_attribute and isinstance(node, ast.Name)):
            return None
        if node.id == "self" or node.id in params:
            return node.id
        return None


# -- REP702 ---------------------------------------------------------------------


@register
class AcquireOutsideWithRule(LintRule):
    """REP702: bare ``lock.acquire()`` without ``with`` / try-finally.

    An acquire statement whose release is not structurally guaranteed
    leaks the lock on any exception between acquire and release.  The two
    sanctioned shapes are ``with lock:`` (preferred) and an acquire
    immediately protected by ``try: ... finally: lock.release()`` —
    either with the acquire as the first statement of the ``try`` body or
    on the line directly before it.
    """

    rule_id = "REP702"
    name = "acquire-outside-with"
    severity = Severity.ERROR
    description = "lock.acquire() not protected by with/try-finally"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag acquire statements with no matching finally release."""
        lock_attrs = set().union(
            *(_class_lock_attrs(ctx.tree).values() or [set()])
        )
        findings: list[tuple[ast.stmt, str]] = []

        def released_in(finalbody: list[ast.stmt]) -> set[str]:
            out: set[str] = set()
            for stmt in finalbody:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                    ):
                        dotted = _dotted_name(node.func.value)
                        if dotted is not None:
                            out.add(dotted)
            return out

        def acquire_target(stmt: ast.stmt) -> str | None:
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "acquire"
            ):
                return None
            dotted = _dotted_name(stmt.value.func.value)
            if dotted is None:
                return None
            parts = dotted.split(".")
            if _lockish(parts[-1]) or (
                parts[0] == "self" and len(parts) > 1 and parts[1] in lock_attrs
            ):
                return dotted
            return None

        def scan(body: list[ast.stmt], released: set[str]) -> None:
            for index, stmt in enumerate(body):
                dotted = acquire_target(stmt)
                if dotted is not None and dotted not in released:
                    following = body[index + 1] if index + 1 < len(body) else None
                    if not (
                        isinstance(following, ast.Try)
                        and dotted in released_in(following.finalbody)
                    ):
                        findings.append((stmt, dotted))
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    scan(stmt.body, set())
                elif isinstance(stmt, ast.Try):
                    protected = released | released_in(stmt.finalbody)
                    scan(stmt.body, protected)
                    scan(stmt.orelse, protected)
                    for handler in stmt.handlers:
                        scan(handler.body, released)
                    scan(stmt.finalbody, released)
                else:
                    for sub in _stmt_lists(stmt):
                        scan(sub, released)

        scan(ctx.tree.body, set())
        for stmt, dotted in findings:
            yield ctx.finding(
                self,
                stmt,
                f"{dotted}.acquire() outside `with`/try-finally leaks the "
                "lock on any exception before release",
            )


# -- REP703 ---------------------------------------------------------------------


@register_project
class LockOrderInversionRule(ProjectRule):
    """REP703: cycle in the cross-function lock-acquisition-order graph.

    For every function the rule records which locks are entered via
    ``with`` while which others are already held (intra-function edges),
    and which project functions are *called* while holding locks — the
    callee's transitive lock set (a fixpoint over the call graph) then
    contributes held → callee-lock edges.  A cycle in the resulting
    directed graph, found with the same Tarjan SCC pass the import-cycle
    checker uses, means two code paths take the same locks in opposite
    orders: a static deadlock.  Lock identity is by canonical name
    (``module.Class.attr`` / ``module.func.local``); re-acquisition of
    the same name is not an edge (RLock re-entry and sibling instances
    would be indistinguishable).
    """

    rule_id = "REP703"
    name = "lock-order-inversion"
    severity = Severity.ERROR
    description = "lock-acquisition-order cycle across functions (deadlock risk)"

    def check_project(self, project) -> Iterator[Finding]:
        """Flag acquisition/call sites on edges of a lock-order cycle."""
        graph = project.call_graph
        lock_attrs: dict[tuple[str, str], set[str]] = {}
        for module in project.modules.values():
            for cls_name, attrs in _class_lock_attrs(module.tree).items():
                lock_attrs[(module.name, cls_name)] = attrs

        facts: dict[tuple[str, str], tuple[list, list]] = {}
        for key, info in graph.functions.items():
            owner_attrs = (
                lock_attrs.get((info.module, info.owner_class), set())
                if info.owner_class
                else set()
            )
            facts[key] = self._collect(info, owner_attrs)

        # Fixpoint: every lock a function may take, directly or through
        # any project callee (monotone over a finite lattice).
        closure: dict[tuple[str, str], set[str]] = {
            key: {lock for lock, _held, _node in acquisitions}
            for key, (acquisitions, _calls) in facts.items()
        }
        changed = True
        while changed:
            changed = False
            for key in facts:
                for callee in graph.edges.get(key, ()):
                    extra = closure.get(callee, set()) - closure[key]
                    if extra:
                        closure[key] |= extra
                        changed = True

        adjacency: dict[str, set[str]] = {}
        sites: dict[tuple[str, str], list[tuple[str, ast.AST]]] = {}

        def edge(held: str, taken: str, path: str, node: ast.AST) -> None:
            if held == taken:
                return
            adjacency.setdefault(held, set()).add(taken)
            adjacency.setdefault(taken, set())
            sites.setdefault((held, taken), []).append((path, node))

        for key, (acquisitions, calls) in facts.items():
            info = graph.functions[key]
            module = graph.modules.get(info.module)
            if module is None:
                continue
            for lock, held, node in acquisitions:
                for other in held:
                    edge(other, lock, module.path, node)
            for held, call_node in calls:
                if not held:
                    continue
                callee = graph.resolve_call(info, call_node)
                if callee is None:
                    continue
                for lock in closure.get(callee, ()):
                    for other in held:
                        edge(other, lock, module.path, call_node)

        flagged: set[tuple[str, int, int]] = set()
        for cycle in _strongly_connected_cycles(adjacency):
            members = set(cycle)
            order = " -> ".join([*cycle, cycle[0]])
            for held, taken in sites:
                if held not in members or taken not in members:
                    continue
                if taken not in adjacency.get(held, ()):
                    continue
                for path, node in sites[(held, taken)]:
                    anchor = (path, node.lineno, node.col_offset)
                    if anchor in flagged:
                        continue
                    flagged.add(anchor)
                    yield Finding(
                        rule=self.rule_id,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        severity=self.severity,
                        message=(
                            f"lock-order inversion: takes `{taken}` while "
                            f"holding `{held}`, but another path orders "
                            f"them oppositely (cycle: {order})"
                        ),
                    )

    def _collect(
        self, info, owner_attrs: set[str]
    ) -> tuple[
        list[tuple[str, tuple[str, ...], ast.AST]],
        list[tuple[tuple[str, ...], ast.Call]],
    ]:
        """(acquisitions, calls-with-held-locks) for one function body."""
        acquisitions: list[tuple[str, tuple[str, ...], ast.AST]] = []
        calls: list[tuple[tuple[str, ...], ast.Call]] = []

        def record_calls(node: ast.AST, held: list[str]) -> None:
            snapshot = tuple(held)
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    calls.append((snapshot, sub))

        def visit(body: list[ast.stmt], held: list[str]) -> None:
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    entered: list[str] = []
                    for item in stmt.items:
                        lock = _canonical_lock(
                            info, item.context_expr, owner_attrs
                        )
                        if lock is not None:
                            acquisitions.append(
                                (lock, tuple(held + entered), item.context_expr)
                            )
                            entered.append(lock)
                        else:
                            record_calls(item.context_expr, held + entered)
                    visit(stmt.body, held + entered)
                    continue
                if isinstance(stmt, (ast.If, ast.While)):
                    record_calls(stmt.test, held)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    record_calls(stmt.iter, held)
                elif not isinstance(stmt, ast.Try):
                    record_calls(stmt, held)
                for sub in _stmt_lists(stmt):
                    visit(sub, held)

        visit(info.node.body, [])
        return acquisitions, calls


def _canonical_lock(info, expr: ast.expr, owner_attrs: set[str]) -> str | None:
    """Canonical graph-node name for a lock expression, or ``None``.

    ``self.<attr>`` locks canonicalise to ``module.Class.attr`` (shared
    by every instance of the class — the same abstraction the runtime
    sanitizer's creation-site naming produces); bare locals to
    ``module.function.name`` (never merged across functions); other
    dotted chains to ``module.<chain>``.
    """
    dotted = _dotted_name(expr)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[0] == "self":
        if len(parts) < 2 or info.owner_class is None:
            return None
        if _lockish(parts[-1]) or parts[1] in owner_attrs:
            return f"{info.module}.{info.owner_class}." + ".".join(parts[1:])
        return None
    if not _lockish(parts[-1]):
        return None
    if len(parts) == 1:
        return f"{info.module}.{info.qualname}.{dotted}"
    return f"{info.module}.{dotted}"


# -- REP704 ---------------------------------------------------------------------


@register
class PickleUnsafeFlowRule(LintRule):
    """REP704: lock/shm/fd objects flowing across a process boundary.

    ``threading.Lock``, ``SharedMemory`` handles, and open files either
    refuse to pickle or arrive broken on the far side of a ``fork``/
    ``spawn``; sending one through ``Pipe.send``, ``pickle.dumps``, a
    process-pool ``submit``, or ``Process(args=...)`` is a latent crash.
    Tracking is lexical per code unit: names bound to lock/shm/``open``
    constructors (or instances of a file-local lock-owning class) plus
    lock-attribute chains.
    """

    rule_id = "REP704"
    name = "pickle-unsafe-flow"
    severity = Severity.WARNING
    description = "lock/shm/file object flows into a process boundary"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag unsafe names/attributes used as process-boundary arguments."""
        class_lock_attrs = _class_lock_attrs(ctx.tree)
        lock_classes = set(class_lock_attrs)
        all_lock_attrs = set().union(
            *(class_lock_attrs.values() or [set()])
        )
        for unit in iter_code_units(ctx.tree):
            unsafe: dict[str, str] = {}
            for node in iter_unit_nodes(unit):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                ctor = _terminal(node.value.func)
                target = node.targets[0].id
                if ctor in _LOCK_CTORS:
                    unsafe[target] = "a lock"
                elif ctor in _SHM_CTORS:
                    unsafe[target] = "a shared-memory handle"
                elif ctor == "open":
                    unsafe[target] = "an open file object"
                elif ctor in lock_classes:
                    unsafe[target] = f"a lock-owning {ctor} instance"
            for node in iter_unit_nodes(unit):
                if not isinstance(node, ast.Call):
                    continue
                for arg, sink in self._sink_args(node):
                    what = self._unsafe_desc(arg, unsafe, all_lock_attrs)
                    if what is not None:
                        yield ctx.finding(
                            self,
                            arg,
                            f"{what} flows into {sink}; locks/fds/shm "
                            "handles do not survive pickling across a "
                            "process boundary",
                        )

    @staticmethod
    def _sink_args(node: ast.Call) -> list[tuple[ast.expr, str]]:
        """(argument, sink label) pairs for process-boundary calls."""

        def flatten(values: list[ast.expr]) -> list[ast.expr]:
            out: list[ast.expr] = []
            for value in values:
                if isinstance(value, (ast.Tuple, ast.List)):
                    out.extend(flatten(list(value.elts)))
                else:
                    out.append(value)
            return out

        func = node.func
        dotted = _dotted_name(func)
        if isinstance(func, ast.Attribute) and func.attr == "send":
            return [(a, "Pipe.send()") for a in flatten(node.args)]
        if dotted is not None and dotted.endswith("pickle.dumps"):
            return [(a, "pickle.dumps()") for a in flatten(node.args)]
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            receiver = _dotted_name(func.value) or ""
            if "process" in receiver.lower():
                return [
                    (a, "a process-pool submit()") for a in flatten(node.args)
                ]
        if _terminal(func) == "Process":
            out: list[tuple[ast.expr, str]] = []
            for kw in node.keywords:
                if kw.arg == "args":
                    out.extend(
                        (a, "Process(args=...)") for a in flatten([kw.value])
                    )
            return out
        return []

    @staticmethod
    def _unsafe_desc(
        expr: ast.expr, unsafe: dict[str, str], lock_attrs: set[str]
    ) -> str | None:
        if isinstance(expr, ast.Name):
            return unsafe.get(expr.id)
        dotted = _dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if _lockish(parts[-1]):
            return f"lock attribute `{dotted}`"
        if parts[0] == "self" and len(parts) > 1 and parts[1] in lock_attrs:
            return f"lock attribute `{dotted}`"
        return None


# -- REP705 ---------------------------------------------------------------------


@register
class ShmLifecycleRule(LintRule):
    """REP705: shm handle that does not reach close/unlink on all paths.

    A ``SharedMemory`` mapping (or registry/attach holder) bound to a
    local name must either *escape* the function (returned, stored on an
    object, passed to another call — ownership transferred) or be closed
    in a ``finally`` block.  A close on the straight-line path only is
    still a leak on the exception path; no close at all leaks the
    ``/dev/shm`` segment unconditionally — the static form of the
    ``owned_segment_names()`` runtime leak probe.
    """

    rule_id = "REP705"
    name = "shm-lifecycle"
    severity = Severity.ERROR
    description = "SharedMemory/attach handle not closed on all paths"

    _CTORS = _SHM_CTORS | {"attach"}
    _CLOSERS = ("close", "unlink")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag non-escaping shm handles lacking a finally-path close."""
        for unit in iter_code_units(ctx.tree):
            tracked: dict[str, ast.Assign] = {}
            for node in iter_unit_nodes(unit):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and _terminal(node.value.func) in self._CTORS
                ):
                    tracked[node.targets[0].id] = node
            if not tracked:
                continue
            escaped = self._escaped_names(unit, set(tracked))
            finally_calls, anywhere_calls = self._close_calls(unit)
            for name, node in tracked.items():
                if name in escaped:
                    continue
                if name in finally_calls:
                    continue
                if name in anywhere_calls:
                    yield ctx.finding(
                        self,
                        node,
                        f"shm handle `{name}` is closed only on the "
                        "non-exception path; move close()/unlink() into "
                        "a finally block",
                    )
                else:
                    yield ctx.finding(
                        self,
                        node,
                        f"shm handle `{name}` is never closed/unlinked "
                        "and never escapes; the segment leaks",
                    )

    def _escaped_names(self, unit: ast.AST, names: set[str]) -> set[str]:
        """Tracked names whose ownership leaves the function."""
        escaped: set[str] = set()

        def direct(value: ast.expr | None) -> list[str]:
            if value is None:
                return []
            if isinstance(value, ast.Name):
                return [value.id]
            if isinstance(value, (ast.Tuple, ast.List)):
                return [
                    e.id for e in value.elts if isinstance(e, ast.Name)
                ]
            return []

        for node in iter_unit_nodes(unit):
            if isinstance(node, ast.Return):
                escaped.update(n for n in direct(node.value) if n in names)
            elif isinstance(node, ast.Call):
                receiver_is_tracked = (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in names
                    and node.func.attr in self._CLOSERS
                )
                if receiver_is_tracked:
                    continue
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if isinstance(arg, ast.Name) and arg.id in names:
                        escaped.add(arg.id)
            elif isinstance(node, ast.Assign):
                stores_elsewhere = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if stores_elsewhere:
                    escaped.update(
                        n for n in direct(node.value) if n in names
                    )
        return escaped

    def _close_calls(self, unit: ast.AST) -> tuple[set[str], set[str]]:
        """Names with ``close``/``unlink`` calls (in-finally, anywhere)."""
        in_finally: set[str] = set()
        anywhere: set[str] = set()

        def closer_names(root: ast.AST) -> set[str]:
            out: set[str] = set()
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._CLOSERS
                    and isinstance(node.func.value, ast.Name)
                ):
                    out.add(node.func.value.id)
            return out

        for node in iter_unit_nodes(unit):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    in_finally.update(closer_names(stmt))
                for handler in node.handlers:
                    # A handler that closes and re-raises also covers the
                    # exception path (the `except BaseException: raise`
                    # idiom used where finally would double-close).
                    if any(
                        isinstance(s, ast.Raise) for s in handler.body
                    ):
                        for stmt in handler.body:
                            in_finally.update(closer_names(stmt))
        for node in iter_unit_nodes(unit):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._CLOSERS
                and isinstance(node.func.value, ast.Name)
            ):
                anywhere.add(node.func.value.id)
        return in_finally, anywhere


# -- REP706 ---------------------------------------------------------------------


@register
class BlockingNoTimeoutRule(LintRule):
    """REP706: unbounded blocking call on the serving path.

    A ``recv()``/``acquire()``/``join()``/``result()``/``wait()`` with no
    timeout inside the index/lookup/serving packages can park a request
    thread forever behind a dead worker or a stuck peer.  Deliberate
    wait-forever sites (worker mainloops, explicit ``deadline=None``
    semantics) carry a justified noqa.
    """

    rule_id = "REP706"
    name = "blocking-no-timeout"
    severity = Severity.WARNING
    description = "blocking recv/acquire/join/result/wait without a timeout"

    _BLOCKERS = ("recv", "join", "result", "wait")

    def applies_to(self, path: str) -> bool:
        """Serving-path packages only."""
        return _in_packages(path, SERVING_PACKAGES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag zero-argument blocking method calls."""
        lock_attrs = set().union(
            *(_class_lock_attrs(ctx.tree).values() or [set()])
        )
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.args or node.keywords:
                continue
            attr = node.func.attr
            if attr in self._BLOCKERS:
                yield ctx.finding(
                    self,
                    node,
                    f".{attr}() without a timeout can block a serving "
                    "thread forever; pass a timeout and handle expiry",
                )
            elif attr == "acquire":
                dotted = _dotted_name(node.func.value)
                parts = dotted.split(".") if dotted else []
                if parts and (
                    _lockish(parts[-1])
                    or (
                        parts[0] == "self"
                        and len(parts) > 1
                        and parts[1] in lock_attrs
                    )
                ):
                    yield ctx.finding(
                        self,
                        node,
                        ".acquire() without a timeout can block a "
                        "serving thread forever; pass timeout= and "
                        "handle failure",
                    )
