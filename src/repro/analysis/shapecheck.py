"""Shape/dtype abstract interpretation of the EmbLookup dual tower.

Training runs are long (the paper's setting is 100 epochs); a dimension or
dtype mismatch between the CNN tower, the fastText tower, and the fusion
MLP should be caught *before* any data is touched.  This module propagates
symbolic ``(shape, dtype)`` values — batch size stays symbolic — through
the exact layer stack :class:`repro.embedding.cnn.CharCNNEncoder` and
:class:`repro.embedding.emblookup_model.EmbLookupModel` build:

``one-hot (N, |A|, L) → [conv1d k=3 p=1 → relu → pool/2]* → flatten →
linear head`` for the syntactic tower, ``embedding-bag (buckets, d)`` for
the semantic tower, then ``concat → fuse1 → relu → fuse2`` for the MLP.

Every abstract op validates its operands and raises :class:`ShapeError`
with the failing stage name, so ``repro shapecheck`` can reject a
mis-sized configuration statically while accepting the paper's 64-d
default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EmbLookupConfig

__all__ = [
    "AbstractTensor",
    "DualTowerSpec",
    "ShapeError",
    "ShapeReport",
    "check_dual_tower",
]

_FLOAT_DTYPES = ("float32", "float64")


class ShapeError(ValueError):
    """A static shape or dtype inconsistency in a layer stack."""

    def __init__(self, stage: str, message: str):
        super().__init__(f"[{stage}] {message}")
        self.stage = stage


@dataclass(frozen=True)
class AbstractTensor:
    """A symbolic tensor: concrete dims, symbolic batch, and a dtype.

    ``None`` in ``shape`` denotes the symbolic batch dimension ``N``.
    """

    shape: tuple[int | None, ...]
    dtype: str

    def __post_init__(self) -> None:
        for dim in self.shape:
            if dim is not None and dim < 1:
                raise ShapeError(
                    "abstract-tensor", f"non-positive dimension in {self.shape}"
                )
        if self.dtype not in _FLOAT_DTYPES:
            raise ShapeError(
                "abstract-tensor",
                f"dtype must be one of {_FLOAT_DTYPES}, got {self.dtype!r}",
            )

    def __str__(self) -> str:
        dims = ", ".join("N" if d is None else str(d) for d in self.shape)
        return f"({dims}) {self.dtype}"


# -- abstract ops -----------------------------------------------------------------


def _conv1d(
    stage: str,
    x: AbstractTensor,
    out_channels: int,
    in_channels: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> AbstractTensor:
    if len(x.shape) != 3:
        raise ShapeError(stage, f"conv1d expects (N, C, L), got {x}")
    _, channels, length = x.shape
    if channels != in_channels:
        raise ShapeError(
            stage,
            f"channel mismatch: input has {channels}, weight expects "
            f"{in_channels}",
        )
    assert length is not None
    if length + 2 * padding < kernel:
        raise ShapeError(
            stage,
            f"input length {length} (+{2 * padding} pad) shorter than "
            f"kernel {kernel}",
        )
    out_len = (length + 2 * padding - kernel) // stride + 1
    return AbstractTensor((None, out_channels, out_len), x.dtype)


def _max_pool1d(
    stage: str, x: AbstractTensor, kernel: int, stride: int
) -> AbstractTensor:
    if len(x.shape) != 3:
        raise ShapeError(stage, f"max_pool1d expects (N, C, L), got {x}")
    _, channels, length = x.shape
    assert length is not None
    out_len = (length - kernel) // stride + 1
    if out_len <= 0:
        raise ShapeError(
            stage, f"pool kernel {kernel} larger than input length {length}"
        )
    return AbstractTensor((None, channels, out_len), x.dtype)


def _flatten(stage: str, x: AbstractTensor) -> AbstractTensor:
    if len(x.shape) != 3:
        raise ShapeError(stage, f"flatten expects (N, C, L), got {x}")
    _, channels, length = x.shape
    assert channels is not None and length is not None
    return AbstractTensor((None, channels * length), x.dtype)


def _linear(
    stage: str, x: AbstractTensor, in_features: int, out_features: int
) -> AbstractTensor:
    if len(x.shape) != 2:
        raise ShapeError(stage, f"linear expects (N, F), got {x}")
    features = x.shape[1]
    if features != in_features:
        raise ShapeError(
            stage,
            f"linear expects in_features={in_features}, got input with "
            f"{features} features",
        )
    return AbstractTensor((None, out_features), x.dtype)


def _concat(stage: str, a: AbstractTensor, b: AbstractTensor) -> AbstractTensor:
    if len(a.shape) != 2 or len(b.shape) != 2:
        raise ShapeError(stage, f"concat expects two (N, F) tensors, got {a} / {b}")
    if a.dtype != b.dtype:
        raise ShapeError(
            stage,
            f"dtype mismatch between towers: {a.dtype} vs {b.dtype} "
            "(mixed-precision concat silently promotes to float64)",
        )
    assert a.shape[1] is not None and b.shape[1] is not None
    return AbstractTensor((None, a.shape[1] + b.shape[1]), a.dtype)


def _embedding_bag(
    stage: str, num_embeddings: int, dim: int, dtype: str
) -> AbstractTensor:
    if num_embeddings < 1 or dim < 1:
        raise ShapeError(
            stage,
            f"embedding-bag needs positive table dims, got "
            f"({num_embeddings}, {dim})",
        )
    return AbstractTensor((None, dim), dtype)


# -- the dual-tower specification --------------------------------------------------


@dataclass(frozen=True)
class DualTowerSpec:
    """Static description of one EmbLookup dual-tower instantiation.

    Mirrors the constructor arguments of ``CharCNNEncoder`` and
    ``EmbLookupModel``; ``mlp_in`` defaults to the fused width
    (``out_dim + fasttext_dim``) exactly as the model computes it, but can
    be pinned explicitly — a refactor that changes one tower without
    updating the fusion layer is then rejected statically.

    ``fasttext_dtype`` defaults to ``dtype``; setting it differently
    models a pre-trained semantic tower loaded at the wrong precision.
    """

    alphabet_size: int
    max_length: int
    out_dim: int = 64
    cnn_channels: int = 8
    cnn_layers: int = 5
    cnn_kernel: int = 3
    cnn_padding: int = 1
    pool_every: int = 2
    fasttext_dim: int = 64
    fasttext_buckets: int = 2**15
    mlp_in: int | None = None
    mlp_hidden: int | None = None
    pq_m: int | None = 8
    dtype: str = "float32"
    fasttext_dtype: str | None = None

    @classmethod
    def from_config(
        cls,
        config: EmbLookupConfig,
        alphabet_size: int = 40,
        **overrides: object,
    ) -> "DualTowerSpec":
        """Build a spec from an :class:`EmbLookupConfig`.

        ``alphabet_size`` defaults to a typical fitted alphabet (lowercase
        letters + digits + punctuation); pass the real ``Alphabet.size``
        when one is available.  ``overrides`` pin individual fields.
        """
        base = {
            "alphabet_size": alphabet_size,
            "max_length": config.max_length,
            "out_dim": config.embedding_dim,
            "fasttext_dim": config.embedding_dim,
            "fasttext_buckets": config.fasttext_buckets,
            "pq_m": config.pq_m if config.compression in ("pq", "ivfpq") else None,
        }
        base.update(overrides)
        return cls(**base)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ShapeReport:
    """Successful propagation trace: ``(stage name, abstract tensor)`` pairs."""

    stages: tuple[tuple[str, AbstractTensor], ...]
    output: AbstractTensor
    notes: tuple[str, ...] = field(default=())

    def format(self) -> str:
        """Fixed-width table of the propagation trace."""
        width = max(len(name) for name, _ in self.stages)
        lines = [f"{'stage'.ljust(width)}  output"]
        for name, tensor in self.stages:
            lines.append(f"{name.ljust(width)}  {tensor}")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(f"OK: dual tower is shape/dtype consistent -> {self.output}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation of the trace."""
        return {
            "stages": [
                {"stage": name, "shape": list(t.shape), "dtype": t.dtype}
                for name, t in self.stages
            ],
            "output": {"shape": list(self.output.shape), "dtype": self.output.dtype},
            "notes": list(self.notes),
        }


def check_dual_tower(spec: DualTowerSpec) -> ShapeReport:
    """Propagate ``(shape, dtype)`` through the dual-tower stack.

    Returns a :class:`ShapeReport` on success; raises :class:`ShapeError`
    naming the offending stage on any dimension or dtype inconsistency.
    """
    if spec.alphabet_size < 1:
        raise ShapeError("one-hot", "alphabet_size must be positive")
    if spec.max_length < 1:
        raise ShapeError("one-hot", "max_length must be positive")
    if spec.cnn_layers < 1:
        raise ShapeError("cnn", "cnn_layers must be >= 1")

    stages: list[tuple[str, AbstractTensor]] = []
    x = AbstractTensor((None, spec.alphabet_size, spec.max_length), spec.dtype)
    stages.append(("one-hot", x))

    # Syntactic tower: mirrors CharCNNEncoder.__init__/forward exactly,
    # including the "only pool while length >= 2" construction guard.
    in_channels = spec.alphabet_size
    length = spec.max_length
    for layer in range(spec.cnn_layers):
        stage = f"conv{layer} (k={spec.cnn_kernel}, p={spec.cnn_padding})"
        x = _conv1d(
            stage,
            x,
            out_channels=spec.cnn_channels,
            in_channels=in_channels,
            kernel=spec.cnn_kernel,
            padding=spec.cnn_padding,
        )
        stages.append((stage, x))
        in_channels = spec.cnn_channels
        pool_here = (
            spec.pool_every > 0
            and (layer + 1) % spec.pool_every == 0
            and length >= 2
        )
        if pool_here:
            stage = f"maxpool{layer} (k=2, s=2)"
            x = _max_pool1d(stage, x, kernel=2, stride=2)
            stages.append((stage, x))
            length //= 2

    x = _flatten("flatten", x)
    stages.append(("flatten", x))
    head_in = spec.cnn_channels * length
    x = _linear("cnn-head", x, in_features=head_in, out_features=spec.out_dim)
    stages.append(("cnn-head", x))

    # Semantic tower: subword embedding-bag mean pooling.
    fasttext_dtype = spec.fasttext_dtype or spec.dtype
    semantic = _embedding_bag(
        "embedding-bag", spec.fasttext_buckets, spec.fasttext_dim, fasttext_dtype
    )
    stages.append(("embedding-bag", semantic))

    # Fusion MLP.
    fused = _concat("concat", x, semantic)
    stages.append(("concat", fused))
    mlp_in = spec.mlp_in if spec.mlp_in is not None else spec.out_dim + spec.fasttext_dim
    hidden = spec.mlp_hidden if spec.mlp_hidden is not None else mlp_in
    fused = _linear("fuse1", fused, in_features=mlp_in, out_features=hidden)
    stages.append(("fuse1", fused))
    out = _linear("fuse2", fused, in_features=hidden, out_features=spec.out_dim)
    stages.append(("fuse2", out))

    notes: list[str] = []
    if spec.pq_m is not None:
        if spec.out_dim % spec.pq_m != 0:
            raise ShapeError(
                "pq",
                f"embedding_dim {spec.out_dim} not divisible by pq_m "
                f"{spec.pq_m}; product quantization cannot split the vector",
            )
        notes.append(
            f"pq: {spec.out_dim}-d {out.dtype} vector "
            f"({spec.out_dim * (4 if out.dtype == 'float32' else 8)} B) "
            f"compresses to {spec.pq_m} B codes"
        )
    return ShapeReport(stages=tuple(stages), output=out, notes=tuple(notes))
