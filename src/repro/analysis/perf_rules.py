"""REP5xx perf rules: dataflow-backed hot-path performance lints.

The paper's speedup claim lives in the embed → PQ k-NN hot path; a single
Python-level loop over an ndarray or a quadratic ``np.concatenate`` growth
pattern can silently cost more than the 256 B → 8 B compression saves.
These rules run the reaching-definitions/loop-context engine
(:mod:`repro.analysis.dataflow`) over every function in the hot-path
packages (``repro.nn`` / ``repro.index`` / ``repro.embedding``):

- ``REP501`` — ndarray allocation (``np.zeros``/``np.empty``/...),
  ``np.append``, or ``np.concatenate`` inside a ``for``/``while`` loop:
  per-iteration allocation, and the append/concatenate form is the
  classic O(n²) array-growth antipattern.
- ``REP502`` — Python-level ``for`` iteration over an ndarray: each step
  materialises a scalar/row object; vectorise or iterate an explicit
  ``.tolist()`` at the boundary.
- ``REP503`` — ``.tolist()``/``.item()`` or item-wise ``arr[i]`` indexing
  in an *inner* loop (depth ≥ 2), the per-element access pattern that
  turns a table lookup into interpreter dispatch.
- ``REP504`` — operations that silently upcast float32 to float64: a
  float32 array meeting a float64 array/scalar operand, or the builtin
  ``float`` used as a dtype (``astype(float)`` *is* float64).

All four are warnings (perf hygiene, not correctness); deliberate
exceptions are suppressed inline with ``# repro: noqa[REP50x]`` plus a
justification, or frozen in the committed baseline.  ``repro.nn.gradcheck``
is exempt wholesale — numerical differentiation is elementwise by design.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis import dataflow
from repro.analysis.dataflow import KIND_NDARRAY, KIND_SCALAR
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    HOT_PACKAGES,
    LintContext,
    LintRule,
    _in_modules,
    _in_packages,
    register,
)

__all__ = [
    "AllocInLoopRule",
    "Float32UpcastRule",
    "ItemwiseInnerLoopRule",
    "NdarrayIterationRule",
    "PERF_ALLOWLIST",
]

#: Modules exempt from perf rules (elementwise by design, not hot paths).
PERF_ALLOWLIST: tuple[str, ...] = ("repro/nn/gradcheck.py",)

#: numpy calls flagged when they execute once per loop iteration.
_LOOP_ALLOC_CALLS: frozenset[str] = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "append",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "tile",
    }
)

#: The quadratic-growth subset (worth a sharper message).
_GROWTH_CALLS: frozenset[str] = frozenset(
    {"append", "concatenate", "vstack", "hstack"}
)


class _PerfRule(LintRule):
    """Shared scoping + per-unit dataflow driving for the REP5xx family."""

    severity = Severity.WARNING

    def applies_to(self, path: str) -> bool:
        """Hot-path packages, minus the elementwise-by-design allowlist."""
        return _in_packages(path, HOT_PACKAGES) and not _in_modules(
            path, PERF_ALLOWLIST
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Analyse each code unit independently and delegate to the hook."""
        aliases = dataflow.numpy_aliases(ctx.tree)
        for unit in dataflow.iter_code_units(ctx.tree):
            facts = dataflow.analyze(unit, aliases)
            yield from self.check_unit(ctx, unit, facts)

    def check_unit(
        self,
        ctx: LintContext,
        unit: ast.AST,
        facts: dataflow.FunctionFacts,
    ) -> Iterator[Finding]:
        raise NotImplementedError


@register
class AllocInLoopRule(_PerfRule):
    """REP501: ndarray allocation / array growth inside a loop."""

    rule_id = "REP501"
    name = "alloc-in-loop"
    description = "ndarray allocation or np.append/np.concatenate inside a loop"

    def check_unit(self, ctx, unit, facts):
        """Flag ``np.<alloc>(...)`` calls at loop depth >= 1."""
        for node in dataflow.iter_unit_nodes(unit):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and facts.is_numpy_name(func.value)
                and func.attr in _LOOP_ALLOC_CALLS
            ):
                continue
            if facts.loop_depth(node) < 1:
                continue
            if func.attr in _GROWTH_CALLS:
                detail = (
                    f"np.{func.attr} inside a loop grows an array "
                    "copy-by-copy (O(n^2)); collect into a list and "
                    "concatenate once, or preallocate"
                )
            else:
                detail = (
                    f"np.{func.attr} allocates a fresh ndarray every "
                    "iteration; hoist the allocation out of the loop"
                )
            yield ctx.finding(self, node, detail)


@register
class NdarrayIterationRule(_PerfRule):
    """REP502: Python-level ``for`` loop directly over an ndarray."""

    rule_id = "REP502"
    name = "ndarray-iteration"
    description = "Python-level for iteration over an ndarray in a hot path"

    def check_unit(self, ctx, unit, facts):
        """Flag ``for x in arr`` where ``arr`` abstracts to an ndarray."""
        for node in dataflow.iter_unit_nodes(unit):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            value = facts.value_of(node.iter)
            if value.kind == KIND_NDARRAY:
                yield ctx.finding(
                    self,
                    node,
                    "Python-level iteration over an ndarray boxes one "
                    "element per step; vectorise, or iterate "
                    "`.tolist()` explicitly if the array is small",
                )


@register
class ItemwiseInnerLoopRule(_PerfRule):
    """REP503: per-element ndarray access inside an inner loop."""

    rule_id = "REP503"
    name = "itemwise-inner-loop"
    description = ".tolist()/item-wise ndarray indexing in an inner loop"

    def check_unit(self, ctx, unit, facts):
        """Flag ``.tolist()``/``.item()`` and ``arr[i]`` at loop depth >= 2."""
        for node in dataflow.iter_unit_nodes(unit):
            if facts.loop_depth(node) < 2:
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("tolist", "item")
                    and facts.value_of(func.value).kind == KIND_NDARRAY
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f".{func.attr}() in an inner loop converts per "
                        "element; hoist the conversion out of the loop",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                index = node.slice
                if (
                    isinstance(index, ast.Name)
                    and index.id in facts.active_loop_vars(node)
                    and facts.value_of(node.value).kind == KIND_NDARRAY
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "item-wise ndarray indexing with a loop variable in "
                        "an inner loop; use a vectorised gather instead",
                    )


@register
class Float32UpcastRule(_PerfRule):
    """REP504: operation that silently upcasts float32 to float64."""

    rule_id = "REP504"
    name = "float32-upcast"
    description = "operation upcasting a float32 array to float64"

    def check_unit(self, ctx, unit, facts):
        """Flag f32×f64 arithmetic and the builtin ``float`` used as a dtype."""
        for node in dataflow.iter_unit_nodes(unit):
            if isinstance(node, ast.BinOp):
                left = facts.value_of(node.left)
                right = facts.value_of(node.right)
                sides = (left, right)
                if any(
                    v.kind == KIND_NDARRAY and v.dtype == "float32"
                    for v in sides
                ) and any(
                    v.kind in (KIND_NDARRAY, KIND_SCALAR)
                    and v.dtype == "float64"
                    for v in sides
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "arithmetic between a float32 array and a float64 "
                        "operand upcasts the result to float64",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_builtin_float_dtype(ctx, node)

    def _check_builtin_float_dtype(
        self, ctx: LintContext, node: ast.Call
    ) -> Iterator[Finding]:
        candidates: list[ast.expr] = [
            kw.value for kw in node.keywords if kw.arg == "dtype"
        ]
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and node.args
        ):
            candidates.append(node.args[0])
        for arg in candidates:
            if isinstance(arg, ast.Name) and arg.id == "float":
                yield ctx.finding(
                    self,
                    arg,
                    "builtin `float` as a dtype is float64; spell the "
                    "intended precision (np.float32) explicitly",
                )
