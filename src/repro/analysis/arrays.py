"""Array-contract analysis (REP8xx): shape/dtype/layout across call sites.

The blockwise top-k, PQ transposed-LUT gather, and shm shard payloads all
assume ``(nq, d) float32`` C-contiguous inputs and ``int64`` id
arithmetic.  This pass proves those assumptions from the declared
contracts (:func:`repro.utils.contracts.array_contract`): it treats each
contract as a function summary and runs a per-function abstract
interpreter over ``(shape, dtype, contiguity)`` facts, resolving calls
through the existing :class:`~repro.analysis.graph.CallGraph`.

Rules (all documented in DESIGN.md §8):

- **REP801 dim mismatch** — an argument's tracked ndim or symbolic dims
  conflict with the callee's declared dims.  Symbols unify per call
  site: one callee symbol bound to two *different* caller dims (two ints,
  or two distinct locally-rooted symbols — the transposed-argument
  signature) is a conflict.  Symbols minted fresh for unresolved callee
  return dims (spelled ``name?line``) never conflict, so one quantity
  reaching a call along two paths is not a false positive.
- **REP802 dtype violation** — e.g. a ``float64`` fact entering a
  declared ``f32`` kernel (the silent upcast that invalidates the 256 B
  -> 8 B PQ memory story).
- **REP803 layout violation** — a transposed / Fortran / strided fact
  entering a kernel declared C-contiguous (``np.take`` row gathers and
  blockwise reductions assume C layout).
- **REP804 id-width hazard** — arithmetic (``* + - ** <<``) on an
  integer array fact narrower than int64 inside the index/serving/lookup
  packages (the ``local * num_shards + shard`` remap must never run in
  int32), or a sub-int64 integer fact flowing where ``i64`` is declared.
- **REP805 missing contract** — a public API in ``repro.index`` /
  ``repro.serving`` / ``repro.lookup`` with ``ndarray`` in its signature
  annotations but no ``@array_contract`` (or an unparseable one).

REP801–REP804 share one cached interprocedural pass per
:class:`~repro.analysis.graph.ProjectContext`; REP805 is a per-file rule
so fixtures exercise it through ``lint_source`` like every other family.
The runtime validator (``REPRO_ARRAYCHECK=1``; see
:mod:`repro.utils.contracts`) enforces the same contracts on live
arrays, and the fixture pair ``arrays_violations.py`` /
``arrays_clean.py`` is asserted to trip — and not trip — both halves.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.dataflow import numpy_aliases
from repro.analysis.findings import Finding, Severity
from repro.analysis.graph import CallGraph, FunctionInfo, ProjectContext
from repro.analysis.rules import (
    LintContext,
    LintRule,
    ProjectRule,
    _in_packages,
    register,
    register_project,
)
from repro.utils.contracts import (
    NARROW_INT_DTYPES,
    ArrayContract,
    ArraySpec,
    ContractError,
    ScalarSpec,
    dtype_verdict,
    parse_contract,
)

__all__ = ["ARRAY_PACKAGES"]

#: Packages whose public array APIs must declare contracts.
ARRAY_PACKAGES: tuple[str, ...] = (
    "repro/index",
    "repro/serving",
    "repro/lookup",
)

#: dtype token -> the concrete dtype a contracted return is trusted to carry.
_TOKEN_DTYPE: dict[str, str] = {
    "f32": "float32",
    "f64": "float64",
    "i64": "int64",
    "i32": "int32",
    "u8": "uint8",
    "u64": "uint64",
    "bool": "bool",
}

#: numpy attribute -> dtype name, for ``dtype=np.float32``-style keywords.
_NP_DTYPE_ATTRS: dict[str, str] = {
    "float16": "float16",
    "float32": "float32",
    "float64": "float64",
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "intp": "int64",
    "uint8": "uint8",
    "uint16": "uint16",
    "uint32": "uint32",
    "uint64": "uint64",
    "bool_": "bool",
}

#: BinOp operators whose result can exceed a narrow operand's range.
_OVERFLOW_OPS = (ast.Mult, ast.Add, ast.Sub, ast.Pow, ast.LShift)


@dataclass(frozen=True)
class _Fact:
    """Abstract array value: symbolic dims + dtype name + contiguity.

    ``dims`` entries are ints, symbol strings, or ``None`` (unknown);
    symbols containing ``?`` were minted for an unresolved callee return
    dim and are treated as unification wildcards.  ``None`` fields mean
    "unknown", never "violating".
    """

    dims: tuple | None
    dtype: str | None
    contig: bool | None


def _rooted(dim) -> bool:
    """Whether ``dim`` is a symbol the caller can vouch for (not minted)."""
    return isinstance(dim, str) and "?" not in dim


@dataclass(frozen=True)
class _ContractInfo:
    """A collected contract plus the callee's (self-stripped) param names."""

    contract: ArrayContract
    param_names: tuple[str, ...]


def _decorator_spec(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The ``@array_contract("...")`` literal on ``node``, if present."""
    for decorator in node.decorator_list:
        if not (isinstance(decorator, ast.Call) and decorator.args):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name != "array_contract":
            continue
        first = decorator.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _has_contract_decorator(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "array_contract":
            return True
    return False


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    names = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _collect_contracts(
    graph: CallGraph,
) -> dict[tuple[str, str], _ContractInfo]:
    table: dict[tuple[str, str], _ContractInfo] = {}
    for key, info in graph.functions.items():
        spec = _decorator_spec(info.node)
        if spec is None:
            continue
        try:
            contract = parse_contract(spec)
        except ContractError:
            continue  # REP805 reports unparseable contracts per-file
        table[key] = _ContractInfo(
            contract=contract, param_names=tuple(_param_names(info.node))
        )
    return table


# -- the interprocedural pass ------------------------------------------------------


class _ArrayPass:
    """One run over every project function; findings keyed by rule id."""

    def __init__(self, project: ProjectContext):
        self.graph = project.call_graph
        self.contracts = _collect_contracts(self.graph)
        self.paths = {
            name: module.path for name, module in project.modules.items()
        }
        self.aliases = {
            name: numpy_aliases(module.tree)
            for name, module in project.modules.items()
        }
        self.findings: list[Finding] = []
        self._seen: set[tuple] = set()

    def run(self) -> list[Finding]:
        for info in self.graph.functions.values():
            _FunctionInterp(self, info).run()
        return self.findings

    def emit(
        self, rule: str, module: str, node: ast.AST, message: str
    ) -> None:
        path = self.paths.get(module, module)
        key = (
            rule,
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=path,
                line=key[2],
                col=key[3],
                severity=Severity.ERROR,
                message=message,
            )
        )


def _project_findings(project: ProjectContext) -> list[Finding]:
    """The shared pass, cached on the context (one run serves REP801-804)."""
    cached = getattr(project, "_rep8_findings", None)
    if cached is None:
        cached = _ArrayPass(project).run()
        project._rep8_findings = cached
    return cached


class _FunctionInterp:
    """Linear abstract interpretation of one function body."""

    def __init__(self, pass_: _ArrayPass, info: FunctionInfo):
        self.pass_ = pass_
        self.info = info
        self.np_aliases = pass_.aliases.get(info.module, frozenset())
        self.in_array_pkg = _in_packages(
            pass_.paths.get(info.module, info.module), ARRAY_PACKAGES
        )
        self.own = pass_.contracts.get((info.module, info.qualname))
        self.env: dict[str, _Fact] = {}
        self.checked: set[int] = set()

    # -- entry ------------------------------------------------------------------

    def run(self) -> None:
        if self.own is not None:
            self._seed_from_contract()
        self._visit_body(self.info.node.body)

    def _seed_from_contract(self) -> None:
        contract = self.own.contract
        for index, entry in enumerate(contract.params):
            if index >= len(self.own.param_names):
                break
            if not isinstance(entry, ArraySpec):
                continue
            name = self.own.param_names[index]
            if any(d == "..." for d in entry.dims):
                dims = None
            else:
                dims = tuple(
                    None if d == "_" else d for d in entry.dims
                )
            self.env[name] = _Fact(
                dims=dims,
                dtype=_TOKEN_DTYPE.get(entry.dtype),
                contig=True if entry.layout == "C" else None,
            )

    def _own_bindings(self) -> dict:
        """Pre-bind this function's own contract symbols to themselves."""
        bindings: dict = {}
        contract = self.own.contract
        for index, entry in enumerate(contract.params):
            if isinstance(entry, ArraySpec):
                for dim in entry.dims:
                    if isinstance(dim, str) and dim not in ("...", "_"):
                        bindings[dim] = dim
            elif index < len(self.own.param_names):
                name = self.own.param_names[index]
                bindings[name] = name
        return bindings

    # -- statements -------------------------------------------------------------

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            fact = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, fact)
            self._sweep(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            fact = self._eval(stmt.value) if stmt.value is not None else None
            self._bind(stmt.target, fact)
            self._sweep(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            self._check_overflow_op(stmt.op, stmt.target, stmt)
            self._sweep(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_return(stmt)
            self._sweep(stmt)
        elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Raise, ast.Delete)):
            self._sweep(stmt)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._sweep(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._sweep(stmt.iter)
            self._bind(stmt.target, None)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._sweep(item.context_expr)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        # nested defs/classes are separate call-graph entries; skip here

    def _sweep(self, node: ast.AST) -> None:
        """Evaluate any calls this statement reaches that _eval missed."""
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and id(child) not in self.checked:
                self._eval_call(child)

    def _bind(self, target: ast.expr, fact) -> None:
        if isinstance(target, ast.Name):
            if isinstance(fact, _Fact):
                self.env[target.id] = fact
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            facts = fact if isinstance(fact, tuple) else [None] * len(
                target.elts
            )
            if len(facts) != len(target.elts):
                facts = [None] * len(target.elts)
            for element, sub in zip(target.elts, facts):
                self._bind(element, sub)
        # attribute/subscript stores don't update the local env

    # -- expressions ------------------------------------------------------------

    def _eval(self, node: ast.expr | None):
        """A ``_Fact``, a tuple of facts (multi-return), or ``None``."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                return self._transposed(self._eval(node.value))
            self._eval(node.value)
            return None
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            self._eval(node.body)
            self._eval(node.orelse)
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._eval(element) for element in node.elts)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return None
        if isinstance(node, ast.Starred):
            self._eval(node.value)
            return None
        return None

    def _eval_binop(self, node: ast.BinOp):
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, _OVERFLOW_OPS):
            for side in (left, right):
                if (
                    isinstance(side, _Fact)
                    and side.dtype in NARROW_INT_DTYPES
                    and self.in_array_pkg
                ):
                    self.pass_.emit(
                        "REP804",
                        self.info.module,
                        node,
                        f"{self.info.qualname}: arithmetic on a "
                        f"{side.dtype} array can overflow before reaching "
                        "int64; widen ids to int64 first",
                    )
                    break
        facts = [f for f in (left, right) if isinstance(f, _Fact)]
        if not facts:
            return None
        dims = None
        for fact in facts:
            if fact.dims is not None and (
                dims is None or len(fact.dims) > len(dims)
            ):
                dims = fact.dims
        if len(facts) == 2 and facts[0].dtype == facts[1].dtype:
            dtype = facts[0].dtype
        else:
            dtype = None  # promotion with an unknown operand is unknown
        return _Fact(dims=dims, dtype=dtype, contig=True)

    def _transposed(self, fact):
        if not isinstance(fact, _Fact):
            return None
        if fact.dims is not None and len(fact.dims) == 1:
            return fact  # 1-D transpose is the identity
        dims = tuple(reversed(fact.dims)) if fact.dims is not None else None
        return _Fact(dims=dims, dtype=fact.dtype, contig=False)

    def _eval_subscript(self, node: ast.Subscript):
        base = self._eval(node.value)
        self._eval(node.slice)
        if not isinstance(base, _Fact) or base.dims is None:
            return None
        index = node.slice
        if isinstance(index, ast.Constant) and index.value is None:
            return _Fact((1, *base.dims), base.dtype, base.contig)
        if isinstance(index, ast.Slice):
            step_one = index.step is None
            first = None if (index.lower or index.upper) else base.dims[0]
            return _Fact(
                (first, *base.dims[1:]),
                base.dtype,
                base.contig if step_one else False,
            )
        if isinstance(index, (ast.Constant, ast.Name)) and not isinstance(
            getattr(index, "value", 0), (tuple, slice)
        ):
            if len(base.dims) >= 1:  # x[i]: drop the leading axis
                return _Fact(tuple(base.dims[1:]) or None, base.dtype, base.contig)
        if isinstance(index, ast.Tuple) and base.dims:
            elements = index.elts
            # x[None, :] / x[:, j]: the two view shapes kernels receive
            if (
                len(elements) == 2
                and isinstance(elements[0], ast.Constant)
                and elements[0].value is None
            ):
                return _Fact((1, *base.dims), base.dtype, base.contig)
            if (
                len(elements) == 2
                and len(base.dims) == 2
                and isinstance(elements[0], ast.Slice)
                and elements[0].lower is None
                and elements[0].upper is None
                and not isinstance(elements[1], ast.Slice)
            ):
                return _Fact((base.dims[0],), base.dtype, False)
        return None

    # -- numpy constructors & methods --------------------------------------------

    def _dim_of(self, node: ast.expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            dotted = []
            current = node
            while isinstance(current, ast.Attribute):
                dotted.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                dotted.append(current.id)
                return ".".join(reversed(dotted))
        return None

    def _shape_of(self, node: ast.expr) -> tuple | None:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._dim_of(element) for element in node.elts)
        dim = self._dim_of(node)
        return (dim,) if dim is not None else None

    def _dtype_of(self, node: ast.expr | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Attribute):
            root = node.value
            if isinstance(root, ast.Name) and root.id in self.np_aliases:
                return _NP_DTYPE_ATTRS.get(node.attr)
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value if node.value in _NP_DTYPE_ATTRS.values() else None
        if isinstance(node, ast.Name):
            return {"float": "float64", "int": "int64", "bool": "bool"}.get(
                node.id
            )
        return None

    def _kwarg(self, node: ast.Call, name: str) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _numpy_fact(self, node: ast.Call, arg_facts: list):
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.np_aliases
        ):
            return None
        name = func.attr
        dtype_kw = self._dtype_of(self._kwarg(node, "dtype"))
        if name in ("zeros", "ones", "empty", "full"):
            shape = self._shape_of(node.args[0]) if node.args else None
            return _Fact(shape, dtype_kw or "float64", True)
        if name == "arange":
            return _Fact((None,), dtype_kw, True)
        if name in ("asarray", "array"):
            base = arg_facts[0] if arg_facts else None
            base = base if isinstance(base, _Fact) else _Fact(None, None, None)
            if dtype_kw is not None:
                return _Fact(base.dims, dtype_kw, None)
            return _Fact(base.dims, base.dtype, base.contig)
        if name == "ascontiguousarray":
            base = arg_facts[0] if arg_facts else None
            base = base if isinstance(base, _Fact) else _Fact(None, None, None)
            return _Fact(base.dims, dtype_kw or base.dtype, True)
        if name == "asfortranarray":
            base = arg_facts[0] if arg_facts else None
            base = base if isinstance(base, _Fact) else _Fact(None, None, None)
            if base.dims is not None and len(base.dims) == 1:
                return _Fact(base.dims, dtype_kw or base.dtype, True)
            return _Fact(base.dims, dtype_kw or base.dtype, False)
        if name == "transpose":
            return self._transposed(
                arg_facts[0] if arg_facts else None
            )
        if name == "take_along_axis" and arg_facts:
            base = arg_facts[0]
            if isinstance(base, _Fact):
                return _Fact(None, base.dtype, True)
        return None

    def _method_fact(self, node: ast.Call, arg_facts: list):
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        base = self._eval(func.value)
        base = base if isinstance(base, _Fact) else None
        name = func.attr
        if name == "astype":
            dtype = self._dtype_of(node.args[0]) if node.args else None
            dtype = dtype or self._dtype_of(self._kwarg(node, "dtype"))
            copy_kw = self._kwarg(node, "copy")
            copies = not (
                isinstance(copy_kw, ast.Constant) and copy_kw.value is False
            )
            dims = base.dims if base else None
            contig = True if copies else (base.contig if base else None)
            return _Fact(dims, dtype, contig)
        if base is None:
            return None
        if name == "copy":
            return _Fact(base.dims, base.dtype, True)
        if name in ("ravel", "flatten"):
            return _Fact((None,), base.dtype, True)
        if name == "reshape":
            shape = None
            if len(node.args) == 1:
                shape = self._shape_of(node.args[0])
            elif node.args:
                shape = tuple(self._dim_of(a) for a in node.args)
            if shape is not None and any(d == -1 for d in shape):
                shape = tuple(None if d == -1 else d for d in shape)
            return _Fact(shape, base.dtype, True)
        if name == "transpose":
            if not node.args:
                return self._transposed(base)
            if base.dims is not None and all(
                isinstance(a, ast.Constant) and isinstance(a.value, int)
                for a in node.args
            ):
                order = [a.value for a in node.args]
                if sorted(order) == list(range(len(base.dims))):
                    dims = tuple(base.dims[i] for i in order)
                    return _Fact(dims, base.dtype, False)
            return _Fact(None, base.dtype, False)
        if name in ("sum", "mean", "min", "max", "prod"):
            axis = None
            axis_node = (
                node.args[0] if node.args else self._kwarg(node, "axis")
            )
            if isinstance(axis_node, ast.Constant) and isinstance(
                axis_node.value, int
            ):
                axis = axis_node.value
            dims = None
            if base.dims is not None and axis is not None:
                if -len(base.dims) <= axis < len(base.dims):
                    kept = list(base.dims)
                    del kept[axis]
                    dims = tuple(kept) or None
            return _Fact(dims, base.dtype, True)
        return None

    # -- calls -------------------------------------------------------------------

    def _eval_call(self, node: ast.Call):
        self.checked.add(id(node))
        arg_facts = [self._eval(a) for a in node.args]
        for keyword in node.keywords:
            self._eval(keyword.value)
        fact = self._numpy_fact(node, arg_facts)
        if fact is not None:
            return fact
        fact = self._method_fact(node, arg_facts)
        if fact is not None:
            return fact
        key = self.pass_.graph.resolve_call(self.info, node)
        if key is not None and key in self.pass_.contracts:
            return self._check_contracted_call(node, key, arg_facts)
        return None

    def _check_contracted_call(
        self, node: ast.Call, key: tuple[str, str], arg_facts: list
    ):
        cinfo = self.pass_.contracts[key]
        contract = cinfo.contract
        callee = f"{key[0].rsplit('.', 1)[-1]}.{key[1]}"
        bindings: dict = {}
        if any(isinstance(a, ast.Starred) for a in node.args):
            return self._instantiate_returns(contract, bindings, node)
        keyword_nodes = {
            kw.arg: kw.value for kw in node.keywords if kw.arg is not None
        }
        for index, entry in enumerate(contract.params):
            param = (
                cinfo.param_names[index]
                if index < len(cinfo.param_names)
                else None
            )
            if index < len(node.args):
                arg_node = node.args[index]
                fact = arg_facts[index]
            elif param is not None and param in keyword_nodes:
                arg_node = keyword_nodes[param]
                fact = self.env.get(arg_node.id) if isinstance(
                    arg_node, ast.Name
                ) else self._eval(arg_node)
            else:
                continue
            if isinstance(entry, ScalarSpec):
                if param is not None:
                    dim = self._dim_of(arg_node)
                    if dim is not None:
                        bindings.setdefault(param, dim)
                continue
            self._check_value(
                arg_node,
                f"{self.info.qualname}: argument "
                f"{param or index} of {callee}()",
                entry,
                fact,
                bindings,
            )
        return self._instantiate_returns(contract, bindings, node)

    def _instantiate_returns(
        self, contract: ArrayContract, bindings: dict, node: ast.Call
    ):
        if contract.returns is None:
            return None
        facts = []
        for spec in contract.returns:
            if any(d == "..." for d in spec.dims):
                dims = None
            else:
                dims = tuple(
                    bindings.setdefault(d, f"{d}?{node.lineno}")
                    if isinstance(d, str) and d != "_"
                    else (None if d == "_" else d)
                    for d in spec.dims
                )
            facts.append(
                _Fact(
                    dims=dims,
                    dtype=_TOKEN_DTYPE.get(spec.dtype),
                    contig=True if spec.layout == "C" else None,
                )
            )
        return facts[0] if len(facts) == 1 else tuple(facts)

    def _check_value(
        self,
        loc: ast.AST,
        label: str,
        spec: ArraySpec,
        fact,
        bindings: dict,
    ) -> None:
        if not isinstance(fact, _Fact):
            return
        emit = self.pass_.emit
        module = self.info.module
        if fact.dims is not None:
            dims = spec.dims
            if dims and dims[0] == "...":
                fixed = dims[1:]
                if len(fact.dims) < len(fixed):
                    emit(
                        "REP801",
                        module,
                        loc,
                        f"{label} declared {spec.describe()}, tracked fact "
                        f"has only {len(fact.dims)} dim(s)",
                    )
                    pairs = []
                else:
                    tail = fact.dims[len(fact.dims) - len(fixed) :]
                    pairs = list(zip(fixed, tail))
            elif len(dims) != len(fact.dims):
                emit(
                    "REP801",
                    module,
                    loc,
                    f"{label} declared {len(dims)}-d {spec.describe()}, "
                    f"tracked fact is {len(fact.dims)}-d",
                )
                pairs = []
            else:
                pairs = list(zip(dims, fact.dims))
            for dim, actual in pairs:
                if dim == "_" or actual is None:
                    continue
                if isinstance(dim, int):
                    if isinstance(actual, int) and actual != dim:
                        emit(
                            "REP801",
                            module,
                            loc,
                            f"{label} declared dim {dim}, tracked size is "
                            f"{actual}",
                        )
                        break
                    continue
                bound = bindings.get(dim)
                if bound is None:
                    bindings[dim] = actual
                    continue
                conflict = (
                    isinstance(bound, int)
                    and isinstance(actual, int)
                    and bound != actual
                ) or (
                    _rooted(bound) and _rooted(actual) and bound != actual
                )
                if conflict:
                    emit(
                        "REP801",
                        module,
                        loc,
                        f"{label} dim '{dim}' already bound to "
                        f"'{bound}', tracked dim is '{actual}' "
                        "(transposed or mismatched argument?)",
                    )
                    break
        if fact.dtype is not None:
            verdict = dtype_verdict(spec.dtype, fact.dtype)
            if verdict is not None:
                rule, why = verdict
                emit(rule, module, loc, f"{label} {why}")
        if spec.layout == "C" and fact.contig is False:
            emit(
                "REP803",
                module,
                loc,
                f"{label} declared C-contiguous {spec.describe()}, tracked "
                "fact is non-contiguous (transposed/Fortran view?)",
            )

    def _check_overflow_op(
        self, op: ast.operator, target: ast.expr, stmt: ast.stmt
    ) -> None:
        if not isinstance(op, _OVERFLOW_OPS) or not self.in_array_pkg:
            return
        fact = self._eval(target) if isinstance(target, ast.Name) else None
        if isinstance(fact, _Fact) and fact.dtype in NARROW_INT_DTYPES:
            self.pass_.emit(
                "REP804",
                self.info.module,
                stmt,
                f"{self.info.qualname}: in-place arithmetic on a "
                f"{fact.dtype} array can overflow before reaching int64",
            )

    def _check_return(self, stmt: ast.Return) -> None:
        if self.own is None or self.own.contract.returns is None:
            self._eval(stmt.value)
            return
        specs = self.own.contract.returns
        bindings = self._own_bindings()
        label = f"{self.info.qualname}: return value"
        if len(specs) == 1:
            fact = self._eval(stmt.value)
            if isinstance(fact, tuple):
                return
            self._check_value(stmt, label, specs[0], fact, bindings)
            return
        if isinstance(stmt.value, ast.Tuple) and len(stmt.value.elts) == len(
            specs
        ):
            for index, (spec, element) in enumerate(
                zip(specs, stmt.value.elts)
            ):
                fact = self._eval(element)
                if isinstance(fact, tuple):
                    continue
                self._check_value(
                    stmt, f"{label} {index}", spec, fact, bindings
                )
            return
        fact = self._eval(stmt.value)
        if isinstance(fact, tuple) and len(fact) == len(specs):
            for index, (spec, sub) in enumerate(zip(specs, fact)):
                self._check_value(stmt, f"{label} {index}", spec, sub, bindings)


# -- registered rules --------------------------------------------------------------


class _ArrayPassRule(ProjectRule):
    """Base for REP801-804: filter the shared cached pass by rule id."""

    severity = Severity.ERROR

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for finding in _project_findings(project):
            if finding.rule == self.rule_id:
                yield finding


@register_project
class DimMismatchRule(_ArrayPassRule):
    """REP801: tracked dims/ndim conflict with a declared contract."""

    rule_id = "REP801"
    name = "array-dim-mismatch"
    description = "array dims conflict with the callee's declared contract"


@register_project
class DtypeContractRule(_ArrayPassRule):
    """REP802: tracked dtype violates a declared contract (f64 into f32)."""

    rule_id = "REP802"
    name = "array-dtype-contract"
    description = "array dtype violates the declared contract"


@register_project
class LayoutContractRule(_ArrayPassRule):
    """REP803: non-contiguous fact entering a kernel declared C-contiguous."""

    rule_id = "REP803"
    name = "array-layout-contract"
    description = "non-contiguous array entering a C-contiguous kernel"


@register_project
class IdWidthRule(_ArrayPassRule):
    """REP804: id arithmetic (or an i64 contract) on sub-int64 integers."""

    rule_id = "REP804"
    name = "id-width-overflow"
    description = "integer id arithmetic narrower than int64"


@register
class MissingContractRule(LintRule):
    """REP805: public array API without (or with an invalid) contract."""

    rule_id = "REP805"
    name = "missing-array-contract"
    severity = Severity.WARNING
    description = "public ndarray API without an @array_contract declaration"

    _PROPERTY_DECORATORS = frozenset({"property", "cached_property", "setter"})

    def applies_to(self, path: str) -> bool:
        """Index/serving/lookup only: the contracted surface."""
        return _in_packages(path, ARRAY_PACKAGES)

    def _is_property(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for decorator in node.decorator_list:
            name = (
                decorator.id
                if isinstance(decorator, ast.Name)
                else decorator.attr
                if isinstance(decorator, ast.Attribute)
                else None
            )
            if name in self._PROPERTY_DECORATORS:
                return True
        return False

    def _mentions_ndarray(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        annotations = [
            a.annotation
            for a in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
            if a.annotation is not None
        ]
        if node.returns is not None:
            annotations.append(node.returns)
        return any("ndarray" in ast.unparse(a) for a in annotations)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Walk defs with class context; flag uncontracted public array APIs."""
        yield from self._visit(ctx, ctx.tree.body, public_scope=True)

    def _visit(
        self, ctx: LintContext, body: list[ast.stmt], public_scope: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                yield from self._visit(
                    ctx,
                    stmt.body,
                    public_scope and not stmt.name.startswith("_"),
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                spec = _decorator_spec(stmt)
                if spec is not None:
                    try:
                        parse_contract(spec)
                    except ContractError as exc:
                        yield ctx.finding(
                            self, stmt, f"invalid array contract: {exc}"
                        )
                    continue
                if _has_contract_decorator(stmt):
                    continue  # non-literal spec: trust it (checked at import)
                if (
                    public_scope
                    and not stmt.name.startswith("_")
                    and not self._is_property(stmt)
                    and self._mentions_ndarray(stmt)
                ):
                    yield ctx.finding(
                        self,
                        stmt,
                        f"public array API {stmt.name}() has ndarray "
                        "annotations but no @array_contract declaration",
                    )
