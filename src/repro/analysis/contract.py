"""Architecture contract: declared layering enforced over the import graph.

The contract lives in ``tools/arch_contract.toml`` and declares, for each
first-level package under the root (``index``, ``nn``, ``lookup``, ...),
which other first-level packages it may import from **at runtime**.
Intra-package imports are always allowed; typing-only imports (guarded by
``if TYPE_CHECKING:``) are exempt.  ``repro archcheck`` builds the import
graph, checks every runtime edge against the contract, and exits 1 on any
violation, so a layering regression (e.g. ``analysis`` reaching into
``nn``, or ``index`` importing ``lookup``) fails CI before review.

Violations are reported as :class:`~repro.analysis.findings.Finding`
records with their own stable rule ids, reusing the lint reporter and
noqa machinery:

- ``ARC001`` (error) — an undeclared cross-layer runtime import;
- ``ARC002`` (error) — a module-level runtime import cycle;
- ``ARC003`` (error) — a module whose layer has no contract entry.
"""

from __future__ import annotations

import tomllib
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.graph import ImportGraph

__all__ = [
    "ArchContract",
    "check_contract",
    "layer_of",
    "load_contract",
]

#: Layer name used for the root package's own ``__init__``.
ROOT_LAYER = "__root__"


class ArchContract:
    """Parsed contract: per-layer allowed dependencies + cycle policy."""

    def __init__(
        self,
        root: str,
        layers: dict[str, frozenset[str]],
        forbid_cycles: bool = True,
    ):
        self.root = root
        self.layers = layers
        self.forbid_cycles = forbid_cycles

    def allowed(self, layer: str) -> frozenset[str] | None:
        """Declared dependencies of ``layer`` (None when undeclared)."""
        return self.layers.get(layer)


def load_contract(path: str | Path) -> ArchContract:
    """Load and validate a TOML contract file.

    Raises ``FileNotFoundError`` for a missing file and ``ValueError``
    for a structurally invalid one — a malformed contract must never
    silently allow everything.
    """
    file_path = Path(path)
    document = tomllib.loads(file_path.read_text(encoding="utf-8"))
    project = document.get("project", {})
    if not isinstance(project, dict):
        raise ValueError(f"malformed [project] table in {file_path}")
    root = str(project.get("root", "repro"))
    forbid_cycles = bool(project.get("forbid_cycles", True))
    raw_layers = document.get("layers")
    if not isinstance(raw_layers, dict) or not raw_layers:
        raise ValueError(f"missing or empty [layers] table in {file_path}")
    layers: dict[str, frozenset[str]] = {}
    for name, deps in raw_layers.items():
        if not isinstance(deps, list) or not all(
            isinstance(d, str) for d in deps
        ):
            raise ValueError(
                f"layer {name!r} must map to a list of layer names "
                f"in {file_path}"
            )
        unknown = set(deps) - set(raw_layers)
        if unknown:
            raise ValueError(
                f"layer {name!r} depends on undeclared layer(s) "
                f"{sorted(unknown)} in {file_path}"
            )
        layers[name] = frozenset(deps)
    return ArchContract(root=root, layers=layers, forbid_cycles=forbid_cycles)


def layer_of(module: str, root: str) -> str:
    """First-level layer a dotted module belongs to.

    ``repro.index.pq`` → ``index``; ``repro.cli`` → ``cli``; the root
    package itself → :data:`ROOT_LAYER`.  Modules outside the root keep
    their first path component as a layer name so fixture trees work.
    """
    parts = module.split(".")
    if parts[0] == root:
        parts = parts[1:]
    if not parts:
        return ROOT_LAYER
    return parts[0]


def check_contract(graph: ImportGraph, contract: ArchContract) -> list[Finding]:
    """Every contract violation in ``graph``, as sorted Finding records."""
    findings: list[Finding] = []
    undeclared_reported: set[str] = set()
    for edge in graph.edges:
        if edge.kind != "import" or not edge.runtime:
            continue
        src_layer = layer_of(edge.src, contract.root)
        dst_layer = layer_of(edge.dst, contract.root)
        src_info = graph.modules[edge.src]
        allowed = contract.allowed(src_layer)
        if allowed is None:
            if src_layer not in undeclared_reported:
                undeclared_reported.add(src_layer)
                findings.append(
                    Finding(
                        rule="ARC003",
                        path=src_info.path,
                        line=edge.lineno,
                        col=0,
                        severity=Severity.ERROR,
                        message=(
                            f"layer {src_layer!r} (module {edge.src}) has no "
                            "entry in the architecture contract"
                        ),
                    )
                )
            continue
        if dst_layer == src_layer or dst_layer in allowed:
            continue
        findings.append(
            Finding(
                rule="ARC001",
                path=src_info.path,
                line=edge.lineno,
                col=0,
                severity=Severity.ERROR,
                message=(
                    f"layer violation: {src_layer!r} may not import from "
                    f"{dst_layer!r} ({edge.src} -> {edge.dst}; allowed: "
                    f"{sorted(allowed) or 'nothing'})"
                ),
            )
        )
    if contract.forbid_cycles:
        for cycle in graph.import_cycles_with_lines():
            members, lineno, path = cycle
            findings.append(
                Finding(
                    rule="ARC002",
                    path=path,
                    line=lineno,
                    col=0,
                    severity=Severity.ERROR,
                    message=(
                        "runtime import cycle: " + " -> ".join(members + [members[0]])
                    ),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
