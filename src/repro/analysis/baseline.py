"""Baseline file support: freeze known findings, fail only on new ones.

A baseline is a committed JSON file listing the fingerprints of accepted
findings (deliberate float64 accumulation in the index distance kernels,
for example).  CI lints the tree, subtracts the baseline, and fails only
when *new* violations appear — so the rule set can be strict without
requiring a big-bang cleanup, and the baseline can be burned down over
time.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "partition_findings", "write_baseline"]

_VERSION = 1


def write_baseline(findings: Iterable[Finding], path: str | Path) -> None:
    """Write ``findings`` to ``path`` as a baseline JSON document.

    Entries keep the human-readable context (rule/path/line/message) next
    to the fingerprint so reviewers can audit what is being accepted; only
    the fingerprint participates in matching.
    """
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    document = {"version": _VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def load_baseline(path: str | Path) -> frozenset[str]:
    """Load the set of baselined fingerprints from ``path``.

    A missing file is an empty baseline (every finding is new); a file
    with the wrong structure raises ``ValueError`` rather than silently
    accepting everything.
    """
    file_path = Path(path)
    if not file_path.exists():
        return frozenset()
    document = json.loads(file_path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "findings" not in document:
        raise ValueError(f"malformed baseline file: {file_path}")
    entries = document["findings"]
    if not isinstance(entries, list):
        raise ValueError(f"malformed baseline file: {file_path}")
    fingerprints: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"malformed baseline entry in {file_path}")
        fingerprints.add(str(entry["fingerprint"]))
    return frozenset(fingerprints)


def partition_findings(
    findings: Sequence[Finding], baseline: frozenset[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into ``(new, baselined)`` against ``baseline``."""
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        (known if finding.fingerprint in baseline else new).append(finding)
    return new, known
