"""REP6xx gradient-flow rules: parameters the optimizer never sees.

The autograd engine registers parameters by attribute assignment
(``Module.__setattr__`` intercepts ``requires_grad`` tensors) and records
backward closures against ``Tensor`` objects — two invariants that fail
*silently*: a tensor stashed in a list trains at zero gradient forever,
and an op routed through ``.data`` simply drops out of the tape.

- ``REP601`` (per-file, error) — a ``Tensor(..., requires_grad=True)``
  constructed in a ``Module`` subclass ``__init__`` that never reaches a
  plain ``self.<attr>`` assignment, so ``parameters()`` cannot find it.
  Assignment through a local that is later bound to ``self.<attr>`` is
  recognised; appends/subscript stores into containers are not (the
  engine's registration hook never fires for those).
- ``REP602`` (project-scoped, error) — a read of ``Tensor.data`` inside
  a function reachable from any ``forward*`` method of a ``Module``
  subclass, resolved **interprocedurally** over the project call graph
  (``self.helper(...)`` through the class hierarchy, module-level
  helpers, and cross-module ``mod.func(...)`` calls).  Arithmetic on
  ``.data`` detaches the tape: the forward value is right, the gradient
  is silently zero.  Engine-internal modules (tensor/functional/layers/
  optim/serialization/gradcheck) legitimately touch payloads and are
  allowlisted.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.graph import ProjectContext
from repro.analysis.rules import (
    MUTATION_ALLOWLIST,
    LintContext,
    LintRule,
    ProjectRule,
    _in_modules,
    register,
    register_project,
)

__all__ = ["DetachedForwardDataRule", "UnreachableParameterRule"]


def _is_tensor_call(node: ast.AST) -> bool:
    """``Tensor(...)`` with a truthy ``requires_grad=`` keyword."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name != "Tensor":
        return False
    for kw in node.keywords:
        if kw.arg == "requires_grad":
            return bool(
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            )
    return False


def _module_subclasses_in_file(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes inheriting (transitively, within the file) from ``Module``."""
    classes = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }

    def base_names(cls: ast.ClassDef) -> list[str]:
        names = []
        for base in cls.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    module_like: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, cls in classes.items():
            if name in module_like:
                continue
            for base in base_names(cls):
                if base == "Module" or base in module_like:
                    module_like.add(name)
                    changed = True
                    break
    return [classes[name] for name in module_like]


@register
class UnreachableParameterRule(LintRule):
    """REP601: a trainable Tensor the Module's ``parameters()`` can't reach."""

    rule_id = "REP601"
    name = "unreachable-parameter"
    severity = Severity.ERROR
    description = (
        "Tensor(..., requires_grad=True) in a Module never assigned to a "
        "plain self attribute"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag requires-grad tensors whose value never reaches ``self.<attr>``."""
        for cls in _module_subclasses_in_file(ctx.tree):
            init = next(
                (
                    stmt
                    for stmt in cls.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            yield from self._check_init(ctx, cls, init)

    def _check_init(
        self, ctx: LintContext, cls: ast.ClassDef, init: ast.FunctionDef
    ) -> Iterator[Finding]:
        statements = list(ast.walk(init))
        # Locals that are, at some point, rebound to a plain self attribute.
        forwarded_locals: set[str] = set()
        for node in statements:
            if isinstance(node, ast.Assign) and _has_self_target(node.targets):
                for name_node in ast.walk(node.value):
                    if isinstance(name_node, ast.Name) and isinstance(
                        name_node.ctx, ast.Load
                    ):
                        forwarded_locals.add(name_node.id)
        for node in statements:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for call in ast.walk(value):
                if not _is_tensor_call(call):
                    continue
                if _has_self_target(targets):
                    continue  # registered via Module.__setattr__
                local_names = [
                    t.id for t in targets if isinstance(t, ast.Name)
                ]
                if local_names and all(
                    name in forwarded_locals for name in local_names
                ):
                    continue  # flows into a self attribute later
                yield ctx.finding(
                    self,
                    call,
                    f"trainable Tensor in {cls.name}.__init__ never reaches "
                    "a plain self.<attr> assignment, so parameters() (and "
                    "the optimizer) will never see it",
                )
        # Tensor calls outside assignments entirely (e.g. list.append(...)).
        assigned_calls = {
            id(call)
            for node in statements
            if isinstance(node, (ast.Assign, ast.AnnAssign))
            and node.value is not None
            for call in ast.walk(node.value)
        }
        for node in statements:
            if _is_tensor_call(node) and id(node) not in assigned_calls:
                yield ctx.finding(
                    self,
                    node,
                    f"trainable Tensor in {cls.name}.__init__ is passed into "
                    "a container or call instead of a plain self.<attr> "
                    "assignment; parameters() will never see it",
                )


def _has_self_target(targets: list[ast.expr]) -> bool:
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return True
    return False


@register_project
class DetachedForwardDataRule(ProjectRule):
    """REP602: ``.data`` read on the forward path detaches the tape."""

    rule_id = "REP602"
    name = "detached-forward-data"
    severity = Severity.ERROR
    description = (
        ".data read in a function reachable from Module.forward "
        "(detaches the autograd tape)"
    )

    def applies_to(self, path: str) -> bool:
        """Everywhere except the engine internals that own the payloads."""
        return not _in_modules(path, MUTATION_ALLOWLIST)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Walk functions reachable from forward* seeds; flag ``.data`` loads."""
        call_graph = project.call_graph
        seeds = {
            key
            for key, info in call_graph.functions.items()
            if info.qualname.split(".")[-1].startswith("forward")
            and info.owner_class is not None
            and call_graph.is_module_subclass(info.module, info.owner_class)
        }
        for key in sorted(call_graph.reachable_from(seeds)):
            info = call_graph.functions[key]
            module = project.modules[info.module]
            if not self.applies_to(module.path):
                continue
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "data"
                    and isinstance(node.ctx, ast.Load)
                ):
                    where = (
                        f"{info.qualname}()"
                        if key in seeds
                        else f"{info.qualname}() (reachable from forward)"
                    )
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        severity=self.severity,
                        message=(
                            f".data read in {where} bypasses the tape: the "
                            "result carries no gradient back to the "
                            "parameters"
                        ),
                    )
