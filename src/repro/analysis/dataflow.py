"""Intraprocedural dataflow: reaching definitions + loop context on the AST.

This is the engine behind the REP5xx perf rules and the REP601
gradient-flow rule.  For one function (or a module's top-level code) it
computes, per expression node:

- an **abstract value** — a coarse ``(kind, dtype)`` lattice
  (``ndarray``/``tensor``/``list``/``scalar``/``unknown`` crossed with
  ``float32``/``float64``/``int``/unknown) propagated through
  assignments, numpy constructors, ``.astype``/array methods, arithmetic
  promotion, and subscripts;
- the **loop depth** — how many ``for``/``while`` statements enclose the
  node (comprehensions deliberately do not count: a one-time
  list-comprehension allocation is amortised, a ``for``-body allocation
  is not);
- the set of **active loop variables** — names bound by enclosing
  ``for`` targets, so rules can recognise item-wise ``arr[i]`` indexing.

The analysis is a single forward pass; loop bodies are processed twice so
definitions made inside a loop reach uses at the top of the next
iteration (a two-pass approximation of the fixpoint, exact for this
finite lattice because transfer functions are idempotent).  Nested
``def``/``class`` bodies are *not* descended into — they execute on a
different trigger and must be analysed separately via :func:`analyze`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "AbstractValue",
    "FunctionFacts",
    "KIND_LIST",
    "KIND_NDARRAY",
    "KIND_SCALAR",
    "KIND_TENSOR",
    "KIND_UNKNOWN",
    "analyze",
    "dtype_of_node",
    "iter_code_units",
    "iter_unit_nodes",
    "numpy_aliases",
]

KIND_NDARRAY = "ndarray"
KIND_TENSOR = "tensor"
KIND_LIST = "list"
KIND_SCALAR = "scalar"
KIND_UNKNOWN = "unknown"


@dataclass(frozen=True)
class AbstractValue:
    """Coarse ``(kind, dtype)`` abstraction of a runtime value.

    ``dtype`` is ``"float32"``, ``"float64"``, ``"int"``, or ``None``
    (unknown / not applicable).  Python float literals are ``scalar`` with
    ``dtype=None``: under numpy promotion a Python scalar adopts the
    array's dtype and must *not* be treated as an upcast source.
    """

    kind: str
    dtype: str | None = None


UNKNOWN = AbstractValue(KIND_UNKNOWN)

#: numpy constructors whose implicit default dtype is float64.
_DEFAULT_F64_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "linspace", "eye", "identity"}
)

#: All numpy calls that yield an ndarray (dtype from ``dtype=`` if given).
_NDARRAY_CTORS = _DEFAULT_F64_CTORS | frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "arange",
        "fromiter",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "append",
        "tile",
        "repeat",
        "where",
        "dot",
        "matmul",
        "einsum",
        "take_along_axis",
        "argsort",
        "argpartition",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
    }
)

#: ndarray methods that return an array of the same dtype.
_PRESERVING_METHODS = frozenset(
    {
        "copy",
        "reshape",
        "transpose",
        "squeeze",
        "ravel",
        "flatten",
        "clip",
        "sum",
        "mean",
        "cumsum",
        "min",
        "max",
        "round",
        "take",
    }
)


def dtype_of_node(node: ast.AST | None) -> str | None:
    """Dtype named by an expression used as a ``dtype=`` argument.

    Recognises ``np.float32`` / ``np.float64`` attributes, their string
    spellings, and the builtin ``float`` name (which *is* float64 — the
    classic silent upcast).
    """
    if node is None:
        return None
    if isinstance(node, ast.Attribute):
        if node.attr in ("float32", "float64"):
            return node.attr
        if node.attr in ("int32", "int64", "intp", "uint8"):
            return "int"
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in ("float32", "float64"):
            return node.value
        return None
    if isinstance(node, ast.Name):
        if node.id == "float":
            return "float64"
        if node.id == "int":
            return "int"
    return None


def _promote(a: str | None, b: str | None) -> str | None:
    """Numpy-style dtype promotion on the small dtype lattice."""
    if "float64" in (a, b):
        return "float64"
    if "float32" in (a, b):
        # float32 survives against int and Python scalars; against an
        # unknown array dtype the result is unknown.
        other = b if a == "float32" else a
        return "float32" if other in ("float32", "int") else None
    if a == b:
        return a
    return None


class FunctionFacts:
    """Query interface over one analysed code unit.

    Built by :func:`analyze`; exposes per-node loop depth, active loop
    variables, and abstract values (computed against the environment that
    was live at the node's statement).
    """

    def __init__(self, numpy_aliases: frozenset[str]):
        self._numpy_aliases = numpy_aliases
        self._env_at: dict[int, dict[str, AbstractValue]] = {}
        self._depth: dict[int, int] = {}
        self._loop_vars: dict[int, frozenset[str]] = {}

    # -- queries -----------------------------------------------------------------

    def loop_depth(self, node: ast.AST) -> int:
        """Number of enclosing ``for``/``while`` statements."""
        return self._depth.get(id(node), 0)

    def active_loop_vars(self, node: ast.AST) -> frozenset[str]:
        """Names bound by ``for`` targets enclosing ``node``."""
        return self._loop_vars.get(id(node), frozenset())

    def value_of(self, node: ast.AST) -> AbstractValue:
        """Abstract value of an expression at its program point."""
        env = self._env_at.get(id(node), {})
        return self._infer(node, env)

    def is_numpy_name(self, node: ast.AST) -> bool:
        """Whether ``node`` is a bare reference to the numpy module."""
        return isinstance(node, ast.Name) and node.id in self._numpy_aliases

    # -- abstract interpretation ---------------------------------------------------

    def _infer(self, node: ast.AST, env: dict[str, AbstractValue]) -> AbstractValue:
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AbstractValue(KIND_SCALAR, "int")
            if isinstance(node.value, int):
                return AbstractValue(KIND_SCALAR, "int")
            if isinstance(node.value, float):
                return AbstractValue(KIND_SCALAR, None)
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left, env)
            right = self._infer(node.right, env)
            if KIND_NDARRAY in (left.kind, right.kind):
                return AbstractValue(
                    KIND_NDARRAY, _promote(left.dtype, right.dtype)
                )
            if KIND_TENSOR in (left.kind, right.kind):
                return AbstractValue(KIND_TENSOR)
            return UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, env)
        if isinstance(node, ast.Subscript):
            base = self._infer(node.value, env)
            if base.kind == KIND_NDARRAY:
                return AbstractValue(KIND_NDARRAY, base.dtype)
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                return self._infer(node.value, env)
            if node.attr == "data":
                base = self._infer(node.value, env)
                if base.kind == KIND_TENSOR:
                    return AbstractValue(KIND_NDARRAY)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            body = self._infer(node.body, env)
            orelse = self._infer(node.orelse, env)
            return body if body == orelse else UNKNOWN
        if isinstance(node, (ast.List, ast.ListComp, ast.Tuple)):
            return AbstractValue(KIND_LIST)
        return UNKNOWN

    def _infer_call(
        self, node: ast.Call, env: dict[str, AbstractValue]
    ) -> AbstractValue:
        func = node.func
        dtype_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "dtype"), None
        )
        # numpy module functions: np.<ctor>(...)
        if isinstance(func, ast.Attribute) and self.is_numpy_name(func.value):
            name = func.attr
            if name in ("float32", "float64"):
                return AbstractValue(KIND_SCALAR, name)
            if name in _NDARRAY_CTORS:
                dtype = dtype_of_node(dtype_kw)
                if dtype is None and dtype_kw is None:
                    if name in _DEFAULT_F64_CTORS:
                        dtype = "float64"
                    elif name in ("argsort", "argpartition"):
                        dtype = "int"
                return AbstractValue(KIND_NDARRAY, dtype)
            return UNKNOWN
        # methods on an inferred base value
        if isinstance(func, ast.Attribute):
            base = self._infer(func.value, env)
            if func.attr == "astype":
                arg = dtype_kw if dtype_kw is not None else (
                    node.args[0] if node.args else None
                )
                return AbstractValue(KIND_NDARRAY, dtype_of_node(arg))
            if base.kind == KIND_NDARRAY:
                if func.attr == "tolist":
                    return AbstractValue(KIND_LIST)
                if func.attr == "item":
                    return AbstractValue(KIND_SCALAR, base.dtype)
                if func.attr in _PRESERVING_METHODS:
                    return AbstractValue(KIND_NDARRAY, base.dtype)
            return UNKNOWN
        if isinstance(func, ast.Name):
            if func.id == "Tensor":
                return AbstractValue(KIND_TENSOR)
            if func.id == "float":
                return AbstractValue(KIND_SCALAR, None)
            if func.id in ("list", "sorted"):
                return AbstractValue(KIND_LIST)
            if func.id in ("len", "int"):
                return AbstractValue(KIND_SCALAR, "int")
        return UNKNOWN


class _Analyzer:
    """Single forward walk maintaining (env, loop depth, loop vars)."""

    def __init__(self, facts: FunctionFacts):
        self.facts = facts
        self.env: dict[str, AbstractValue] = {}
        self.depth = 0
        self.loop_vars: list[str] = []

    # -- statement dispatch --------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        self._record(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Separate code unit: bind the name, do not descend.
            self.env[stmt.name] = UNKNOWN
            return
        if isinstance(stmt, ast.Assign):
            value = self.facts._infer(stmt.value, self.env)
            for target in stmt.targets:
                self._bind(target, value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.facts._infer(stmt.value, self.env)
            else:
                value = _value_from_annotation(stmt.annotation)
            self._bind(stmt.target, value)
            return
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, UNKNOWN)
                value = self.facts._infer(stmt.value, self.env)
                if KIND_NDARRAY in (current.kind, value.kind):
                    self.env[stmt.target.id] = AbstractValue(
                        KIND_NDARRAY, _promote(current.dtype, value.dtype)
                    )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
            return
        if isinstance(stmt, ast.While):
            self._visit_loop_body(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self._record(handler)
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        # Expression statements, return, raise, etc.: effects recorded only.

    def _visit_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        iterated = self.facts._infer(stmt.iter, self.env)
        if iterated.kind == KIND_NDARRAY:
            element = AbstractValue(KIND_NDARRAY, iterated.dtype)
        else:
            element = UNKNOWN
        names = _target_names(stmt.target)
        for name in names:
            self.env[name] = element if len(names) == 1 else UNKNOWN
        self.loop_vars.extend(names)
        self._visit_loop_body(stmt.body)
        del self.loop_vars[len(self.loop_vars) - len(names):]
        self.run(stmt.orelse)

    def _visit_loop_body(self, body: list[ast.stmt]) -> None:
        self.depth += 1
        # Two passes: the first collects in-loop definitions, the second
        # records environments in which those definitions have reached
        # uses earlier in the body (next-iteration semantics).
        self.run(body)
        self.run(body)
        self.depth -= 1

    # -- helpers ---------------------------------------------------------------

    def _bind(self, target: ast.expr, value: AbstractValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, UNKNOWN)
        # Attribute / Subscript stores do not create local bindings.

    def _record(self, stmt: ast.AST) -> None:
        """Snapshot the environment for every expression in ``stmt``.

        Nested ``def``/``class`` bodies are opaque: they are separate code
        units (see :func:`iter_code_units`) with their own facts.
        """
        snapshot = dict(self.env)
        depth = self.depth
        loop_vars = frozenset(self.loop_vars)
        for node in _shallow_walk(stmt):
            self.facts._env_at[id(node)] = snapshot
            self.facts._depth[id(node)] = depth
            self.facts._loop_vars[id(node)] = loop_vars


def _shallow_walk(root: ast.AST):
    """Yield ``root`` and descendants, not crossing into nested code units.

    A nested ``def`` or ``class`` statement is yielded itself (so rules can
    see it exists) but its body is not traversed.
    """
    yield root
    if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_unit_nodes(unit: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module):
    """All AST nodes belonging to ``unit`` itself (nested units excluded)."""
    for stmt in unit.body:
        yield from _shallow_walk(stmt)


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _value_from_annotation(annotation: ast.expr | None) -> AbstractValue:
    """Abstract value promised by a parameter/variable annotation."""
    if annotation is None:
        return UNKNOWN
    text = ast.unparse(annotation) if hasattr(ast, "unparse") else ""
    if "ndarray" in text:
        return AbstractValue(KIND_NDARRAY)
    if text.endswith("Tensor") or text == "Tensor":
        return AbstractValue(KIND_TENSOR)
    return UNKNOWN


def numpy_aliases(tree: ast.Module) -> frozenset[str]:
    """Local names bound to the numpy module by top-level imports."""
    aliases = {"np", "numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return frozenset(aliases)


def analyze(
    unit: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    aliases: frozenset[str] | None = None,
) -> FunctionFacts:
    """Analyse one code unit and return its :class:`FunctionFacts`.

    For a function, parameters annotated as ndarrays/Tensors seed the
    environment; ``self`` is left unknown.
    """
    facts = FunctionFacts(aliases or frozenset({"np", "numpy"}))
    analyzer = _Analyzer(facts)
    if isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = unit.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            analyzer.env[arg.arg] = _value_from_annotation(arg.annotation)
    analyzer.run(unit.body)
    return facts


def iter_code_units(
    tree: ast.Module,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Module]:
    """The module body plus every (possibly nested) function definition."""
    units: list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Module] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            units.append(node)
    return units
