"""Static analysis for the reproduction: lint rules + graphs + shape checking.

Complementary passes keep the embedding pipeline's invariants true as
the codebase grows:

- an **AST lint** (:mod:`repro.analysis.rules` driven by
  :mod:`repro.analysis.engine`) enforcing float32 dtype discipline,
  autograd-safe tensor usage, centralised seeded randomness, and API
  hygiene, with ``# repro: noqa[RULE]`` suppressions and a committed
  baseline so CI fails only on *new* violations;
- a **dataflow engine** (:mod:`repro.analysis.dataflow`) — intraprocedural
  reaching-definitions with loop context — powering the REP5xx hot-path
  performance rules (:mod:`repro.analysis.perf_rules`);
- a **project import/call graph** (:mod:`repro.analysis.graph`) powering
  the interprocedural REP6xx gradient-flow rules
  (:mod:`repro.analysis.grad_rules`), the REP7xx concurrency /
  process-safety rules (:mod:`repro.analysis.concurrency`,
  ``repro racecheck``), the REP8xx array-contract rules
  (:mod:`repro.analysis.arrays`, ``repro arraycheck``), and the
  architecture-contract checker (:mod:`repro.analysis.contract`,
  ``repro archcheck``);
- a **shape/dtype abstract interpreter**
  (:mod:`repro.analysis.shapecheck`) that propagates symbolic
  ``(shape, dtype)`` through the dual-tower layer stack and rejects
  mis-sized configurations before any training run starts.

Entry points: ``repro lint`` / ``repro archcheck`` / ``repro shapecheck``
(CLI) and ``tools/run_lint.py`` (CI wrapper).
"""

from repro.analysis.baseline import (
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.contract import (
    ArchContract,
    check_contract,
    layer_of,
    load_contract,
)
from repro.analysis.engine import iter_python_files, lint_paths, lint_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.graph import (
    CallGraph,
    ImportGraph,
    ProjectContext,
    build_import_graph,
    module_name_for_path,
)
from repro.analysis.reporters import render_json, render_text, summarize
from repro.analysis.rules import (
    PROJECT_RULES,
    RULES,
    LintContext,
    LintRule,
    ProjectRule,
)

# Importing the rule modules registers their rules as a side effect.
from repro.analysis import arrays as _array_rules  # noqa: F401
from repro.analysis import concurrency as _concurrency_rules  # noqa: F401
from repro.analysis import grad_rules as _grad_rules  # noqa: F401
from repro.analysis import perf_rules as _perf_rules  # noqa: F401
from repro.analysis.shapecheck import (
    AbstractTensor,
    DualTowerSpec,
    ShapeError,
    ShapeReport,
    check_dual_tower,
)

__all__ = [
    "AbstractTensor",
    "ArchContract",
    "CallGraph",
    "DualTowerSpec",
    "Finding",
    "ImportGraph",
    "LintContext",
    "LintRule",
    "PROJECT_RULES",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "Severity",
    "ShapeError",
    "ShapeReport",
    "build_import_graph",
    "check_contract",
    "check_dual_tower",
    "iter_python_files",
    "layer_of",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_contract",
    "module_name_for_path",
    "partition_findings",
    "render_json",
    "render_text",
    "summarize",
    "write_baseline",
]
