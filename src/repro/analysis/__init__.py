"""Static analysis for the reproduction: lint rules + shape checking.

Two complementary passes keep the embedding pipeline's invariants true as
the codebase grows:

- an **AST lint** (:mod:`repro.analysis.rules` driven by
  :mod:`repro.analysis.engine`) enforcing float32 dtype discipline,
  autograd-safe tensor usage, centralised seeded randomness, and API
  hygiene, with ``# repro: noqa[RULE]`` suppressions and a committed
  baseline so CI fails only on *new* violations;
- a **shape/dtype abstract interpreter**
  (:mod:`repro.analysis.shapecheck`) that propagates symbolic
  ``(shape, dtype)`` through the dual-tower layer stack and rejects
  mis-sized configurations before any training run starts.

Entry points: ``repro lint`` / ``repro shapecheck`` (CLI) and
``tools/run_lint.py`` (CI wrapper).
"""

from repro.analysis.baseline import (
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.engine import iter_python_files, lint_paths, lint_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_text, summarize
from repro.analysis.rules import RULES, LintContext, LintRule
from repro.analysis.shapecheck import (
    AbstractTensor,
    DualTowerSpec,
    ShapeError,
    ShapeReport,
    check_dual_tower,
)

__all__ = [
    "AbstractTensor",
    "DualTowerSpec",
    "Finding",
    "LintContext",
    "LintRule",
    "RULES",
    "Severity",
    "ShapeError",
    "ShapeReport",
    "check_dual_tower",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "partition_findings",
    "render_json",
    "render_text",
    "summarize",
    "write_baseline",
]
