"""Finding reporters: grouped text for humans, JSON for tooling."""

from __future__ import annotations

import json
from collections import OrderedDict
from collections.abc import Sequence

from repro.analysis.findings import Finding, Severity

__all__ = ["render_json", "render_text", "summarize"]


def summarize(findings: Sequence[Finding]) -> dict[str, int]:
    """Counts by severity plus the total."""
    errors = sum(1 for f in findings if f.severity == Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity == Severity.WARNING)
    return {"total": len(findings), "errors": errors, "warnings": warnings}


def render_text(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
) -> str:
    """Human-readable report, findings grouped by file.

    ``baselined`` findings are not listed individually; only their count
    appears in the footer, keeping the report focused on what is new.
    """
    if not findings:
        footer = "no new findings"
        if baselined:
            footer += f" ({len(baselined)} baselined)"
        return footer
    by_file: OrderedDict[str, list[Finding]] = OrderedDict()
    for finding in findings:
        by_file.setdefault(finding.path, []).append(finding)
    blocks: list[str] = []
    for path, group in by_file.items():
        lines = [path]
        for f in group:
            lines.append(
                f"  {f.line}:{f.col}  {f.severity:7s} {f.rule}  {f.message}"
            )
        blocks.append("\n".join(lines))
    counts = summarize(findings)
    footer = (
        f"{counts['total']} new finding(s): "
        f"{counts['errors']} error(s), {counts['warnings']} warning(s)"
    )
    if baselined:
        footer += f"; {len(baselined)} baselined finding(s) suppressed"
    blocks.append(footer)
    return "\n\n".join(blocks)


def render_json(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
) -> str:
    """Machine-readable report: summary plus one record per new finding."""
    document = {
        "version": 1,
        "summary": {**summarize(findings), "baselined": len(baselined)},
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(document, indent=2)
