"""Whole-project import/call graph over the ``repro`` package.

Three structures are built from a set of parsed source files:

- :class:`ImportGraph` — one node per module (dotted name derived from
  the ``repro/...`` path tail), with resolved **import edges** (``import
  x`` / ``from x import y``, relative imports included) and **call
  edges** (``alias.attr(...)`` through an imported module).  Edges know
  whether they are *runtime* (module import time) or typing-only
  (guarded by ``if TYPE_CHECKING:``), and the graph can report import
  cycles (strongly connected components over runtime edges).
- :class:`CallGraph` — a function-level graph keyed by
  ``(module, qualname)``, resolving ``self.method(...)`` (through the
  project class hierarchy), module-level ``helper(...)`` calls, and
  cross-module ``mod.func(...)`` / from-imported ``func(...)`` calls.
  Calls through instance attributes (``self.child(x)`` where ``child``
  is a sub-module object) are not resolvable statically and are skipped.
- :class:`ProjectContext` — the bundle handed to project-scoped lint
  rules: parsed modules plus lazily-built import and call graphs.

The architecture-contract checker (:mod:`repro.analysis.contract`) and
the interprocedural gradient-flow rule (REP602) consume these.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.rules import module_tail

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ImportEdge",
    "ImportGraph",
    "ModuleInfo",
    "ProjectContext",
    "build_import_graph",
    "module_name_for_path",
]


def module_name_for_path(path: str) -> str:
    """Dotted module name from a source path's ``repro/...`` tail.

    ``src/repro/index/pq.py`` → ``repro.index.pq``; package
    ``__init__.py`` files name the package itself.  Paths without a
    ``repro/`` component fall back to their full slash-to-dot form so
    fixture trees under any root still get distinct, stable names.
    """
    tail = module_tail(path)
    if tail.endswith(".py"):
        tail = tail[: -len(".py")]
    parts = [p for p in tail.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One resolved project-internal dependency."""

    src: str  #: importing module (dotted)
    dst: str  #: imported module (dotted)
    lineno: int
    runtime: bool  #: False when guarded by ``if TYPE_CHECKING:``
    kind: str  #: ``"import"`` or ``"call"``


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str
    path: str
    tree: ast.Module
    source: str
    lines: tuple[str, ...] = ()
    is_package: bool = False


@dataclass(frozen=True)
class _Binding:
    """What a local name refers to after an import statement."""

    module: str  #: project module the name (or its owner) lives in
    attr: str | None  #: None when the name *is* the module


class ImportGraph:
    """Module nodes + resolved project-internal edges."""

    def __init__(self, modules: dict[str, ModuleInfo], edges: list[ImportEdge]):
        self.modules = modules
        self.edges = edges

    def runtime_imports(self, src: str) -> set[str]:
        """Modules ``src`` depends on at import/run time (excluding itself)."""
        return {
            e.dst
            for e in self.edges
            if e.src == src and e.runtime and e.dst != src
        }

    def import_cycles_with_lines(
        self,
    ) -> list[tuple[list[str], int, str]]:
        """Cycles anchored to a source location for reporting.

        Each entry is ``(members, lineno, path)`` where the line is the
        first member's first runtime import of another member.
        """
        anchored: list[tuple[list[str], int, str]] = []
        for members in self.find_cycles():
            member_set = set(members)
            anchor = members[0]
            lineno = 1
            for edge in self.edges:
                if (
                    edge.src == anchor
                    and edge.dst in member_set
                    and edge.kind == "import"
                    and edge.runtime
                ):
                    lineno = edge.lineno
                    break
            anchored.append((members, lineno, self.modules[anchor].path))
        return anchored

    def find_cycles(self) -> list[list[str]]:
        """Import cycles: SCCs of size > 1 (plus self-loops), sorted.

        Only runtime ``import``-kind edges participate — a typing-only
        back-reference is not a load-time cycle.
        """
        adjacency: dict[str, set[str]] = {name: set() for name in self.modules}
        for edge in self.edges:
            if edge.kind != "import" or not edge.runtime:
                continue
            if edge.src in adjacency and edge.dst in adjacency:
                adjacency[edge.src].add(edge.dst)
        return _strongly_connected_cycles(adjacency)


def _strongly_connected_cycles(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCC, returning only components that form cycles."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative Tarjan to survive deep graphs without recursion limits.
        work: list[tuple[str, list[str]]] = [(node, sorted(adjacency[node]))]
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, neighbours = work[-1]
            advanced = False
            while neighbours:
                nxt = neighbours.pop(0)
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(adjacency[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[current] = min(lowlink[current], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1 or current in adjacency[current]:
                    cycles.append(sorted(component))

    for name in sorted(adjacency):
        if name not in index:
            strongconnect(name)
    return sorted(cycles)


class _ModuleImportVisitor:
    """Resolve one module's imports to project-internal edges + bindings."""

    def __init__(self, module: ModuleInfo, known: set[str]):
        self.module = module
        self.known = known
        self.edges: list[ImportEdge] = []
        self.bindings: dict[str, _Binding] = {}

    def collect(self) -> None:
        self._walk(self.module.tree.body, runtime=True)

    def _walk(self, body: list[ast.stmt], runtime: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                self._handle_import(stmt, runtime)
            elif isinstance(stmt, ast.ImportFrom):
                self._handle_import_from(stmt, runtime)
            elif isinstance(stmt, ast.If):
                guard_typing = _is_type_checking_test(stmt.test)
                self._walk(stmt.body, runtime=runtime and not guard_typing)
                self._walk(stmt.orelse, runtime=runtime)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Deferred, but still a runtime dependency once called.
                self._walk(stmt.body, runtime=runtime)
            elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try)):
                inner: list[ast.stmt] = list(getattr(stmt, "body", []))
                for handler in getattr(stmt, "handlers", []):
                    inner.extend(handler.body)
                inner.extend(getattr(stmt, "orelse", []))
                inner.extend(getattr(stmt, "finalbody", []))
                self._walk(inner, runtime=runtime)
            elif isinstance(stmt, ast.ClassDef):
                self._walk(stmt.body, runtime=runtime)

    def _handle_import(self, stmt: ast.Import, runtime: bool) -> None:
        for alias in stmt.names:
            target = self._resolve(alias.name)
            if target is None:
                continue
            self._add_edge(target, stmt.lineno, runtime)
            local = alias.asname or alias.name.split(".")[0]
            if alias.asname or "." not in alias.name:
                self.bindings[local] = _Binding(module=target, attr=None)

    def _handle_import_from(self, stmt: ast.ImportFrom, runtime: bool) -> None:
        base = self._resolve_from_base(stmt)
        if base is None:
            return
        for alias in stmt.names:
            if alias.name == "*":
                self._add_edge(base, stmt.lineno, runtime)
                continue
            submodule = f"{base}.{alias.name}"
            local = alias.asname or alias.name
            if submodule in self.known:
                self._add_edge(submodule, stmt.lineno, runtime)
                self.bindings[local] = _Binding(module=submodule, attr=None)
            else:
                self._add_edge(base, stmt.lineno, runtime)
                self.bindings[local] = _Binding(module=base, attr=alias.name)

    def _resolve_from_base(self, stmt: ast.ImportFrom) -> str | None:
        if stmt.level == 0:
            return self._resolve(stmt.module or "")
        parts = self.module.name.split(".")
        anchor = parts if self.module.is_package else parts[:-1]
        up = stmt.level - 1
        if up > len(anchor):
            return None
        anchor = anchor[: len(anchor) - up] if up else anchor
        dotted = ".".join(anchor + (stmt.module or "").split("."))
        return self._resolve(dotted.rstrip("."))

    def _resolve(self, dotted: str) -> str | None:
        """Longest known project module that is ``dotted`` or a prefix of it."""
        parts = dotted.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.known:
                return candidate
            parts.pop()
        return None

    def _add_edge(self, dst: str, lineno: int, runtime: bool) -> None:
        self.edges.append(
            ImportEdge(
                src=self.module.name,
                dst=dst,
                lineno=lineno,
                runtime=runtime,
                kind="import",
            )
        )

    def call_edges(self) -> list[ImportEdge]:
        """Attribute-call edges: ``alias.attr(...)`` through a bound module."""
        edges: list[ImportEdge] = []
        for node in ast.walk(self.module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.bindings
            ):
                binding = self.bindings[func.value.id]
                if binding.attr is None:
                    edges.append(
                        ImportEdge(
                            src=self.module.name,
                            dst=binding.module,
                            lineno=node.lineno,
                            runtime=True,
                            kind="call",
                        )
                    )
        return edges


def _terminal_name(node: ast.expr) -> str | None:
    """Last component of a Name/Attribute chain (``nn.Module`` → ``Module``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _parse_modules(sources: list[tuple[str, str]]) -> dict[str, ModuleInfo]:
    modules: dict[str, ModuleInfo] = {}
    for path, source in sources:
        posix = path.replace("\\", "/")
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError:
            continue  # the per-file lint reports REP000 for this file
        name = module_name_for_path(posix)
        modules[name] = ModuleInfo(
            name=name,
            path=posix,
            tree=tree,
            source=source,
            lines=tuple(source.splitlines()),
            is_package=posix.endswith("/__init__.py"),
        )
    return modules


def build_import_graph(sources: list[tuple[str, str]]) -> ImportGraph:
    """Build the project import graph from ``(path, source)`` pairs."""
    modules = _parse_modules(sources)
    known = set(modules)
    edges: list[ImportEdge] = []
    for module in modules.values():
        visitor = _ModuleImportVisitor(module, known)
        visitor.collect()
        edges.extend(visitor.edges)
        edges.extend(visitor.call_edges())
    return ImportGraph(modules, edges)


# -- function-level call graph ---------------------------------------------------


@dataclass
class FunctionInfo:
    """One function/method definition in the project."""

    module: str
    qualname: str  #: ``Class.method`` or bare function name
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner_class: str | None = None


@dataclass
class _ClassInfo:
    module: str
    name: str
    base_keys: list[tuple[str, str]] = field(default_factory=list)
    base_names: list[str] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    #: instance attributes assigned a constructor call (``self.x = Cls(...)``),
    #: mapped to the candidate project class key the value was built from.
    attr_types: dict[str, tuple[str, str]] = field(default_factory=dict)


class CallGraph:
    """Function-level call graph with a project class hierarchy."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        self.edges: dict[tuple[str, str], set[tuple[str, str]]] = {}
        self._classes: dict[tuple[str, str], _ClassInfo] = {}
        self._bindings: dict[str, dict[str, _Binding]] = {}
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        known = set(self.modules)
        for module in self.modules.values():
            visitor = _ModuleImportVisitor(module, known)
            visitor.collect()
            self._bindings[module.name] = visitor.bindings
            self._collect_defs(module)
        for info in list(self.functions.values()):
            self.edges[(info.module, info.qualname)] = self._resolve_calls(info)

    def _collect_defs(self, module: ModuleInfo) -> None:
        def visit(body: list[ast.stmt], class_name: str | None) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = (
                        f"{class_name}.{stmt.name}" if class_name else stmt.name
                    )
                    self.functions[(module.name, qualname)] = FunctionInfo(
                        module=module.name,
                        qualname=qualname,
                        node=stmt,
                        owner_class=class_name,
                    )
                    if class_name:
                        self._classes[(module.name, class_name)].methods.add(
                            stmt.name
                        )
                elif isinstance(stmt, ast.ClassDef):
                    info = _ClassInfo(module=module.name, name=stmt.name)
                    for base in stmt.bases:
                        key = self._resolve_class_base(module.name, base)
                        if key is not None:
                            info.base_keys.append(key)
                        terminal = _terminal_name(base)
                        if terminal:
                            info.base_names.append(terminal)
                    self._classes[(module.name, stmt.name)] = info
                    self._collect_attr_types(module.name, stmt, info)
                    visit(stmt.body, stmt.name)

        visit(module.tree.body, None)

    def _collect_attr_types(
        self, module: str, cls: ast.ClassDef, info: _ClassInfo
    ) -> None:
        """Infer ``self.<attr>`` instance types from constructor assignments.

        Any ``self.x = Cls(...)`` in any method (conditional expressions
        included) records a *candidate* class key for ``x``; unknown keys
        simply fail the later method lookup, so over-recording is safe.
        """
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                candidates = [node.value]
                if isinstance(node.value, ast.IfExp):
                    candidates = [node.value.body, node.value.orelse]
                for value in candidates:
                    if not isinstance(value, ast.Call):
                        continue
                    key = self._resolve_ctor(module, value.func)
                    if key is not None:
                        info.attr_types[target.attr] = key
                        break

    def _resolve_ctor(
        self, module: str, func: ast.expr
    ) -> tuple[str, str] | None:
        """Candidate class key of a constructor expression, if project-local."""
        bindings = self._bindings.get(module, {})
        if isinstance(func, ast.Name):
            binding = bindings.get(func.id)
            if binding is not None and binding.attr is not None:
                return (binding.module, binding.attr)
            return (module, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            binding = bindings.get(func.value.id)
            if binding is not None and binding.attr is None:
                return (binding.module, func.attr)
        return None

    def _attr_class(
        self, class_key: tuple[str, str], attr: str
    ) -> tuple[str, str] | None:
        """Inferred class of ``self.<attr>`` on ``class_key`` or its bases."""
        seen: set[tuple[str, str]] = set()
        queue = [class_key]
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self._classes.get(key)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.base_keys)
        return None

    def _resolve_class_base(
        self, module: str, base: ast.expr
    ) -> tuple[str, str] | None:
        bindings = self._bindings.get(module, {})
        if isinstance(base, ast.Name):
            binding = bindings.get(base.id)
            if binding is not None and binding.attr is not None:
                return (binding.module, binding.attr)
            return (module, base.id)
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            binding = bindings.get(base.value.id)
            if binding is not None and binding.attr is None:
                return (binding.module, base.attr)
        return None

    def _resolve_calls(self, info: FunctionInfo) -> set[tuple[str, str]]:
        callees: set[tuple[str, str]] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            key = self.resolve_call(info, node)
            if key is not None:
                callees.add(key)
        return callees

    def resolve_call(
        self, info: FunctionInfo, node: ast.Call
    ) -> tuple[str, str] | None:
        """Project function key one call inside ``info`` dispatches to.

        Resolves bare/from-imported names, ``mod.func(...)`` through
        module bindings, ``self.method(...)`` through the class
        hierarchy, and ``self.attr.method(...)`` through constructor-
        inferred instance-attribute types.  ``None`` when the callee is
        not statically resolvable to a project function.
        """
        bindings = self._bindings.get(info.module, {})
        func = node.func
        if isinstance(func, ast.Name):
            binding = bindings.get(func.id)
            if binding is not None and binding.attr is not None:
                key = (binding.module, binding.attr)
                if key in self.functions:
                    return key
            elif (info.module, func.id) in self.functions:
                return (info.module, func.id)
            return None
        if isinstance(func, ast.Attribute):
            root = func.value
            if isinstance(root, ast.Name) and root.id == "self":
                if info.owner_class is not None:
                    return self._lookup_method(
                        (info.module, info.owner_class), func.attr
                    )
                return None
            if (
                isinstance(root, ast.Attribute)
                and isinstance(root.value, ast.Name)
                and root.value.id == "self"
                and info.owner_class is not None
            ):
                attr_key = self._attr_class(
                    (info.module, info.owner_class), root.attr
                )
                if attr_key is not None:
                    return self._lookup_method(attr_key, func.attr)
                return None
            if isinstance(root, ast.Name) and root.id in bindings:
                binding = bindings[root.id]
                if binding.attr is None:
                    key = (binding.module, func.attr)
                    if key in self.functions:
                        return key
        return None

    def resolve_callable(
        self, info: FunctionInfo, node: ast.expr
    ) -> tuple[str, str] | None:
        """Project function a callable *reference* points at (not a call).

        Handles ``self.method`` (through the class hierarchy), bare or
        from-imported names, and ``mod.func`` — the shapes executor
        ``submit(...)`` and ``Thread/Process(target=...)`` receive.
        """
        bindings = self._bindings.get(info.module, {})
        if isinstance(node, ast.Name):
            binding = bindings.get(node.id)
            if binding is not None and binding.attr is not None:
                key = (binding.module, binding.attr)
                if key in self.functions:
                    return key
            if (info.module, node.id) in self.functions:
                return (info.module, node.id)
            return None
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "self" and info.owner_class is not None:
                return self._lookup_method(
                    (info.module, info.owner_class), node.attr
                )
            binding = bindings.get(node.value.id)
            if binding is not None and binding.attr is None:
                key = (binding.module, node.attr)
                if key in self.functions:
                    return key
        return None

    def _lookup_method(
        self, class_key: tuple[str, str], method: str
    ) -> tuple[str, str] | None:
        """Find ``method`` on the class or (transitively) its project bases."""
        seen: set[tuple[str, str]] = set()
        queue = [class_key]
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self._classes.get(key)
            if info is None:
                continue
            if method in info.methods:
                return (key[0], f"{key[1]}.{method}")
            queue.extend(info.base_keys)
        return None

    # -- queries ---------------------------------------------------------------

    def is_module_subclass(self, module: str, class_name: str) -> bool:
        """Whether the class (transitively) inherits an ``nn`` ``Module``."""
        seen: set[tuple[str, str]] = set()
        queue = [(module, class_name)]
        first = True
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            # A resolved base literally named ``Module`` is the root marker
            # (the class itself being named Module does not make it one).
            if key[1] == "Module" and not first:
                return True
            first = False
            info = self._classes.get(key)
            if info is None:
                continue
            if "Module" in info.base_names:
                return True
            queue.extend(info.base_keys)
        return False

    def reachable_from(
        self, seeds: set[tuple[str, str]]
    ) -> set[tuple[str, str]]:
        """Transitive closure of the call edges starting at ``seeds``."""
        reached = set(seeds)
        queue = list(seeds)
        while queue:
            key = queue.pop(0)
            for callee in self.edges.get(key, ()):
                if callee not in reached:
                    reached.add(callee)
                    queue.append(callee)
        return reached


class ProjectContext:
    """Everything a project-scoped lint rule needs for one run."""

    def __init__(self, sources: list[tuple[str, str]]):
        self.modules = _parse_modules(sources)
        self._import_graph: ImportGraph | None = None
        self._call_graph: CallGraph | None = None

    @classmethod
    def from_sources(cls, sources: list[tuple[str, str]]) -> "ProjectContext":
        return cls(sources)

    @property
    def import_graph(self) -> ImportGraph:
        if self._import_graph is None:
            known = set(self.modules)
            edges: list[ImportEdge] = []
            for module in self.modules.values():
                visitor = _ModuleImportVisitor(module, known)
                visitor.collect()
                edges.extend(visitor.edges)
                edges.extend(visitor.call_edges())
            self._import_graph = ImportGraph(self.modules, edges)
        return self._import_graph

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = CallGraph(self.modules)
        return self._call_graph
