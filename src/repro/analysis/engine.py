"""Lint driver: walk files, parse, run rules, honour suppressions.

The engine parses each Python file once, hands the AST to every rule whose
``applies_to`` matches the path, filters findings through ``# repro:
noqa[RULE]`` line suppressions, and stamps each surviving finding with a
content-based fingerprint (see :mod:`repro.analysis.findings`) so the
baseline mechanism is robust to line-number churn.

Two rule shapes run side by side: per-file :class:`~repro.analysis.rules.
LintRule` instances see one parsed file at a time, while project-scoped
:class:`~repro.analysis.rules.ProjectRule` instances (e.g. the
interprocedural REP602 gradient-flow check) see a
:class:`~repro.analysis.graph.ProjectContext` spanning the whole run.
``lint_source`` builds a single-file project context so fixtures exercise
project rules too; ``lint_paths`` builds one context over every file in
the run.  Both shapes share the noqa/fingerprint pipeline.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.findings import Finding, Severity, compute_fingerprint
from repro.analysis.graph import ProjectContext
from repro.analysis.rules import (
    PROJECT_RULES,
    RULES,
    LintContext,
    LintRule,
    ProjectRule,
    module_tail,
)

__all__ = ["iter_python_files", "lint_paths", "lint_source"]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[REP101,REP301]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


def _noqa_for_line(line: str) -> frozenset[str] | None:
    """Suppressed rule ids on ``line``.

    Returns ``None`` when the line has no noqa marker, an empty frozenset
    for a blanket ``# repro: noqa``, and the named ids otherwise.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def _is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    suppressed = _noqa_for_line(lines[finding.line - 1])
    if suppressed is None:
        return False
    return not suppressed or finding.rule in suppressed


def _select_rules(
    select: Iterable[str] | None,
) -> tuple[list[LintRule], list[ProjectRule]]:
    """Resolve ``--select`` tokens against both rule registries.

    A token may name or prefix a per-file rule, a project rule, or both
    (``REP`` matches everything); it is an error only when it matches
    neither registry.
    """
    if select is None:
        return list(RULES.values()), list(PROJECT_RULES.values())
    chosen: set[str] = set()
    for rule_id in select:
        wanted = rule_id.strip().upper()
        matched = [
            known
            for known in (*RULES, *PROJECT_RULES)
            if known == wanted or known.startswith(wanted)
        ]
        if not matched:
            raise KeyError(f"unknown rule id or prefix: {rule_id!r}")
        chosen.update(matched)
    file_rules = [rule for known, rule in RULES.items() if known in chosen]
    project_rules = [
        rule for known, rule in PROJECT_RULES.items() if known in chosen
    ]
    return file_rules, project_rules


def _fingerprint_all(findings: list[Finding], lines_by_path: dict[str, Sequence[str]]) -> list[Finding]:
    """Stamp content fingerprints, disambiguating identical lines by count."""
    occurrences: Counter[tuple[str, str, str]] = Counter()
    stamped: list[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, ())
        source_line = (
            lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
        )
        # Hash the repro/... module tail, not the as-invoked path, so the
        # same baseline matches runs started from any working directory.
        tail = module_tail(finding.path)
        key = (finding.rule, tail, source_line.strip())
        occurrence = occurrences[key]
        occurrences[key] += 1
        stamped.append(
            finding.with_fingerprint(
                compute_fingerprint(finding.rule, tail, source_line, occurrence)
            )
        )
    return stamped


def _run_file_rules(
    source: str,
    posix: str,
    lines: tuple[str, ...],
    rules: Iterable[LintRule],
) -> list[Finding] | None:
    """Raw (unfiltered) per-file findings, or ``None`` on a syntax error."""
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError:
        return None
    ctx = LintContext(path=posix, tree=tree, source=source, lines=lines)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(posix):
            continue
        findings.extend(rule.check(ctx))
    return findings


def _syntax_error_finding(source: str, posix: str) -> Finding:
    try:
        ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return Finding(
            rule="REP000",
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
        )
    raise AssertionError(f"{posix} parsed cleanly on reparse")


def _run_project_rules(
    rules: Iterable[ProjectRule], sources: list[tuple[str, str]]
) -> list[Finding]:
    """Run project-scoped rules over one shared :class:`ProjectContext`."""
    rules = list(rules)
    if not rules:
        return []
    project = ProjectContext(sources)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check_project(project))
    return findings


def lint_source(
    source: str,
    path: str,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory source string as if it lived at ``path``.

    Findings are noqa-filtered, sorted by location, and fingerprinted.
    Project-scoped rules run against a single-file project context.
    A syntax error yields a single ``REP000`` error finding rather than
    raising, so one broken file cannot hide findings in the rest of a run.
    """
    posix = path.replace("\\", "/")
    lines: tuple[str, ...] = tuple(source.splitlines())
    file_rules, project_rules = _select_rules(select)
    findings = _run_file_rules(source, posix, lines, file_rules)
    if findings is None:
        return _fingerprint_all(
            [_syntax_error_finding(source, posix)], {posix: lines}
        )
    findings.extend(_run_project_rules(project_rules, [(posix, source)]))
    findings = [f for f in findings if not _is_suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return _fingerprint_all(findings, {posix: lines})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deterministic ``.py`` list.

    Directory walks skip ``__pycache__`` and hidden directories/files
    (leading dot) at any depth below the argument; explicitly named files
    are always included.  The result is de-duplicated and sorted so runs
    are stable regardless of argument order or filesystem enumeration.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not candidate.is_file():
                    continue
                relative_parts = candidate.relative_to(path).parts
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in relative_parts
                ):
                    continue
                out.add(candidate)
        elif path.suffix == ".py" and path.is_file():
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _display_path(path: Path) -> str:
    """Posix path relative to the current directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings.

    Per-file rules run file by file; project-scoped rules run once over a
    :class:`ProjectContext` spanning every file in the run, so
    interprocedural findings (REP602) see cross-module call edges.
    """
    file_rules, project_rules = _select_rules(select)
    findings: list[Finding] = []
    sources: list[tuple[str, str]] = []
    lines_by_path: dict[str, Sequence[str]] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        display = _display_path(file_path)
        lines = tuple(source.splitlines())
        sources.append((display, source))
        lines_by_path[display] = lines
        per_file = _run_file_rules(source, display, lines, file_rules)
        if per_file is None:
            per_file = [_syntax_error_finding(source, display)]
        findings.extend(
            f for f in per_file if not _is_suppressed(f, lines)
        )
    findings.extend(
        f
        for f in _run_project_rules(project_rules, sources)
        if not _is_suppressed(f, lines_by_path.get(f.path, ()))
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return _fingerprint_all(findings, lines_by_path)
