"""Lint driver: walk files, parse, run rules, honour suppressions.

The engine parses each Python file once, hands the AST to every rule whose
``applies_to`` matches the path, filters findings through ``# repro:
noqa[RULE]`` line suppressions, and stamps each surviving finding with a
content-based fingerprint (see :mod:`repro.analysis.findings`) so the
baseline mechanism is robust to line-number churn.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.findings import Finding, Severity, compute_fingerprint
from repro.analysis.rules import RULES, LintContext, LintRule, module_tail

__all__ = ["iter_python_files", "lint_paths", "lint_source"]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[REP101,REP301]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


def _noqa_for_line(line: str) -> frozenset[str] | None:
    """Suppressed rule ids on ``line``.

    Returns ``None`` when the line has no noqa marker, an empty frozenset
    for a blanket ``# repro: noqa``, and the named ids otherwise.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def _is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    suppressed = _noqa_for_line(lines[finding.line - 1])
    if suppressed is None:
        return False
    return not suppressed or finding.rule in suppressed


def _select_rules(select: Iterable[str] | None) -> list[LintRule]:
    if select is None:
        return list(RULES.values())
    chosen: list[LintRule] = []
    for rule_id in select:
        wanted = rule_id.strip().upper()
        matched = [
            rule
            for known, rule in RULES.items()
            if known == wanted or known.startswith(wanted)
        ]
        if not matched:
            raise KeyError(f"unknown rule id or prefix: {rule_id!r}")
        chosen.extend(matched)
    # Deduplicate while preserving registry order.
    seen: set[str] = set()
    ordered: list[LintRule] = []
    for rule in RULES.values():
        if rule in chosen and rule.rule_id not in seen:
            seen.add(rule.rule_id)
            ordered.append(rule)
    return ordered


def _fingerprint_all(findings: list[Finding], lines_by_path: dict[str, Sequence[str]]) -> list[Finding]:
    """Stamp content fingerprints, disambiguating identical lines by count."""
    occurrences: Counter[tuple[str, str, str]] = Counter()
    stamped: list[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, ())
        source_line = (
            lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
        )
        # Hash the repro/... module tail, not the as-invoked path, so the
        # same baseline matches runs started from any working directory.
        tail = module_tail(finding.path)
        key = (finding.rule, tail, source_line.strip())
        occurrence = occurrences[key]
        occurrences[key] += 1
        stamped.append(
            finding.with_fingerprint(
                compute_fingerprint(finding.rule, tail, source_line, occurrence)
            )
        )
    return stamped


def lint_source(
    source: str,
    path: str,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory source string as if it lived at ``path``.

    Findings are noqa-filtered, sorted by location, and fingerprinted.
    A syntax error yields a single ``REP000`` error finding rather than
    raising, so one broken file cannot hide findings in the rest of a run.
    """
    posix = path.replace("\\", "/")
    lines: tuple[str, ...] = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        finding = Finding(
            rule="REP000",
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
        )
        return _fingerprint_all([finding], {posix: lines})
    ctx = LintContext(path=posix, tree=tree, source=source, lines=lines)
    findings: list[Finding] = []
    for rule in _select_rules(select):
        if not rule.applies_to(posix):
            continue
        findings.extend(rule.check(ctx))
    findings = [f for f in findings if not _is_suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return _fingerprint_all(findings, {posix: lines})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _display_path(path: Path) -> str:
    """Posix path relative to the current directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, _display_path(file_path), select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
