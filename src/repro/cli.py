"""Command-line interface.

Subcommands cover the full lifecycle a downstream user needs:

- ``generate-kg``   — write a synthetic knowledge graph to JSON.
- ``train``         — train an EmbLookup model over a KG and save it.
- ``lookup``        — query a saved model interactively or one-shot.
- ``evaluate``      — score the model's lookup success on noisy queries.
- ``lint``          — run the repo's static-analysis rules over source trees.
- ``racecheck``     — run only the REP7xx concurrency/process-safety rules.
- ``arraycheck``    — run only the REP8xx array shape/dtype/layout rules.
- ``archcheck``     — enforce the declared architecture contract on imports.
- ``shapecheck``    — statically verify a dual-tower config's shapes/dtypes.
- ``selftest``      — run seeded property diagnostics over the lookup stack.

Example::

    python -m repro generate-kg --entities 2000 --out kg.json
    python -m repro train --kg kg.json --out model/ --epochs 10
    python -m repro lookup --kg kg.json --model model/ germany germoney
    python -m repro evaluate --kg kg.json --model model/ --noise 0.5
    python -m repro lint src/repro --baseline tools/lint_baseline.json
    python -m repro lint src/repro --profile perf
    python -m repro racecheck src/repro --baseline tools/lint_baseline.json
    python -m repro arraycheck src/repro --baseline tools/lint_baseline.json
    python -m repro archcheck src/repro --contract tools/arch_contract.toml
    python -m repro shapecheck --dim 64 --max-length 32
    python -m repro selftest --cases 25 --seed 1
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro import analysis
from repro.core import EmbLookup, EmbLookupConfig
from repro.evaluation.reporting import format_table
from repro.kg import SyntheticKGConfig, generate_kg, load_kg_json, save_kg_json
from repro.text.noise import NoiseModel

__all__ = ["main"]


def _cmd_generate_kg(args: argparse.Namespace) -> int:
    kg = generate_kg(
        SyntheticKGConfig(
            num_entities=args.entities, flavour=args.flavour, seed=args.seed
        )
    )
    save_kg_json(kg, args.out)
    print(f"wrote {kg.num_entities} entities / {kg.num_facts} facts to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    kg = load_kg_json(args.kg)
    config = EmbLookupConfig(
        epochs=args.epochs,
        triplets_per_entity=args.triplets,
        embedding_dim=args.dim,
        compression=args.compression,
        seed=args.seed,
    )
    service = EmbLookup(config)
    print(
        f"training on {kg.num_entities} entities "
        f"({args.triplets} triplets/entity, {args.epochs} epochs)..."
    )
    service.fit(kg)
    service.save(args.out)
    final_loss = service.training_history[-1] if service.training_history else 0.0
    print(f"saved model to {args.out} (final epoch loss {final_loss:.4f})")
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    kg = load_kg_json(args.kg)
    service = EmbLookup.load(args.model, kg)
    queries = args.queries or _read_stdin_queries()
    if not queries:
        print("no queries given", file=sys.stderr)
        return 1
    for query, results in zip(queries, service.lookup_batch(queries, args.k)):
        print(f"{query}:")
        for result in results:
            entity = kg.entity(result.entity_id)
            print(
                f"  {entity.entity_id:12s} {entity.label:32s} "
                f"d={result.distance:.4f}"
            )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    kg = load_kg_json(args.kg)
    service = EmbLookup.load(args.model, kg)
    entities = list(kg.entities())[: args.sample]
    noise = NoiseModel(seed=args.seed)
    rows = []
    for label_kind, queries in (
        ("clean", [e.label for e in entities]),
        ("noisy", [noise.corrupt(e.label) for e in entities]),
    ):
        if label_kind == "noisy" and args.noise <= 0:
            continue
        results = service.lookup_batch(queries, args.k)
        hits = sum(
            1
            for entity, row in zip(entities, results)
            if entity.entity_id in [r.entity_id for r in row]
        )
        rows.append([label_kind, len(queries), hits / len(queries)])
    print(
        format_table(
            ["workload", "queries", f"success@{args.k}"],
            rows,
            title="EmbLookup evaluation",
        )
    )
    return 0


#: ``--profile`` shortcuts onto rule-id prefixes (``all`` = no filter).
_LINT_PROFILES: dict[str, list[str] | None] = {
    "all": None,
    "perf": ["REP5"],
    "grad": ["REP6"],
    "conc": ["REP7"],
    "arrays": ["REP8"],
}


def _cmd_lint(args: argparse.Namespace) -> int:
    """Lint source trees; exit non-zero when new (non-baselined) findings exist."""
    if args.profile and args.select:
        print("--profile and --select are mutually exclusive", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    if args.profile:
        select = _LINT_PROFILES[args.profile]
    try:
        findings = analysis.lint_paths(args.paths, select=select)
    except (FileNotFoundError, KeyError) as exc:
        # str(KeyError) wraps the message in quotes; print the bare text.
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    if args.write_baseline:
        analysis.write_baseline(findings, args.baseline)
        print(f"wrote {len(findings)} finding(s) to baseline {args.baseline}")
        return 0
    baseline = (
        analysis.load_baseline(args.baseline)
        if args.baseline and not args.no_baseline
        else frozenset()
    )
    new, known = analysis.partition_findings(findings, baseline)
    if args.format == "json":
        print(analysis.render_json(new, known))
    else:
        print(analysis.render_text(new, known))
    return 1 if new else 0


def _cmd_racecheck(args: argparse.Namespace) -> int:
    """Run only the REP7xx concurrency/process-safety rules.

    A focused alias for ``repro lint --profile conc`` with ``archcheck``
    exit-code semantics: 0 = no unbaselined REP7xx finding, 1 = at least
    one new finding (a race/deadlock/leak risk landed since the
    baseline), 2 = usage error.  The runtime half of this check is the
    ``REPRO_SANITIZER=1`` lock-order tracker in the test suite.
    """
    try:
        findings = analysis.lint_paths(args.paths, select=["REP7"])
    except FileNotFoundError as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    baseline = (
        analysis.load_baseline(args.baseline)
        if args.baseline and not args.no_baseline
        else frozenset()
    )
    new, known = analysis.partition_findings(findings, baseline)
    if args.format == "json":
        print(analysis.render_json(new, known))
    elif new:
        print(analysis.render_text(new, known))
    else:
        suffix = f" ({len(known)} baselined)" if known else ""
        print(f"racecheck OK: no new REP7xx findings{suffix}")
    return 1 if new else 0


def _cmd_arraycheck(args: argparse.Namespace) -> int:
    """Run only the REP8xx array-contract rules.

    A focused alias for ``repro lint --profile arrays`` with ``archcheck``
    exit-code semantics: 0 = no unbaselined REP8xx finding, 1 = at least
    one new finding (a shape/dtype/layout contract violation or an
    uncontracted public array API landed since the baseline), 2 = usage
    error.  The runtime half of this check is the ``REPRO_ARRAYCHECK=1``
    contract validator in the test suite.
    """
    try:
        findings = analysis.lint_paths(args.paths, select=["REP8"])
    except FileNotFoundError as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    baseline = (
        analysis.load_baseline(args.baseline)
        if args.baseline and not args.no_baseline
        else frozenset()
    )
    new, known = analysis.partition_findings(findings, baseline)
    if args.format == "json":
        print(analysis.render_json(new, known))
    elif new:
        print(analysis.render_text(new, known))
    else:
        suffix = f" ({len(known)} baselined)" if known else ""
        print(f"arraycheck OK: no new REP8xx findings{suffix}")
    return 1 if new else 0


def _archcheck_display_path(path) -> str:
    """Posix path relative to the current directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _cmd_archcheck(args: argparse.Namespace) -> int:
    """Check the import graph against the declared architecture contract.

    Exit codes: 0 = contract holds; 1 = at least one violation (ARC001
    layer violation, ARC002 runtime import cycle, ARC003 undeclared
    layer); 2 = usage error (missing paths, missing/malformed contract).
    """
    try:
        contract = analysis.load_contract(args.contract)
    except FileNotFoundError:
        print(f"contract file not found: {args.contract}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        files = analysis.iter_python_files(args.paths)
    except FileNotFoundError as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    sources = [
        (_archcheck_display_path(f), f.read_text(encoding="utf-8"))
        for f in files
    ]
    graph = analysis.build_import_graph(sources)
    findings = analysis.check_contract(graph, contract)
    if args.format == "json":
        print(analysis.render_json(findings, []))
    elif findings:
        print(analysis.render_text(findings, []))
    else:
        runtime_edges = sum(
            1 for e in graph.edges if e.kind == "import" and e.runtime
        )
        print(
            f"architecture contract OK ({len(graph.modules)} modules, "
            f"{runtime_edges} runtime import edges)"
        )
    return 1 if findings else 0


def _cmd_shapecheck(args: argparse.Namespace) -> int:
    """Statically validate a dual-tower configuration's shapes and dtypes."""
    try:
        config = EmbLookupConfig(
            embedding_dim=args.dim,
            max_length=args.max_length,
            compression=args.compression,
            pq_m=args.pq_m,
        )
        spec = analysis.DualTowerSpec.from_config(
            config,
            alphabet_size=args.alphabet_size,
            cnn_channels=args.channels,
            cnn_layers=args.layers,
            dtype=args.dtype,
            **(
                {"mlp_in": args.mlp_in} if args.mlp_in is not None else {}
            ),
            **(
                {"mlp_hidden": args.mlp_hidden}
                if args.mlp_hidden is not None
                else {}
            ),
        )
        report = analysis.check_dual_tower(spec)
    except (analysis.ShapeError, ValueError) as exc:
        print(f"shapecheck FAILED: {exc}", file=sys.stderr)
        return 1
    print(report.format())
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """Run the embedded property-based diagnostics over the lookup stack.

    Three properties, each over ``--cases`` seeded adversarial stores:
    the blockwise flat scan agrees with the brute-force oracle, a
    sharded index with one dead shard degrades to the exact survivor
    merge with ``partial=True``, and an injected result corruption is
    flagged by the differential comparator (the detectors detect).
    Exit codes: 0 = all properties hold; 1 = a failure (the report
    carries the ``REPRO_SEED``/``REPRO_CASE`` replay line).
    """
    # Lazy import: repro.testing may import every layer it exercises, so
    # the CLI only pays for (and depends on) it when selftest runs.
    from repro import testing
    from repro.index.flat import FlatIndex
    from repro.index.sharded import ShardedIndex

    num_shards = 4
    k = 5
    strategy = testing.VectorStoreStrategy(conditioned=True)

    def survivor_fanin(case, dead):
        """Oracle for the degraded search: flat scan over the surviving
        rows, with local ids mapped back to the striped global ids."""
        surviving = np.flatnonzero(
            np.arange(len(case.vectors)) % num_shards != dead
        )
        reference = FlatIndex(case.dim)
        reference.add(case.vectors[surviving])
        result = reference.search(case.queries, k)
        return (
            np.where(
                result.ids >= 0, surviving[np.maximum(result.ids, 0)], -1
            ),
            result.distances,
        )

    def flat_matches_oracle(case):
        index = FlatIndex(case.dim)
        index.add(case.vectors)
        got = index.search(case.queries, k)
        want = testing.brute_force_topk(case.vectors, case.queries, k)
        testing.assert_valid_topk(got, len(case.vectors), k)
        testing.assert_topk_agrees(got, want, rtol=1e-6, atol=1e-9)

    def dead_shard_degrades_gracefully(case):
        dead = len(case.vectors) % num_shards
        index = ShardedIndex(
            case.dim,
            num_shards,
            factory=FlatIndex,
            fault_hook=testing.FaultPlan.parse(f"s{dead}:c0:drop"),
        )
        try:
            index.add(case.vectors)
            result = index.search(case.queries, k)
        finally:
            index.close()
        assert result.partial and result.failed_shards == (dead,)
        testing.assert_topk_agrees(
            result, survivor_fanin(case, dead), rtol=1e-6, atol=1e-9
        )

    def corruption_is_detected(case):
        index = ShardedIndex(
            case.dim,
            num_shards,
            factory=FlatIndex,
            fault_hook=testing.FaultPlan.parse("s0:*:corrupt"),
        )
        try:
            index.add(case.vectors)
            got = index.search(case.queries, k)
        finally:
            index.close()
        if len(case.vectors) < 2 or k < 2:
            return  # single candidate: mirror-rank mispairing is a no-op
        want = testing.brute_force_topk(case.vectors, case.queries, k)
        try:
            testing.assert_topk_agrees(got, want, rtol=1e-6, atol=1e-9)
        except AssertionError:
            return  # corruption flagged, as required
        # Degenerate stores (all ties) can survive mispairing; accept
        # only when the honest and corrupted scans truly coincide.
        np.testing.assert_allclose(
            got.distances, want[1], rtol=1e-6, atol=1e-9
        )

    properties = [
        flat_matches_oracle,
        dead_shard_degrades_gracefully,
        corruption_is_detected,
    ]
    for prop in properties:
        started = time.monotonic()
        try:
            executed = testing.run_cases(
                prop, strategy, cases=args.cases, seed=args.seed
            )
        except testing.PropertyFailure as failure:
            print(f"selftest FAILED: {failure}", file=sys.stderr)
            return 1
        elapsed = time.monotonic() - started
        print(f"{prop.__name__}: {executed} cases OK ({elapsed:.2f}s)")
    print(f"selftest OK ({len(properties)} properties)")
    return 0


def _read_stdin_queries() -> list[str]:
    if sys.stdin.isatty():
        return []
    return [line.strip() for line in sys.stdin if line.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="EmbLookup reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate-kg", help="generate a synthetic knowledge graph")
    p.add_argument("--entities", type=int, default=2000)
    p.add_argument("--flavour", choices=["wikidata", "dbpedia"], default="wikidata")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate_kg)

    p = sub.add_parser("train", help="train an EmbLookup model")
    p.add_argument("--kg", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--triplets", type=int, default=20)
    p.add_argument("--dim", type=int, default=64)
    p.add_argument("--compression", choices=["pq", "none", "ivfpq"], default="pq")
    p.add_argument("--seed", type=int, default=41)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("lookup", help="query a trained model")
    p.add_argument("--kg", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("queries", nargs="*")
    p.set_defaults(func=_cmd_lookup)

    p = sub.add_parser("evaluate", help="measure lookup success rates")
    p.add_argument("--kg", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--sample", type=int, default=300)
    p.add_argument("--noise", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("lint", help="run static-analysis rules over source trees")
    p.add_argument("paths", nargs="*", default=["src/repro"])
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--baseline", default=None, help="baseline JSON to honor")
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings: write them to --baseline and exit 0",
    )
    p.add_argument(
        "--select", default=None, help="comma-separated rule ids/prefixes"
    )
    p.add_argument(
        "--profile",
        choices=sorted(_LINT_PROFILES),
        default=None,
        help=(
            "rule-family shortcut: perf=REP5xx, grad=REP6xx, "
            "conc=REP7xx, arrays=REP8xx, all=every rule"
        ),
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "racecheck",
        help="run the REP7xx concurrency/process-safety rules",
    )
    p.add_argument("paths", nargs="*", default=["src/repro"])
    p.add_argument(
        "--baseline",
        default="tools/lint_baseline.json",
        help="baseline JSON to honor (default tools/lint_baseline.json)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=_cmd_racecheck)

    p = sub.add_parser(
        "arraycheck",
        help="run the REP8xx array shape/dtype/layout contract rules",
    )
    p.add_argument("paths", nargs="*", default=["src/repro"])
    p.add_argument(
        "--baseline",
        default="tools/lint_baseline.json",
        help="baseline JSON to honor (default tools/lint_baseline.json)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=_cmd_arraycheck)

    p = sub.add_parser(
        "archcheck",
        help="check project imports against the architecture contract",
    )
    p.add_argument("paths", nargs="*", default=["src/repro"])
    p.add_argument(
        "--contract",
        default="tools/arch_contract.toml",
        help="TOML contract declaring per-layer allowed dependencies",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=_cmd_archcheck)

    p = sub.add_parser(
        "shapecheck", help="statically verify dual-tower shapes and dtypes"
    )
    p.add_argument("--dim", type=int, default=64)
    p.add_argument("--max-length", type=int, default=32)
    p.add_argument("--alphabet-size", type=int, default=40)
    p.add_argument("--channels", type=int, default=8)
    p.add_argument("--layers", type=int, default=5)
    p.add_argument("--compression", choices=["pq", "none", "ivfpq"], default="pq")
    p.add_argument("--pq-m", type=int, default=8)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float32")
    p.add_argument("--mlp-in", type=int, default=None)
    p.add_argument("--mlp-hidden", type=int, default=None)
    p.set_defaults(func=_cmd_shapecheck)

    p = sub.add_parser(
        "selftest",
        help="run seeded property diagnostics over the lookup stack",
    )
    p.add_argument(
        "--cases",
        type=int,
        default=25,
        help="generated cases per property (default 25)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed (the REPRO_SEED environment variable wins)",
    )
    p.set_defaults(func=_cmd_selftest)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
