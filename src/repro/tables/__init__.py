"""Tabular-data substrate.

Stands in for the SemTab 2019/2020 and Tough Tables benchmarks: tables are
drawn from a knowledge graph with known cell-entity (CEA) and column-type
(CTA) ground truth — which is exactly how the original benchmarks were
constructed — plus dataset transforms for the paper's evaluation variants
(noise injection, alias replacement, cell masking for data repair).
"""

from repro.tables.table import CellRef, Table
from repro.tables.dataset import DatasetStatistics, TabularDataset
from repro.tables.generator import BenchmarkConfig, generate_benchmark
from repro.tables.io import load_dataset_csv, save_dataset_csv
from repro.tables.toughtables import generate_tough_tables

__all__ = [
    "BenchmarkConfig",
    "CellRef",
    "DatasetStatistics",
    "Table",
    "TabularDataset",
    "generate_benchmark",
    "load_dataset_csv",
    "generate_tough_tables",
    "save_dataset_csv",
]
