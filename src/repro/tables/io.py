"""Dataset persistence in the SemTab layout.

SemTab distributes its benchmarks as a directory of per-table CSV files
plus ground-truth CSVs (``cea.csv``: table, row, col, entity;
``cta.csv``: table, col, type).  This module writes and reads that layout
so generated benchmarks can be inspected with ordinary tools and shared
across runs.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table

__all__ = ["load_dataset_csv", "save_dataset_csv"]

_TABLES_DIR = "tables"
_CEA_FILE = "cea.csv"
_CTA_FILE = "cta.csv"
_META_FILE = "dataset.csv"


def save_dataset_csv(dataset: TabularDataset, directory: str | Path) -> None:
    """Write ``dataset`` as SemTab-style CSVs under ``directory``."""
    directory = Path(directory)
    tables_dir = directory / _TABLES_DIR
    tables_dir.mkdir(parents=True, exist_ok=True)

    for table in dataset.tables:
        with (tables_dir / f"{table.table_id}.csv").open(
            "w", newline="", encoding="utf-8"
        ) as handle:
            writer = csv.writer(handle)
            writer.writerow(table.header)
            writer.writerows(table.rows)

    with (directory / _CEA_FILE).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["table", "row", "col", "entity"])
        for ref in dataset.annotated_cells():
            writer.writerow([ref.table_id, ref.row, ref.col, dataset.cea[ref]])

    with (directory / _CTA_FILE).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["table", "col", "type"])
        for (table_id, col), type_id in sorted(dataset.cta.items()):
            writer.writerow([table_id, col, type_id])

    with (directory / _META_FILE).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name"])
        writer.writerow([dataset.name])


def load_dataset_csv(directory: str | Path) -> TabularDataset:
    """Read a dataset previously written by :func:`save_dataset_csv`."""
    directory = Path(directory)
    tables_dir = directory / _TABLES_DIR
    if not tables_dir.is_dir():
        raise FileNotFoundError(f"no tables directory under {directory}")

    tables: list[Table] = []
    for csv_path in sorted(tables_dir.glob("*.csv")):
        with csv_path.open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            rows = list(reader)
        if not rows:
            raise ValueError(f"empty table file {csv_path}")
        tables.append(
            Table(table_id=csv_path.stem, header=rows[0], rows=rows[1:])
        )

    cea: dict[CellRef, str] = {}
    cea_path = directory / _CEA_FILE
    if cea_path.exists():
        with cea_path.open(newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            for record in reader:
                cea[
                    CellRef(record["table"], int(record["row"]), int(record["col"]))
                ] = record["entity"]

    cta: dict[tuple[str, int], str] = {}
    cta_path = directory / _CTA_FILE
    if cta_path.exists():
        with cta_path.open(newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            for record in reader:
                cta[(record["table"], int(record["col"]))] = record["type"]

    name = directory.name
    meta_path = directory / _META_FILE
    if meta_path.exists():
        lines = meta_path.read_text(encoding="utf-8").strip().splitlines()
        if len(lines) >= 2:
            name = lines[1].strip()

    return TabularDataset(name=name, tables=tables, cea=cea, cta=cta)
