"""Tough-Tables-style challenge dataset (SemTab 2020's hard track).

Tough Tables stresses annotation systems with (a) large tables, (b) heavy
cell noise, and (c) deliberately ambiguous mentions.  This generator
reproduces those properties: bigger row counts, a high corruption rate, and
a bias toward entities whose labels collide with other entities.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.tables.dataset import TabularDataset
from repro.tables.generator import BenchmarkConfig, generate_benchmark
from repro.text.noise import NoiseModel, NoiseSpec
from repro.utils.rng import as_rng

__all__ = ["generate_tough_tables"]


def generate_tough_tables(
    kg: KnowledgeGraph,
    num_tables: int = 12,
    min_rows: int = 20,
    max_rows: int = 60,
    noise_fraction: float = 0.45,
    seed: int = 29,
) -> TabularDataset:
    """Generate a Tough-Tables-like dataset over ``kg``.

    Compared to :func:`generate_benchmark`: fewer but much larger tables and
    a large fraction of corrupted cells with an error mixture skewed toward
    the harder operators (abbreviations, token swaps).
    """
    rng = as_rng(seed)
    base = generate_benchmark(
        kg,
        BenchmarkConfig(
            name="tough_tables",
            num_tables=num_tables,
            min_rows=min_rows,
            max_rows=max_rows,
            seed=int(rng.integers(0, 2**31)),
        ),
    )
    hard_noise = NoiseModel(
        spec=NoiseSpec(
            drop_char=0.2,
            insert_char=0.15,
            transpose=0.15,
            substitute=0.15,
            swap_tokens=0.15,
            abbreviation=0.2,
        ),
        max_edits=3,
        seed=rng,
    )
    noisy = base.with_noise(
        fraction=noise_fraction, noise=hard_noise, seed=rng, suffix="noisy"
    )
    # Keep the canonical dataset name.
    return TabularDataset(
        name="tough_tables",
        tables=noisy.tables,
        cea=noisy.cea,
        cta=noisy.cta,
    )
