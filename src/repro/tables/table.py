"""Relational table model (paper Section II, "Tabular Data")."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CellRef", "Table"]


@dataclass(frozen=True)
class CellRef:
    """Address of one cell: table id, 0-based row and column."""

    table_id: str
    row: int
    col: int


@dataclass
class Table:
    """An ``m x n`` table of string cells.

    ``header`` carries column names (not annotated); ``rows`` hold the cell
    values.  Cells may be entity mentions or literals; which cells refer to
    entities is recorded in the owning :class:`TabularDataset`'s ground
    truth, mirroring the SemTab layout.
    """

    table_id: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.table_id:
            raise ValueError("table_id must be non-empty")
        width = len(self.header)
        for r, row in enumerate(self.rows):
            if len(row) != width:
                raise ValueError(
                    f"table {self.table_id}: row {r} has {len(row)} cells, "
                    f"expected {width}"
                )

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_cols(self) -> int:
        return len(self.header)

    def cell(self, row: int, col: int) -> str:
        """Cell value at ``(row, col)``."""
        return self.rows[row][col]

    def set_cell(self, row: int, col: int, value: str) -> None:
        """Overwrite the cell at ``(row, col)``."""
        self.rows[row][col] = value

    def column(self, col: int) -> list[str]:
        """All values of column ``col`` top to bottom."""
        if not 0 <= col < self.num_cols:
            raise IndexError(f"column {col} out of range (ncols={self.num_cols})")
        return [row[col] for row in self.rows]

    def copy(self) -> "Table":
        """Deep copy (rows are duplicated)."""
        return Table(
            table_id=self.table_id,
            header=list(self.header),
            rows=[list(row) for row in self.rows],
        )

    def __repr__(self) -> str:
        return f"Table({self.table_id!r}, {self.num_rows}x{self.num_cols})"
