"""SemTab-style benchmark generator.

Generates entity tables from a knowledge graph with complete CEA/CTA ground
truth, the same construction recipe as the SemTab datasets: each table has a
subject column of entities sharing a type, context columns holding related
entities (reached through KG facts), and literal columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.tables.dataset import TabularDataset
from repro.tables.table import CellRef, Table
from repro.utils.rng import as_rng

__all__ = ["BenchmarkConfig", "generate_benchmark"]


@dataclass(frozen=True)
class _Template:
    """A table schema: subject type + context/literal columns."""

    name: str
    subject_type: str
    #: (header, property_id, direction) — direction "out" means the fact is
    #: subject -> object with the row entity as subject; "in" the reverse.
    entity_columns: tuple[tuple[str, str, str], ...]
    literal_columns: tuple[tuple[str, str], ...]  # (header, property_id)


_TEMPLATES: tuple[_Template, ...] = (
    _Template(
        name="countries",
        subject_type="country",
        entity_columns=(("capital", "capital_of", "in"),),
        literal_columns=(("population", "population"),),
    ),
    _Template(
        name="cities",
        subject_type="city",
        entity_columns=(("country", "located_in", "out"),),
        literal_columns=(("population", "population"),),
    ),
    _Template(
        name="people",
        subject_type="person",
        entity_columns=(
            ("country", "citizen_of", "out"),
            ("birthplace", "born_in", "out"),
        ),
        literal_columns=(),
    ),
    _Template(
        name="companies",
        subject_type="company",
        entity_columns=(("country", "headquartered_in", "out"),),
        literal_columns=(("founded", "founded_year"),),
    ),
    _Template(
        name="rivers",
        subject_type="river",
        entity_columns=(("country", "flows_through", "out"),),
        literal_columns=(),
    ),
)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Configuration for :func:`generate_benchmark`.

    ``num_tables`` tables are sampled round-robin over the templates whose
    subject type has enough entities; each table gets between ``min_rows``
    and ``max_rows`` rows.
    """

    name: str = "st_wikidata"
    num_tables: int = 50
    min_rows: int = 5
    max_rows: int = 20
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if not 1 <= self.min_rows <= self.max_rows:
            raise ValueError("row bounds must satisfy 1 <= min <= max")


def generate_benchmark(
    kg: KnowledgeGraph, config: BenchmarkConfig | None = None
) -> TabularDataset:
    """Generate a benchmark dataset with CEA and CTA ground truth."""
    config = config or BenchmarkConfig()
    rng = as_rng(config.seed)

    def population(template: _Template) -> int:
        try:
            return len(kg.entities_of_type(template.subject_type, transitive=True))
        except KeyError:
            return 0  # graph lacks this type entirely

    usable = [t for t in _TEMPLATES if population(t) >= config.min_rows]
    if not usable:
        raise ValueError("knowledge graph too small for any table template")

    tables: list[Table] = []
    cea: dict[CellRef, str] = {}
    cta: dict[tuple[str, int], str] = {}
    for i in range(config.num_tables):
        template = usable[i % len(usable)]
        table_id = f"{config.name}_t{i:04d}_{template.name}"
        table = _generate_table(kg, template, table_id, config, rng, cea, cta)
        tables.append(table)
    return TabularDataset(name=config.name, tables=tables, cea=cea, cta=cta)


def _generate_table(
    kg: KnowledgeGraph,
    template: _Template,
    table_id: str,
    config: BenchmarkConfig,
    rng: np.random.Generator,
    cea: dict[CellRef, str],
    cta: dict[tuple[str, int], str],
) -> Table:
    pool = kg.entities_of_type(template.subject_type, transitive=True)
    rows_wanted = int(rng.integers(config.min_rows, config.max_rows + 1))
    rows_wanted = min(rows_wanted, len(pool))
    chosen = rng.choice(len(pool), size=rows_wanted, replace=False)

    header = [template.subject_type]
    header.extend(h for h, _, _ in template.entity_columns)
    header.extend(h for h, _ in template.literal_columns)

    rows: list[list[str]] = []
    col_types: list[set[str]] = [set() for _ in template.entity_columns]
    for r, pick in enumerate(chosen):
        entity = kg.entity(pool[int(pick)])
        row = [entity.label]
        cea[CellRef(table_id, r, 0)] = entity.entity_id

        for c, (_, property_id, direction) in enumerate(template.entity_columns, 1):
            related = _related_entity(kg, entity.entity_id, property_id, direction, rng)
            if related is None:
                row.append("")
            else:
                other = kg.entity(related)
                row.append(other.label)
                cea[CellRef(table_id, r, c)] = other.entity_id
                col_types[c - 1].update(other.type_ids)

        offset = 1 + len(template.entity_columns)
        for c, (_, property_id) in enumerate(template.literal_columns):
            row.append(_literal_value(kg, entity.entity_id, property_id))
        rows.append(row)

    cta[(table_id, 0)] = template.subject_type
    for c, types in enumerate(col_types, 1):
        if types:
            cta[(table_id, c)] = _most_common_specific_type(kg, types)
    return Table(table_id=table_id, header=header, rows=rows)


def _related_entity(
    kg: KnowledgeGraph,
    entity_id: str,
    property_id: str,
    direction: str,
    rng: np.random.Generator,
) -> str | None:
    if direction == "out":
        candidates = [
            f.object_id
            for f in kg.facts_about(entity_id)
            if f.property_id == property_id and f.object_id is not None
        ]
    else:
        candidates = [
            f.subject_id
            for f in kg.facts_mentioning(entity_id)
            if f.property_id == property_id
        ]
    if not candidates:
        return None
    return candidates[int(rng.integers(0, len(candidates)))]


def _literal_value(kg: KnowledgeGraph, entity_id: str, property_id: str) -> str:
    for fact in kg.facts_about(entity_id):
        if fact.property_id == property_id and fact.literal is not None:
            return fact.literal
    return ""


def _most_common_specific_type(kg: KnowledgeGraph, types: set[str]) -> str:
    """Pick the most specific type covering a column's entities.

    When a column mixes subtypes (e.g. ``capital`` and ``city``), walk up
    the hierarchy to the nearest common ancestor, matching CTA's
    "most specific type" objective.
    """
    if len(types) == 1:
        return next(iter(types))
    # Candidate chains root-ward for each type.
    chains = []
    for type_id in types:
        chains.append([type_id, *kg.ancestor_types(type_id)])
    common = set(chains[0])
    for chain in chains[1:]:
        common &= set(chain)
    if not common:
        return sorted(types)[0]
    # The most specific common ancestor is the one appearing earliest in
    # any chain.
    first_chain = chains[0]
    for candidate in first_chain:
        if candidate in common:
            return candidate
    return sorted(common)[0]
