"""Benchmark dataset: tables plus CEA/CTA ground truth and transforms.

The transforms implement the paper's evaluation variants:

- :meth:`TabularDataset.with_noise` — the *error* variant (10 % of cells
  corrupted with the misspelling taxonomy, Section IV-B),
- :meth:`TabularDataset.with_alias_substitution` — the semantic-lookup
  variant (cells replaced by a random alias of their entity, Section IV-D),
- :meth:`TabularDataset.with_masked_cells` — the data-repair workload
  (10 % of cells blanked for imputation, Section IV "Dataset").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.tables.table import CellRef, Table
from repro.text.noise import NoiseModel
from repro.utils.rng import as_rng

__all__ = ["DatasetStatistics", "TabularDataset"]

#: Sentinel for a masked (missing) cell in the data-repair variant.
MISSING_CELL = ""


@dataclass(frozen=True)
class DatasetStatistics:
    """Row for the paper's Table I."""

    name: str
    num_tables: int
    avg_rows: float
    avg_cols: float
    cells_to_annotate: int


@dataclass
class TabularDataset:
    """Tables with ground truth.

    Attributes
    ----------
    name:
        Dataset identifier (``st_wikidata``, ``st_dbpedia``, ``tough_tables``).
    tables:
        The benchmark tables.
    cea:
        Ground-truth cell -> entity-id mapping; its keys are exactly the
        "cells to annotate".
    cta:
        Ground-truth (table_id, col) -> type-id mapping.
    """

    name: str
    tables: list[Table]
    cea: dict[CellRef, str] = field(default_factory=dict)
    cta: dict[tuple[str, int], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        by_id = {t.table_id: t for t in self.tables}
        if len(by_id) != len(self.tables):
            raise ValueError("duplicate table ids in dataset")
        for ref in self.cea:
            table = by_id.get(ref.table_id)
            if table is None:
                raise KeyError(f"CEA ground truth references unknown table {ref.table_id!r}")
            if not (0 <= ref.row < table.num_rows and 0 <= ref.col < table.num_cols):
                raise IndexError(f"CEA ground truth out of bounds: {ref}")
        self._tables_by_id = by_id

    # -- access ---------------------------------------------------------------------

    def table(self, table_id: str) -> Table:
        """The table with ``table_id`` (KeyError when unknown)."""
        try:
            return self._tables_by_id[table_id]
        except KeyError:
            raise KeyError(f"unknown table id {table_id!r}") from None

    def cell_text(self, ref: CellRef) -> str:
        """Current text of the addressed cell."""
        return self.table(ref.table_id).cell(ref.row, ref.col)

    def annotated_cells(self) -> list[CellRef]:
        """Cells with CEA ground truth, in deterministic order."""
        return sorted(self.cea, key=lambda r: (r.table_id, r.row, r.col))

    def statistics(self) -> DatasetStatistics:
        """Summary row for Table I."""
        n = len(self.tables)
        return DatasetStatistics(
            name=self.name,
            num_tables=n,
            avg_rows=(sum(t.num_rows for t in self.tables) / n) if n else 0.0,
            avg_cols=(sum(t.num_cols for t in self.tables) / n) if n else 0.0,
            cells_to_annotate=len(self.cea),
        )

    # -- transforms -------------------------------------------------------------------

    def _copy_tables(self) -> list[Table]:
        return [t.copy() for t in self.tables]

    def with_noise(
        self,
        fraction: float = 0.1,
        noise: NoiseModel | None = None,
        seed: int | np.random.Generator | None = None,
        suffix: str = "errors",
    ) -> "TabularDataset":
        """Corrupt ``fraction`` of the annotated cells (the *error* variant)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        rng = as_rng(seed)
        noise = noise or NoiseModel(seed=rng)
        tables = self._copy_tables()
        by_id = {t.table_id: t for t in tables}
        refs = self.annotated_cells()
        count = int(round(fraction * len(refs)))
        chosen = rng.choice(len(refs), size=count, replace=False) if count else []
        for idx in chosen:
            ref = refs[int(idx)]
            table = by_id[ref.table_id]
            table.set_cell(ref.row, ref.col, noise.corrupt(table.cell(ref.row, ref.col)))
        return TabularDataset(
            name=f"{self.name}_{suffix}",
            tables=tables,
            cea=dict(self.cea),
            cta=dict(self.cta),
        )

    def with_alias_substitution(
        self,
        kg: KnowledgeGraph,
        seed: int | np.random.Generator | None = None,
        suffix: str = "aliases",
        prefer_dissimilar: bool = False,
    ) -> "TabularDataset":
        """Replace each annotated cell with a random alias of its entity.

        Cells whose entity has no aliases are left unchanged, exactly as in
        the paper's semantic-lookup protocol (Section IV-D).

        ``prefer_dissimilar`` restricts sampling to *semantically-only*
        aliases — those sharing no word token with the label and far in
        edit similarity (ratio < 0.5), e.g. abbreviations and
        translations (EUROPEAN UNION / EU, GERMANY / DEUTSCHLAND) —
        whenever such aliases exist.  Real KGs are rich in cross-lingual
        aliases of this kind; our synthetic alias inventory skews toward
        derived surface forms, so uniform sampling under-represents the
        semantic gap the paper's Table VI exercises — this flag restores
        it (see DESIGN.md).
        """
        from repro.text.distance import levenshtein_ratio
        from repro.text.tokenize import normalize, word_tokens

        rng = as_rng(seed)
        tables = self._copy_tables()
        by_id = {t.table_id: t for t in tables}
        for ref in self.annotated_cells():
            entity = kg.entity(self.cea[ref])
            if not entity.aliases:
                continue
            pool = list(entity.aliases)
            if prefer_dissimilar:
                label = normalize(entity.label)
                label_tokens = set(word_tokens(label))
                far = [
                    a for a in pool
                    if not (set(word_tokens(a)) & label_tokens)
                    and levenshtein_ratio(label, normalize(a)) < 0.5
                ]
                if far:
                    pool = far
            alias = pool[int(rng.integers(0, len(pool)))]
            by_id[ref.table_id].set_cell(ref.row, ref.col, alias)
        return TabularDataset(
            name=f"{self.name}_{suffix}",
            tables=tables,
            cea=dict(self.cea),
            cta=dict(self.cta),
        )

    def with_masked_cells(
        self,
        fraction: float = 0.1,
        seed: int | np.random.Generator | None = None,
        suffix: str = "masked",
    ) -> tuple["TabularDataset", dict[CellRef, str]]:
        """Blank ``fraction`` of annotated cells; returns (dataset, answers).

        ``answers`` maps each masked cell to its original text — the data-
        repair task must recover the *entity* (via ``cea``), with the text
        available for error analysis.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        rng = as_rng(seed)
        tables = self._copy_tables()
        by_id = {t.table_id: t for t in tables}
        refs = self.annotated_cells()
        count = int(round(fraction * len(refs)))
        chosen = rng.choice(len(refs), size=count, replace=False) if count else []
        answers: dict[CellRef, str] = {}
        for idx in chosen:
            ref = refs[int(idx)]
            table = by_id[ref.table_id]
            answers[ref] = table.cell(ref.row, ref.col)
            table.set_cell(ref.row, ref.col, MISSING_CELL)
        return (
            TabularDataset(
                name=f"{self.name}_{suffix}",
                tables=tables,
                cea=dict(self.cea),
                cta=dict(self.cta),
            ),
            answers,
        )
