"""Deterministic fault injection for the sharded serving path.

A :class:`FaultPlan` is the object the hardened production hook points
accept: :class:`repro.index.sharded.ShardedIndex` calls ``before(shard)``
on the worker thread just before each shard search (the plan may raise or
sleep there) and ``transform(shard, ids, distances)`` on each shard's
result (the plan may corrupt it).  The plan counts calls per shard, so
faults can be pinned to "the Nth search of shard S" and a bounded retry
shows up as the next call.

Fault-plan grammar (``FaultPlan.parse``)::

    plan   := clause ("," clause)*
    clause := shard ":" call ":" kind [":" arg]
    shard  := "s" INT | "*"          # one shard, or every shard
    call   := "c" INT | "*"          # the Nth call (0-based), or every call
    kind   := "raise" | "delay" | "corrupt" | "drop" | "kill" | "compact"
    arg    := FLOAT                  # delay seconds (default 0.01)

Kinds:

- ``raise``   — raise :class:`FaultInjected` on the matching call(s);
  with a single-call match and the index's default one-retry budget, the
  retry (the next call) succeeds, exercising the retry path.
- ``delay``   — sleep ``arg`` seconds before the search runs, to trip
  ``shard_timeout`` deadlines.
- ``corrupt`` — misassign each candidate the distance of its mirror rank
  (ids kept, distances reversed): shape-correct, but the id/distance
  pairing is wrong, so the merged result diverges from any honest scan —
  exactly what the differential comparators must flag.  (Reversing both
  arrays together would be a no-op: the fan-in merge re-sorts pairs.)
- ``drop``    — raise on the matching call *and every later one*: the
  shard is dead from that point on (retries keep failing).
- ``kill``    — process executor only: terminate the worker *process*
  serving the matching shard just before the request is sent, so the
  index's crash detection sees a dead pipe and must respawn the worker
  (the :meth:`FaultPlan.should_kill` hook).  Under the thread or inline
  executors there is no process to kill and the clause is inert.
- ``compact`` — crash the matching *compaction attempt* at its swap
  point (the :meth:`FaultPlan.on_compaction` hook): the rebuild runs to
  completion, then :class:`FaultInjected` fires just before the atomic
  shard swap would publish.  The index must abort all-or-nothing — the
  old shard set keeps serving bit-identical results and no
  shared-memory segment leaks.  The shard field is ignored (compaction
  is a whole-index operation; write the clause as ``*:cN:compact``);
  the call field selects the Nth compaction attempt.

:class:`QueryPoison` is the analogous hook for
:class:`repro.serving.LookupEngine`: it makes specific (normalized)
query strings raise or stall inside the serving pipeline, which is how
the tests prove one poisoned query fails alone instead of rejecting its
whole micro-batch.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultInjected", "FaultPlan", "FaultSpec", "QueryPoison"]

_KINDS = ("raise", "delay", "corrupt", "drop", "kill", "compact")


class FaultInjected(RuntimeError):
    """The failure a fault plan injects (distinguishable from real bugs)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault clause: *kind* on shard *shard* at call *at_call*.

    ``shard`` / ``at_call`` of ``None`` match every shard / every call.
    ``arg`` is the delay in seconds for ``delay`` faults.
    """

    kind: str
    shard: int | None = None
    at_call: int | None = None
    arg: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.at_call is not None and self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")
        if self.arg < 0:
            raise ValueError(f"arg must be >= 0, got {self.arg}")

    def matches(self, shard: int, call: int) -> bool:
        """Whether this clause fires for ``shard``'s ``call``-th search."""
        if self.shard is not None and self.shard != shard:
            return False
        if self.at_call is None:
            return True
        if self.kind == "drop":
            return call >= self.at_call
        return call == self.at_call


class FaultPlan:
    """Thread-safe, call-counting fault injector for ``ShardedIndex``.

    Implements the index's duck-typed hook protocol (``before`` /
    ``transform``).  Counters are per shard; :meth:`calls` exposes them
    and :attr:`fired` counts injected faults, so tests can assert a plan
    actually triggered.
    """

    def __init__(self, specs: Iterable[FaultSpec]):
        self.specs = tuple(specs)
        self._lock = threading.Lock()
        self._calls: dict[int, int] = {}
        self._compactions = 0
        self.fired = 0

    @classmethod
    def parse(cls, plan: str) -> "FaultPlan":
        """Build a plan from the grammar in the module docstring."""
        specs = []
        for clause in plan.split(","):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"bad fault clause {clause!r}: want shard:call:kind[:arg]"
                )
            shard_s, call_s, kind = parts[0], parts[1], parts[2]
            if shard_s == "*":
                shard = None
            elif shard_s.startswith("s") and shard_s[1:].isdigit():
                shard = int(shard_s[1:])
            else:
                raise ValueError(f"bad shard {shard_s!r} in {clause!r}")
            if call_s == "*":
                call = None
            elif call_s.startswith("c") and call_s[1:].isdigit():
                call = int(call_s[1:])
            else:
                raise ValueError(f"bad call {call_s!r} in {clause!r}")
            arg = float(parts[3]) if len(parts) == 4 else 0.01
            specs.append(FaultSpec(kind=kind, shard=shard, at_call=call, arg=arg))
        if not specs:
            raise ValueError(f"empty fault plan: {plan!r}")
        return cls(specs)

    def calls(self, shard: int) -> int:
        """How many times ``before`` ran for ``shard``."""
        with self._lock:
            return self._calls.get(shard, 0)

    def reset(self) -> None:
        """Zero every call counter and the fired count."""
        with self._lock:
            self._calls.clear()
            self._compactions = 0
            self.fired = 0

    # -- ShardedIndex hook protocol ---------------------------------------------

    def before(self, shard: int) -> None:
        """Pre-search hook: count the call, then sleep/raise as planned."""
        with self._lock:
            call = self._calls.get(shard, 0)
            self._calls[shard] = call + 1
            # corrupt specs act (and count) in transform(), kill specs in
            # should_kill(), compact specs in on_compaction(), not here.
            matched = [
                s
                for s in self.specs
                if s.kind not in ("corrupt", "kill", "compact")
                and s.matches(shard, call)
            ]
            if matched:
                self.fired += 1
        for spec in matched:
            if spec.kind == "delay":
                time.sleep(spec.arg)
            elif spec.kind in ("raise", "drop"):
                raise FaultInjected(
                    f"injected {spec.kind} on shard {shard} call {call}"
                )

    def should_kill(self, shard: int) -> bool:
        """Worker-kill hook: true when a ``kill`` spec matches this call.

        Consulted by the process executor after :meth:`before` (which
        counted the call), just before the shard request is sent to its
        worker; a ``True`` return makes the pool terminate that worker's
        process, so the request hits a dead pipe and exercises the
        crash-detection → respawn → retry path.
        """
        with self._lock:
            call = max(self._calls.get(shard, 1) - 1, 0)
            matched = any(
                s.kind == "kill" and s.matches(shard, call)
                for s in self.specs
            )
            if matched:
                self.fired += 1
        return matched

    def on_compaction(self, phase: str) -> None:
        """Compaction hook: crash the matching attempt at its swap point.

        The index calls this twice per compaction attempt — once with
        ``phase="build"`` before the live-set rebuild starts (which
        counts the attempt) and once with ``phase="swap"`` after the new
        shards are fully built but *before* the atomic swap publishes
        them.  A ``compact`` spec whose call index matches the attempt
        raises :class:`FaultInjected` at the swap point; the index must
        abort all-or-nothing, leaving the old shard set serving
        bit-identical results.
        """
        with self._lock:
            if phase == "build":
                self._compactions += 1
                return
            call = max(self._compactions - 1, 0)
            matched = [
                s
                for s in self.specs
                if s.kind == "compact" and s.matches(s.shard or 0, call)
            ]
            if matched:
                self.fired += 1
        if matched:
            raise FaultInjected(
                f"injected compaction crash at {phase} (attempt {call})"
            )

    def transform(
        self, shard: int, ids: np.ndarray, distances: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post-search hook: corrupt the result when a corrupt spec matches."""
        with self._lock:
            call = self._calls.get(shard, 0) - 1
            corrupt = any(
                s.kind == "corrupt" and s.matches(shard, max(call, 0))
                for s in self.specs
            )
            if corrupt:
                self.fired += 1
        if corrupt:
            return ids, distances[:, ::-1].copy()
        return ids, distances


class QueryPoison:
    """Engine-side fault hook: named queries raise or stall when served.

    ``LookupEngine`` invokes the hook with the normalized query list of
    every serve attempt (batched or isolated single-query retry); if any
    poisoned query is present the hook sleeps ``delay`` seconds and, for
    ``kind="raise"``, raises :class:`FaultInjected`.  Because the engine
    retries a failed batch query-by-query, only the poisoned handles see
    the error.
    """

    def __init__(
        self,
        queries: Iterable[str],
        kind: str = "raise",
        delay: float = 0.0,
    ):
        if kind not in ("raise", "delay"):
            raise ValueError(f"kind must be 'raise' or 'delay', got {kind!r}")
        self.queries = frozenset(queries)
        self.kind = kind
        self.delay = delay
        self._lock = threading.Lock()
        self.fired = 0

    def __call__(self, normalized: list[str]) -> None:
        hit = sorted(self.queries.intersection(normalized))
        if not hit:
            return
        with self._lock:
            self.fired += 1
        if self.delay:
            time.sleep(self.delay)
        if self.kind == "raise":
            raise FaultInjected(f"poisoned query served: {hit[0]!r}")
