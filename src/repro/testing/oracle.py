"""Reference brute-force k-NN oracle and top-k comparators.

The production scan path stacks four layers of machinery between a query
and its neighbours — blockwise scoring, ``(distance, id)`` ranking,
running-top-k merges, sharded fan-in — any of which can silently drop or
reorder a candidate.  This module provides the independent ground truth
the differential property tests compare against:

- :func:`brute_force_topk` recomputes neighbours from scratch in float64
  using the *direct* ``((q - v) ** 2).sum()`` form (deliberately not the
  norm-expansion kernel production uses, so a cancellation bug in the
  kernel cannot hide in the oracle too);
- :func:`exact_topk` ranks a caller-supplied full distance matrix — the
  partition-invariance oracle for approximate-storage backends like PQ,
  where the reference distances are the full un-blocked ADC matrix;
- :func:`assert_topk_equal`, :func:`assert_valid_topk` and
  :func:`recall_at_k` are the comparators the properties assert with.

Ranking follows the :mod:`repro.index.topk` convention exactly:
``(distance, id)`` with ties toward the smaller id, ``-1``/``inf``
padding strictly last, ``NaN`` distances last among real candidates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "assert_topk_agrees",
    "assert_topk_equal",
    "assert_valid_topk",
    "brute_force_topk",
    "exact_topk",
    "recall_at_k",
]


def _as_pair(result) -> tuple[np.ndarray, np.ndarray]:
    """Accept a ``SearchResult`` or an ``(ids, distances)`` pair."""
    if hasattr(result, "ids") and hasattr(result, "distances"):
        return result.ids, result.distances
    ids, distances = result
    return ids, distances


def exact_topk(
    distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reference top-k over a full ``(num_queries, ntotal)`` matrix.

    Ranks every column by ``(distance, id)`` (``NaN`` last) in float64 and
    pads with ``-1``/``inf`` when ``k > ntotal``.  This is the oracle the
    blockwise/sharded machinery must reproduce *bit-identically* for any
    partition of the same distance matrix.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 2:
        raise ValueError(f"expected a 2-D distance matrix, got {distances.shape}")
    nq, ntotal = distances.shape
    take = min(k, ntotal)
    row_ids = np.tile(np.arange(ntotal, dtype=np.int64), (nq, 1))
    order = np.lexsort((row_ids, distances), axis=1)[:, :take]
    ids = np.full((nq, k), -1, dtype=np.int64)
    out_d = np.full((nq, k), np.inf, dtype=np.float64)
    ids[:, :take] = np.take_along_axis(row_ids, order, axis=1)
    out_d[:, :take] = np.take_along_axis(distances, order, axis=1)
    return ids, out_d


def brute_force_topk(
    vectors: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: str = "l2",
) -> tuple[np.ndarray, np.ndarray]:
    """Independent float64 exact k-NN over ``vectors`` for each query row.

    Distances are computed pair-by-pair in the numerically direct form
    (difference-then-square for L2), not the ``||a||² + ||b||² - 2ab``
    expansion, so the oracle does not share the production kernel's
    rounding behaviour.  Inputs are cast to float32 first — the same cast
    every :class:`~repro.index.base.VectorIndex` applies — then promoted
    to float64 for the arithmetic.
    """
    if metric not in ("l2", "ip"):
        raise ValueError(f"metric must be 'l2' or 'ip', got {metric!r}")
    vectors = np.asarray(vectors, dtype=np.float32).astype(np.float64)
    queries = np.asarray(queries, dtype=np.float32).astype(np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    if vectors.ndim != 2 or queries.ndim != 2:
        raise ValueError("vectors and queries must be 2-D")
    if len(vectors) and vectors.shape[1] != queries.shape[1]:
        raise ValueError(
            f"dim mismatch: vectors {vectors.shape[1]} != queries "
            f"{queries.shape[1]}"
        )
    if len(vectors) == 0:
        nq = len(queries)
        return (
            np.full((nq, k), -1, dtype=np.int64),
            np.full((nq, k), np.inf, dtype=np.float64),
        )
    # Adversarial stores legitimately contain ±inf: inf - inf is a NaN
    # *distance* (ranked last), not an error.
    with np.errstate(invalid="ignore", over="ignore"):
        if metric == "l2":
            diff = queries[:, None, :] - vectors[None, :, :]
            distances = (diff * diff).sum(axis=2)
        else:
            distances = -(queries @ vectors.T)
    return exact_topk(distances, k)


def recall_at_k(got_ids: np.ndarray, oracle_ids: np.ndarray) -> float:
    """Mean per-query fraction of the oracle's real neighbours retrieved.

    Padding (``-1``) entries on the oracle side are excluded from the
    denominator; queries whose oracle row is entirely padding count as
    recall 1 (there was nothing to find).
    """
    got_ids = np.asarray(got_ids)
    oracle_ids = np.asarray(oracle_ids)
    if got_ids.shape[0] != oracle_ids.shape[0]:
        raise ValueError(
            f"query counts differ: {got_ids.shape[0]} != {oracle_ids.shape[0]}"
        )
    recalls = []
    for got_row, want_row in zip(got_ids, oracle_ids):
        want = set(int(i) for i in want_row if i >= 0)
        if not want:
            recalls.append(1.0)
            continue
        got = set(int(i) for i in got_row if i >= 0)
        recalls.append(len(want & got) / len(want))
    return float(np.mean(recalls))


def assert_topk_equal(got, want, context: str = "") -> None:
    """Assert two top-k results are bit-identical (ids and distances).

    ``got``/``want`` may be ``SearchResult`` objects or ``(ids,
    distances)`` pairs.  Distances are compared with ``NaN == NaN``
    treated as equal (both sides carrying the same corrupted score is
    still agreement).
    """
    got_ids, got_d = _as_pair(got)
    want_ids, want_d = _as_pair(want)
    prefix = f"{context}: " if context else ""
    if got_ids.shape != want_ids.shape:
        raise AssertionError(
            f"{prefix}id shapes differ: {got_ids.shape} != {want_ids.shape}"
        )
    if not np.array_equal(got_ids, want_ids):
        row, col = np.argwhere(got_ids != want_ids)[0]
        raise AssertionError(
            f"{prefix}ids diverge at query {row} rank {col}: "
            f"got {got_ids[row].tolist()} want {want_ids[row].tolist()}"
        )
    if not np.array_equal(
        np.asarray(got_d, dtype=np.float64),
        np.asarray(want_d, dtype=np.float64),
        equal_nan=True,
    ):
        row, col = np.argwhere(
            ~np.isclose(got_d, want_d, rtol=0.0, atol=0.0, equal_nan=True)
        )[0]
        raise AssertionError(
            f"{prefix}distances diverge at query {row} rank {col}: "
            f"got {got_d[row].tolist()} want {want_d[row].tolist()}"
        )


def assert_topk_agrees(
    got,
    oracle,
    rtol: float = 1e-6,
    atol: float = 1e-12,
    context: str = "",
) -> None:
    """Assert a result matches the oracle up to reordering within ties.

    The production scan and the oracle use different (but individually
    correct) float64 kernels, so candidates whose true distances differ
    by less than kernel rounding error may legitimately swap ranks.
    This comparator groups the oracle's ranks into *tie groups* —
    maximal runs where consecutive distances differ by at most
    ``atol + rtol * max(1, |d|)`` — and asserts the produced ids are a
    permutation of the oracle ids within every group (and identical
    across groups).  Padding must align exactly.  Produced distances
    are checked against the oracle rank-wise at the same tolerance.
    """
    got_ids, got_d = _as_pair(got)
    want_ids, want_d = _as_pair(oracle)
    prefix = f"{context}: " if context else ""
    if got_ids.shape != want_ids.shape:
        raise AssertionError(
            f"{prefix}id shapes differ: {got_ids.shape} != {want_ids.shape}"
        )
    for row in range(len(got_ids)):
        g_ids, g_d = got_ids[row], np.asarray(got_d[row], dtype=np.float64)
        w_ids, w_d = want_ids[row], np.asarray(want_d[row], dtype=np.float64)
        if not np.array_equal(g_ids < 0, w_ids < 0):
            raise AssertionError(
                f"{prefix}padding misaligned at query {row}: "
                f"got {g_ids.tolist()} want {w_ids.tolist()}"
            )
        real = int((w_ids >= 0).sum())
        start = 0
        for stop in range(1, real + 1):
            tol = atol + rtol * max(1.0, abs(w_d[stop - 1]))
            tied = (
                w_d[stop] - w_d[stop - 1] <= tol
                or (np.isnan(w_d[stop]) and np.isnan(w_d[stop - 1]))
                or w_d[stop] == w_d[stop - 1]  # inf == inf
            ) if stop < real else False
            if stop == real or not tied:
                if set(g_ids[start:stop].tolist()) != set(
                    w_ids[start:stop].tolist()
                ):
                    raise AssertionError(
                        f"{prefix}ids diverge beyond ties at query {row} "
                        f"ranks [{start}, {stop}): got {g_ids.tolist()} "
                        f"want {w_ids.tolist()}"
                    )
                start = stop
        both_real = ~np.isnan(g_d[:real]) & ~np.isnan(w_d[:real])
        if not np.allclose(
            g_d[:real][both_real], w_d[:real][both_real], rtol=rtol, atol=atol
        ):
            raise AssertionError(
                f"{prefix}distances diverge at query {row}: "
                f"got {g_d.tolist()} want {w_d.tolist()}"
            )


def assert_valid_topk(result, ntotal: int, k: int, context: str = "") -> None:
    """Structural invariants every search result must satisfy.

    Checks, per query row: shapes are ``(nq, k)``; every id is ``-1`` or
    in ``[0, ntotal)``; real ids are deduplicated; padding (``-1`` with
    ``inf`` distance) appears only as a suffix; real distances are
    non-decreasing with ``NaN`` allowed only as a suffix of the real
    entries.
    """
    ids, distances = _as_pair(result)
    prefix = f"{context}: " if context else ""
    if ids.shape != distances.shape or ids.ndim != 2 or ids.shape[1] != k:
        raise AssertionError(
            f"{prefix}bad shapes: ids {ids.shape}, distances "
            f"{distances.shape}, expected (nq, {k})"
        )
    if ids.size == 0:
        return
    if ids.max() >= ntotal or ids.min() < -1:
        raise AssertionError(
            f"{prefix}ids out of range [-1, {ntotal}): "
            f"min {ids.min()}, max {ids.max()}"
        )
    pad = ids < 0
    if (pad[:, :-1] & ~pad[:, 1:]).any():
        row = int(np.argwhere(pad[:, :-1] & ~pad[:, 1:])[0, 0])
        raise AssertionError(
            f"{prefix}real id after padding in query {row}: "
            f"{ids[row].tolist()}"
        )
    if not np.isinf(distances[pad]).all():
        raise AssertionError(f"{prefix}padded entries must carry inf distance")
    for row, (row_ids, row_d, row_pad) in enumerate(zip(ids, distances, pad)):
        real = row_ids[~row_pad]
        if len(np.unique(real)) != len(real):
            raise AssertionError(
                f"{prefix}duplicate ids in query {row}: {row_ids.tolist()}"
            )
        real_d = row_d[~row_pad]
        nan = np.isnan(real_d)
        if nan.any() and not nan[int(np.argmax(nan)):].all():
            raise AssertionError(
                f"{prefix}NaN distance not a suffix in query {row}: "
                f"{row_d.tolist()}"
            )
        finite_part = real_d[~nan]
        if len(finite_part) > 1 and (np.diff(finite_part) < 0).any():
            raise AssertionError(
                f"{prefix}distances not sorted in query {row}: "
                f"{row_d.tolist()}"
            )
