"""Property-based correctness and fault-injection toolkit.

Three pieces, all dependency-free (numpy only):

- :mod:`repro.testing.oracle` — reference brute-force k-NN plus the
  comparators (`assert_topk_equal`, `assert_valid_topk`, `recall_at_k`)
  the differential properties assert with;
- :mod:`repro.testing.strategies` — seeded adversarial generators
  (vector stores, entity labels, serving grids) with shrinking and
  ``REPRO_SEED``/``REPRO_CASE`` replay;
- :mod:`repro.testing.faults` — the :class:`FaultPlan` / `QueryPoison`
  injectors the hardened ``ShardedIndex`` / ``LookupEngine`` hook points
  accept;
- :mod:`repro.testing.sanitizer` — the runtime lock-order tracker
  (``REPRO_SANITIZER=1``) that records the dynamic lock-acquisition
  graph during the property suites and fails tests on inversions,
  cross-validating the static REP703 deadlock detector.

Layering: this package may import the production layers it tests
(index, lookup, serving); no production layer may import it — enforced
by ``tools/arch_contract.toml``.  The one sanctioned consumer outside
the test suite is the ``repro selftest`` CLI diagnostics command.
"""

from repro.testing.faults import FaultInjected, FaultPlan, FaultSpec, QueryPoison
from repro.testing.sanitizer import (
    LockOrderTracker,
    LockOrderViolation,
    TrackedLock,
    current_tracker,
    tracked_factory,
)
from repro.testing.oracle import (
    assert_topk_agrees,
    assert_topk_equal,
    assert_valid_topk,
    brute_force_topk,
    exact_topk,
    recall_at_k,
)
from repro.testing.strategies import (
    DEFAULT_CASES,
    GridCase,
    GridStrategy,
    LabelStrategy,
    PropertyFailure,
    StoreCase,
    TupleStrategy,
    VectorStoreStrategy,
    base_seed,
    case_rng,
    run_cases,
)

__all__ = [
    "DEFAULT_CASES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "GridCase",
    "GridStrategy",
    "LabelStrategy",
    "LockOrderTracker",
    "LockOrderViolation",
    "PropertyFailure",
    "QueryPoison",
    "StoreCase",
    "TrackedLock",
    "TupleStrategy",
    "VectorStoreStrategy",
    "assert_topk_agrees",
    "assert_topk_equal",
    "assert_valid_topk",
    "base_seed",
    "brute_force_topk",
    "case_rng",
    "current_tracker",
    "exact_topk",
    "recall_at_k",
    "run_cases",
    "tracked_factory",
]
