"""Seeded case generators, shrinking, and the property-run loop.

Dependency-free (numpy-only) stand-in for a property-testing library,
shaped around what the serving stack actually needs:

- **generators** draw adversarial inputs from a seeded
  ``numpy.random.Generator`` — vector stores with duplicate rows,
  near-ties, zero vectors and huge/``inf`` magnitudes; entity-label
  strings with unicode alphabets and typo-perturbed aliases; and
  k/block-size/shard-count grids;
- **shrinking**: when a property fails, :func:`run_cases` greedily
  re-runs structurally smaller variants of the failing case (fewer rows,
  fewer queries, zeroed payloads, shorter strings) and reports the
  smallest variant that still fails;
- **replay**: every failure message contains a
  ``REPRO_SEED=<base> REPRO_CASE=<index>`` line; exporting those
  environment variables re-runs exactly the failing case.  CI runs the
  whole suite under a small ``REPRO_SEED`` matrix so each run draws a
  different-but-pinned case stream.

Generators accept a ``rng`` explicitly — nothing in this module touches
global random state (the repo's REP301 lint rule applies here too).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "DEFAULT_CASES",
    "GridCase",
    "GridStrategy",
    "LabelStrategy",
    "PropertyFailure",
    "StoreCase",
    "TupleStrategy",
    "VectorStoreStrategy",
    "base_seed",
    "case_rng",
    "run_cases",
]

#: Default number of generated cases per property.
DEFAULT_CASES = 100

#: Environment variable overriding the base seed of every property run.
SEED_ENV = "REPRO_SEED"

#: Environment variable pinning a run to one case index (for replay).
CASE_ENV = "REPRO_CASE"

#: Bound on shrink-candidate evaluations per failure.
_MAX_SHRINK_EVALS = 200


def base_seed(default: int = 0) -> int:
    """The run's base seed: ``$REPRO_SEED`` when set, else ``default``."""
    value = os.environ.get(SEED_ENV)
    return int(value) if value else default


def case_rng(base: int, index: int) -> np.random.Generator:
    """The deterministic generator for case ``index`` of a run.

    Seeded from the ``(base, index)`` pair via ``SeedSequence``, so cases
    are independent streams and any single case is replayable without
    generating its predecessors.
    """
    # Explicit SeedSequence streams, not unmanaged global state.
    seq = np.random.SeedSequence((base, index))  # repro: noqa[REP301]
    return np.random.default_rng(seq)  # repro: noqa[REP301]


class PropertyFailure(AssertionError):
    """A property failed; carries the replay recipe and the shrunk case."""

    def __init__(
        self,
        name: str,
        seed: int,
        index: int,
        original: AssertionError,
        shrunk_case,
        shrink_steps: int,
    ):
        self.seed = seed
        self.index = index
        self.shrunk_case = shrunk_case
        lines = [
            f"property {name!r} failed on case {index} (base seed {seed})",
            f"replay: {SEED_ENV}={seed} {CASE_ENV}={index} pytest <this test>",
            f"original failure: {original}",
        ]
        if shrink_steps:
            lines.append(
                f"shrunk {shrink_steps} step(s) to minimal failing case:"
            )
        else:
            lines.append("case did not shrink further:")
        lines.append(f"  {_describe(shrunk_case)}")
        super().__init__("\n".join(lines))


def _describe(case) -> str:
    if isinstance(case, StoreCase):
        return repr(case)
    text = repr(case)
    return text if len(text) <= 500 else text[:500] + "..."


def run_cases(
    prop: Callable,
    strategy,
    cases: int = DEFAULT_CASES,
    seed: int = 0,
    name: str | None = None,
) -> int:
    """Run ``prop(case)`` over ``cases`` generated cases; shrink failures.

    Returns the number of cases executed.  On the first
    ``AssertionError`` the failing case is shrunk via
    ``strategy.shrink(case)`` (greedy descent, bounded by
    ``_MAX_SHRINK_EVALS`` evaluations) and a :class:`PropertyFailure`
    is raised with the replay seed and the minimal case.
    """
    base = base_seed(seed)
    pinned = os.environ.get(CASE_ENV)
    indices: Iterable[int] = (
        [int(pinned)] if pinned not in (None, "") else range(cases)
    )
    label = name or getattr(prop, "__name__", "property")
    executed = 0
    for index in indices:
        case = strategy.generate(case_rng(base, index))
        try:
            prop(case)
        except AssertionError as exc:
            minimal, steps = _shrink(prop, strategy, case)
            raise PropertyFailure(
                label, base, index, exc, minimal, steps
            ) from exc
        executed += 1
    return executed


def _shrink(prop: Callable, strategy, case) -> tuple[object, int]:
    """Greedy shrink: follow the first smaller candidate that still fails."""
    shrink = getattr(strategy, "shrink", None)
    if shrink is None:
        return case, 0
    steps = 0
    evals = 0
    current = case
    progressed = True
    while progressed and evals < _MAX_SHRINK_EVALS:
        progressed = False
        for candidate in shrink(current):
            evals += 1
            if evals > _MAX_SHRINK_EVALS:
                break
            try:
                prop(candidate)
            except AssertionError:
                current = candidate
                steps += 1
                progressed = True
                break
            except Exception:
                continue  # candidate broke differently; not a simplification
    return current, steps


# -- vector stores ---------------------------------------------------------------


@dataclass(frozen=True)
class StoreCase:
    """One generated vector-store case: the store, its queries, a label."""

    vectors: np.ndarray
    queries: np.ndarray
    note: str = ""

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    def __repr__(self) -> str:  # compact; full matrices drown the report
        return (
            f"StoreCase(n={len(self.vectors)}, nq={len(self.queries)}, "
            f"dim={self.dim}, note={self.note!r})"
        )


class VectorStoreStrategy:
    """Adversarial ``(store, queries)`` generator.

    Parameters
    ----------
    dims:
        Dimensionalities to draw from.
    max_rows / max_queries:
        Upper bounds on store and query-batch sizes (rows are drawn from
        ``[1, max_rows]``; pass ``min_rows=0`` to include empty stores).
    conditioned:
        When ``True``, magnitudes stay in a well-conditioned band
        (|x| ≲ 100) so exact float comparisons against the oracle are
        meaningful.  When ``False``, cases may additionally contain
        huge-magnitude (``~1e18``) and genuine ``±inf`` entries — the
        regime that historically broke pad ordering in ``merge_topk``.

    Every case gets a mix of adversarial features, chosen by the rng:
    exact duplicate rows, near-tie rows (a duplicate nudged by one small
    ulp-scale step), all-zero rows, and queries placed *on* stored
    points so distance ties actually occur.
    """

    def __init__(
        self,
        dims: tuple[int, ...] = (2, 3, 8, 17),
        max_rows: int = 64,
        max_queries: int = 6,
        min_rows: int = 1,
        conditioned: bool = True,
    ):
        if min_rows < 0 or max_rows < max(1, min_rows):
            raise ValueError("need 0 <= min_rows <= max_rows with max_rows >= 1")
        self.dims = dims
        self.max_rows = max_rows
        self.max_queries = max_queries
        self.min_rows = min_rows
        self.conditioned = conditioned

    def generate(self, rng: np.random.Generator) -> StoreCase:
        """Draw one adversarial store + query batch from ``rng``."""
        dim = int(rng.choice(self.dims))
        n = int(rng.integers(self.min_rows, self.max_rows + 1))
        nq = int(rng.integers(1, self.max_queries + 1))
        scale = float(rng.choice([1e-3, 1.0, 50.0]))
        notes = [f"scale={scale:g}"]
        vectors = (rng.normal(size=(n, dim)) * scale).astype(np.float32)
        if n >= 2 and rng.random() < 0.5:
            # Exact duplicates: every comparator must fall back to id order.
            src, dst = rng.choice(n, size=2, replace=False)
            vectors[dst] = vectors[src]
            notes.append("dup")
        if n >= 2 and rng.random() < 0.5:
            # Near-tie: one float32 ulp-ish nudge on a duplicated row.
            src, dst = rng.choice(n, size=2, replace=False)
            vectors[dst] = vectors[src]
            vectors[dst, 0] = np.nextafter(
                vectors[dst, 0], np.float32(np.inf), dtype=np.float32
            )
            notes.append("near-tie")
        if rng.random() < 0.3:
            vectors[rng.integers(0, n)] = 0.0
            notes.append("zero-row")
        if not self.conditioned:
            if rng.random() < 0.4:
                vectors[rng.integers(0, n)] *= np.float32(1e18)
                notes.append("huge")
            if rng.random() < 0.3:
                row = rng.integers(0, n)
                col = rng.integers(0, dim)
                vectors[row, col] = np.float32(
                    np.inf if rng.random() < 0.5 else -np.inf
                )
                notes.append("inf")
        queries = (rng.normal(size=(nq, dim)) * scale).astype(np.float32)
        if n and rng.random() < 0.5:
            # Query sitting exactly on a stored point: distance-0 ties.
            queries[rng.integers(0, nq)] = vectors[rng.integers(0, n)]
            notes.append("on-point")
        if rng.random() < 0.2:
            queries[rng.integers(0, nq)] = 0.0
        return StoreCase(vectors, queries, note=",".join(notes))

    def shrink(self, case: StoreCase) -> Iterator[StoreCase]:
        """Yield strictly simpler stores: fewer rows/queries, zeroed data."""
        n, nq = len(case.vectors), len(case.queries)
        if n > self.min_rows:
            half = max(self.min_rows, n // 2)
            yield replace(case, vectors=case.vectors[:half].copy())
            yield replace(case, vectors=case.vectors[n - half :].copy())
        if nq > 1:
            yield replace(case, queries=case.queries[: max(1, nq // 2)].copy())
        if np.any(case.vectors != 0):
            # Zeroing payloads often preserves structural failures while
            # making the counterexample legible.
            yield replace(case, vectors=np.zeros_like(case.vectors))
        if np.any(case.queries != 0):
            yield replace(case, queries=np.zeros_like(case.queries))


# -- entity labels ---------------------------------------------------------------

_ALPHABETS = (
    "abcdefghijklmnopqrstuvwxyz",
    "abcdefghijklmnopqrstuvwxyz0123456789 -'",
    "àâçéèêëîïôûüñß",
    "αβγδεζηθλμπστ",
    "москвасанктпетербург",
    "北京上海東京大阪",
)


class LabelStrategy:
    """Entity-label string generator with typo-perturbed aliases.

    Produces ``(label, aliases)`` pairs: a base surface form drawn from a
    mixed-alphabet pool (ascii, accented latin, greek, cyrillic, CJK) and
    ``num_aliases`` corruptions of it via
    :class:`repro.text.noise.NoiseModel` — the same operator mixture the
    evaluation harness uses for its noisy-query workloads.
    """

    def __init__(
        self,
        max_len: int = 24,
        num_aliases: int = 2,
        max_edits: int = 2,
    ):
        if max_len < 1:
            raise ValueError(f"max_len must be >= 1, got {max_len}")
        self.max_len = max_len
        self.num_aliases = num_aliases
        self.max_edits = max_edits

    def generate(self, rng: np.random.Generator) -> tuple[str, list[str]]:
        """Draw a ``(label, aliases)`` pair with typo-perturbed aliases."""
        from repro.text.noise import NoiseModel

        alphabet = _ALPHABETS[int(rng.integers(0, len(_ALPHABETS)))]
        length = int(rng.integers(1, self.max_len + 1))
        chars = rng.choice(list(alphabet), size=length)
        label = "".join(chars)
        if rng.random() < 0.3 and length >= 5:
            # Multi-token labels: spaces exercise token-level noise ops.
            split = int(rng.integers(1, length))
            label = label[:split] + " " + label[split:]
        noise = NoiseModel(
            max_edits=self.max_edits, seed=int(rng.integers(0, 2**31))
        )
        aliases = [noise.corrupt(label) for _ in range(self.num_aliases)]
        return label, aliases

    def shrink(
        self, case: tuple[str, list[str]]
    ) -> Iterator[tuple[str, list[str]]]:
        """Yield simpler pairs: halved label, then one alias dropped."""
        label, aliases = case
        if len(label) > 1:
            yield label[: len(label) // 2], aliases
        if aliases:
            yield label, aliases[:-1]


# -- parameter grids -------------------------------------------------------------


@dataclass(frozen=True)
class GridCase:
    """One sampled (k, block_size, num_shards) serving configuration."""

    k: int
    block_size: int
    num_shards: int


class GridStrategy:
    """Sampler over the k / block-size / shard-count grid.

    Includes the degenerate corners on purpose: ``k`` larger than any
    store the vector strategy emits, block size 1 (every row its own
    merge), and enough shards that some are empty for small stores —
    the ``k > ntotal``-on-some-shards edge from the merge bug.
    """

    ks: tuple[int, ...] = (1, 2, 5, 10, 100)
    blocks: tuple[int, ...] = (1, 3, 7, 64, 4096)
    shards: tuple[int, ...] = (1, 3, 8)

    def generate(self, rng: np.random.Generator) -> GridCase:
        """Draw one (k, block_size, num_shards) configuration."""
        return GridCase(
            k=int(rng.choice(self.ks)),
            block_size=int(rng.choice(self.blocks)),
            num_shards=int(rng.choice(self.shards)),
        )

    def shrink(self, case: GridCase) -> Iterator[GridCase]:
        """Yield cases with one axis collapsed to its unit corner."""
        if case.k > 1:
            yield replace(case, k=1)
        if case.block_size > 1:
            yield replace(case, block_size=1)
        if case.num_shards > 1:
            yield replace(case, num_shards=1)


class TupleStrategy:
    """Product of strategies: generates a tuple, shrinks one slot at a time."""

    def __init__(self, *strategies):
        if not strategies:
            raise ValueError("TupleStrategy needs at least one strategy")
        self.strategies = strategies

    def generate(self, rng: np.random.Generator) -> tuple:
        """Draw one case per child strategy, in declaration order."""
        return tuple(s.generate(rng) for s in self.strategies)

    def shrink(self, case: tuple) -> Iterator[tuple]:
        """Yield tuples with exactly one slot replaced by a shrunk case."""
        for slot, strategy in enumerate(self.strategies):
            shrink = getattr(strategy, "shrink", None)
            if shrink is None:
                continue
            for candidate in shrink(case[slot]):
                yield case[:slot] + (candidate,) + case[slot + 1 :]
