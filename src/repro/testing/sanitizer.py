"""Runtime lock-order sanitizer: the dynamic half of the REP7xx pass.

The static REP703 rule (:mod:`repro.analysis.concurrency`) flags
lock-order inversions it can prove from the AST; this module catches the
ones it cannot — locks reached through data structures, callbacks, or
dynamic dispatch — by *recording* the lock-order graph actually executed
while the property suites run, and failing the test the moment an edge
closes a cycle.

Design:

- :class:`TrackedLock` wraps a real ``threading.Lock`` and reports
  acquire/release to a :class:`LockOrderTracker`.
- :class:`LockOrderTracker` keeps a per-thread acquisition stack and a
  global edge set ``held → newly-acquired``; before adding an edge
  ``a → b`` it checks whether ``b`` already reaches ``a`` — if so, two
  call paths order these locks oppositely and a
  :class:`LockOrderViolation` is recorded.  Detection needs no actual
  interleaving: sequentially running ``A→B`` then ``B→A`` on one thread
  is enough, which keeps the sanitized suites deterministic.
- Locks are named by **creation site** (``file.py:lineno``), the dynamic
  mirror of the static rule's ``module.Class.attr`` canonicalisation:
  every lock born at one source line is one graph node, so sibling
  instances share ordering constraints exactly as REP703 assumes.
- :func:`install` monkeypatches ``threading.Lock`` with a factory that
  returns a :class:`TrackedLock` for locks created *in repro or test
  code* and a real lock otherwise (stdlib internals such as
  ``threading.Barrier`` would only add noise).  The conftest enables it
  when ``REPRO_SANITIZER=1`` and asserts no violations after each test,
  alongside a leaked-shm check via
  :func:`repro.index.shm.owned_segment_names`.
"""

from __future__ import annotations

import sys
import threading

__all__ = [
    "LockOrderTracker",
    "LockOrderViolation",
    "TrackedLock",
    "current_tracker",
    "install",
    "tracked_factory",
    "uninstall",
]


class LockOrderViolation(AssertionError):
    """Raised (or recorded) when a lock acquisition closes an order cycle."""


class LockOrderTracker:
    """Records the dynamic lock-order graph and detects inversions.

    Thread-safe: the graph and violation list live behind one real
    (untracked) meta-lock; the acquisition stack is thread-local.
    Violations are *recorded*, not raised at the acquisition site — a
    deadlock-prone ordering usually still works in the test process, and
    raising mid-``__enter__`` would poison unrelated teardown.  The
    conftest (or :meth:`check`) surfaces them at a safe point.
    """

    def __init__(self) -> None:
        # _REAL_LOCK, not threading.Lock: while the sanitizer is installed
        # the latter is the tracking factory, which would recurse (and the
        # meta-lock must never appear in the graph it guards).
        self._meta = _REAL_LOCK()
        self._edges: dict[str, set[str]] = {}
        self._violations: list[str] = []
        self._local = threading.local()

    # -- per-thread stack --------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held(self) -> tuple[str, ...]:
        """Locks the calling thread currently holds, oldest first."""
        return tuple(self._stack())

    # -- events ------------------------------------------------------------------

    def on_acquire(self, name: str) -> None:
        """Record that the calling thread acquired lock ``name``."""
        stack = self._stack()
        with self._meta:
            for held in stack:
                if held == name:
                    continue
                if self._reaches(name, held):
                    self._violations.append(
                        f"lock-order inversion: acquired `{name}` while "
                        f"holding `{held}`, but the recorded order "
                        f"already has `{name}` before `{held}`"
                    )
                self._edges.setdefault(held, set()).add(name)
                self._edges.setdefault(name, set())
        stack.append(name)

    def on_release(self, name: str) -> None:
        """Record a release (removes the newest matching stack entry)."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def _reaches(self, src: str, dst: str) -> bool:
        """Whether ``dst`` is reachable from ``src`` in the edge set."""
        seen: set[str] = set()
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))
        return False

    # -- results -----------------------------------------------------------------

    def edges(self) -> dict[str, set[str]]:
        """Copy of the recorded lock-order graph."""
        with self._meta:
            return {src: set(dsts) for src, dsts in self._edges.items()}

    def violations(self) -> list[str]:
        """Copy of the recorded inversion messages."""
        with self._meta:
            return list(self._violations)

    def check(self) -> None:
        """Raise :class:`LockOrderViolation` if any inversion was recorded."""
        found = self.violations()
        if found:
            raise LockOrderViolation(
                f"{len(found)} lock-order violation(s):\n"
                + "\n".join(f"  - {message}" for message in found)
            )

    def reset(self) -> None:
        """Forget the graph and violations (per-suite isolation)."""
        with self._meta:
            self._edges.clear()
            self._violations.clear()


class TrackedLock:
    """Drop-in ``threading.Lock`` reporting to a :class:`LockOrderTracker`."""

    __slots__ = ("_lock", "_tracker", "name")

    def __init__(self, tracker: LockOrderTracker, name: str):
        self._lock = _REAL_LOCK()  # see LockOrderTracker.__init__
        self._tracker = tracker
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock; tracked only when it succeeds."""
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._tracker.on_acquire(self.name)
        return acquired

    def release(self) -> None:
        """Release the underlying lock (untracked first).

        Untrack before the real release lands: from that moment another
        thread may acquire, and its stack must not see this entry as
        still held.
        """
        self._tracker.on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        """Whether the underlying lock is currently held."""
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked() else "unlocked"
        return f"<TrackedLock {self.name} ({state})>"


def _creation_site() -> str:
    """``file-tail.py:lineno`` of the frame that created the lock.

    Walks outward past this module's own frames (the factory functions
    below live here), so two call sites creating locks get two distinct
    graph nodes while every lock born at one line shares a node.
    """
    depth = 1
    while True:
        try:
            frame = sys._getframe(depth)
        except ValueError:  # pragma: no cover - interpreter startup only
            return "<unknown>:0"
        filename = frame.f_code.co_filename
        if filename != __file__:
            tail = filename.replace("\\", "/").rsplit("/", 1)[-1]
            return f"{tail}:{frame.f_lineno}"
        depth += 1


def tracked_factory(tracker: LockOrderTracker):
    """A ``threading.Lock``-compatible factory producing tracked locks.

    Every lock it creates is named by its creation site and reports to
    ``tracker``.  Suitable for targeted patching in tests
    (``monkeypatch.setattr(module, "Lock", tracked_factory(t))``).
    """

    def factory() -> TrackedLock:
        return TrackedLock(tracker, _creation_site())

    return factory


# -- global install (REPRO_SANITIZER=1) ------------------------------------------

_REAL_LOCK = threading.Lock
_INSTALLED: LockOrderTracker | None = None


def current_tracker() -> LockOrderTracker | None:
    """The globally installed tracker, or ``None``."""
    return _INSTALLED


def _global_factory(*args, **kwargs):
    """Replacement ``threading.Lock`` used while the sanitizer is installed.

    Only creation sites inside repro or test code are tracked; stdlib
    machinery (``threading.Barrier``, queues, executors) gets a real
    lock so its internal ordering never pollutes the recorded graph.
    """
    tracker = _INSTALLED
    site = _creation_site()
    if tracker is None or not ("repro" in site or "test" in site):
        return _REAL_LOCK(*args, **kwargs)
    return TrackedLock(tracker, site)


def install() -> LockOrderTracker:
    """Patch ``threading.Lock`` to track repo-created locks; idempotent."""
    global _INSTALLED
    if _INSTALLED is None:
        _INSTALLED = LockOrderTracker()
        threading.Lock = _global_factory
    return _INSTALLED


def uninstall() -> None:
    """Restore the real ``threading.Lock`` and drop the tracker."""
    global _INSTALLED
    threading.Lock = _REAL_LOCK
    _INSTALLED = None
