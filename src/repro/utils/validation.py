"""Lightweight argument-validation helpers.

These raise early, descriptive errors instead of letting bad configuration
surface as opaque numpy broadcasting failures deep inside training loops.
"""

from __future__ import annotations

from typing import Any

__all__ = ["check_positive", "check_probability", "check_type", "require"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float, allow_zero: bool = False) -> None:
    """Validate that a numeric parameter is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Validate ``isinstance(value, expected)`` with a readable error."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
