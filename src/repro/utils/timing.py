"""Wall-clock timing utilities used by the evaluation harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Timer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration in a human-friendly unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f}us"
    return f"{seconds * 1e9:.0f}ns"


class Timer:
    """Context manager measuring elapsed wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start


@dataclass
class Stopwatch:
    """Accumulates time across multiple start/stop windows.

    Used to instrument the lookup fraction of an annotation pipeline the way
    the paper instruments each system's lookup calls.
    """

    total: float = 0.0
    count: int = 0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Open a timing window."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Close the window; returns its duration and accumulates it."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        window = time.perf_counter() - self._started_at
        self._started_at = None
        self.total += window
        self.count += 1
        return window

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean duration per window (0.0 when never run)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulated totals."""
        self.total = 0.0
        self.count = 0
        self._started_at = None
