"""Wall-clock timing utilities used by the evaluation harness."""

from __future__ import annotations

import threading
import time

__all__ = ["Stopwatch", "Timer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration in a human-friendly unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f}us"
    return f"{seconds * 1e9:.0f}ns"


class Timer:
    """Context manager measuring elapsed wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start


class Stopwatch:
    """Accumulates time across multiple start/stop windows.

    Used to instrument the lookup fraction of an annotation pipeline the way
    the paper instruments each system's lookup calls.

    Thread-safe: each thread gets its own window (the serving engine's
    per-stage watches are entered by concurrent flushes), and totals
    accumulate under a lock — ``total`` is the *sum* of all windows, so
    overlapping windows from different threads each contribute fully.
    Re-entering from the same thread is still an error.
    """

    def __init__(self, total: float = 0.0, count: int = 0) -> None:
        self.total = total
        self.count = count
        self._lock = threading.Lock()
        self._window = threading.local()

    def __repr__(self) -> str:
        return f"Stopwatch(total={self.total!r}, count={self.count!r})"

    def start(self) -> None:
        """Open this thread's timing window."""
        if getattr(self._window, "started_at", None) is not None:
            raise RuntimeError("stopwatch already running")
        self._window.started_at = time.perf_counter()

    def stop(self) -> float:
        """Close this thread's window; returns and accumulates its duration."""
        started_at = getattr(self._window, "started_at", None)
        if started_at is None:
            raise RuntimeError("stopwatch is not running")
        window = time.perf_counter() - started_at
        self._window.started_at = None
        with self._lock:
            self.total += window
            self.count += 1
        return window

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean duration per window (0.0 when never run)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulated totals (this thread's open window too)."""
        with self._lock:
            self.total = 0.0
            self.count = 0
        self._window.started_at = None
