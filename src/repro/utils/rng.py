"""Deterministic randomness helpers.

Every stochastic component in the library (generators, model initialisation,
triplet mining, noise injection) accepts a seed or an already-constructed
``numpy.random.Generator``.  These helpers centralise that convention so that
experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngMixin", "as_rng", "derive_rng", "new_rng"]


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a new ``numpy.random.Generator`` from an optional seed."""
    return np.random.default_rng(seed)


def as_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed, ``Generator``, or ``None`` into a ``Generator``."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a numbered sub-stream.

    Components that fan out work (e.g. one stream per entity, per epoch)
    use derived generators so that adding a new consumer does not perturb
    the random sequence seen by existing ones.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (stream * 0x9E3779B97F4A7C15 % 2**63)
    return np.random.default_rng(seed)


class RngMixin:
    """Mixin giving a class a lazily-created ``self.rng`` generator."""

    _rng: np.random.Generator | None = None
    _seed: int | None = None

    def seed(self, seed: int | None) -> None:
        """Reset the generator to a fresh stream derived from ``seed``."""
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng(self._seed)
        return self._rng
