"""Shared utilities: seeded randomness, timing, and validation helpers."""

from repro.utils.rng import RngMixin, as_rng, derive_rng, new_rng
from repro.utils.timing import Stopwatch, Timer, format_duration
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_type,
    require,
)

__all__ = [
    "RngMixin",
    "Stopwatch",
    "Timer",
    "as_rng",
    "check_positive",
    "check_probability",
    "check_type",
    "derive_rng",
    "format_duration",
    "new_rng",
    "require",
]
