"""Declared array contracts: the shared half of the REP8xx pass.

A contract is a one-line, machine-readable signature for an array API::

    @array_contract("(nq, d) f32, k: int -> (nq, k) i64, (nq, k) f64")
    def search(queries, k): ...

Grammar (comma-separated entries, ``params -> returns``):

- **array entry** — ``(dims) dtype[::layout]``.  Dims are symbolic names
  (``nq``, ``d``), integer literals, ``_`` (unchecked), or a leading
  ``...`` (any number of leading axes; ``(...)`` alone means "any
  ndarray").  One symbol names one size: every occurrence across params
  and returns must agree.  A scalar ``int`` parameter's *name* is also a
  dim symbol, so ``k: int -> (nq, k) i64`` ties the return width to the
  argument.
- **dtype token** — ``f32 f64 i64 i32 u8 u64 bool`` (exact dtype),
  ``int`` (any integer), ``num`` (any numeric), ``any``.
- **layout** — ``::C`` (C-contiguous, the default: every strict kernel
  in this repo assumes it) or ``::any`` for coercing boundaries.
- **scalar entry** — ``name: int|float|str|bool|callable|any``.
- **returns** — array entries (two or more = a tuple), or one bare
  token (``None``, ``SearchResult``, ``any``) meaning *opaque*: the
  value is not array-checked.
- Entry names (``queries: (nq, d) f32``) are optional documentation;
  mapping onto parameters is purely positional, and a name that does
  not match the positionally-corresponding parameter is an import-time
  error, so contracts cannot drift from signatures silently.

Two consumers share this module (grammar consistency is the point):

- the **static pass** (:mod:`repro.analysis.arrays`) treats contracts as
  function summaries and propagates symbolic shape/dtype/layout facts
  through call sites;
- the **runtime validator** here makes the same decorator check real
  arrays at call time.  Mirroring :mod:`repro.testing.sanitizer`,
  violations are *recorded* on a :class:`ContractTracker` rather than
  raised mid-call (a shape bug usually still executes; raising inside a
  serving path would poison unrelated teardown) and surfaced per-test by
  the conftest when ``REPRO_ARRAYCHECK=1``.

Violations carry the static rule ids — REP801 shape/dim, REP802 dtype,
REP803 layout, REP804 sub-int64 id width — so cross-validation tests can
compare the two halves finding-for-finding.
"""

from __future__ import annotations

import functools
import inspect
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "ArrayContract",
    "ArraySpec",
    "ContractError",
    "ContractTracker",
    "ContractViolation",
    "ScalarSpec",
    "array_contract",
    "current_tracker",
    "dtype_verdict",
    "install",
    "parse_contract",
    "scoped_tracker",
    "uninstall",
]


class ContractError(ValueError):
    """Raised at import time for a malformed or misaligned contract."""


class ContractViolation(AssertionError):
    """Raised by :meth:`ContractTracker.check` when violations were recorded."""


# -- grammar ----------------------------------------------------------------------

#: dtype token -> accepted numpy dtype names (``None`` = computed set).
_EXACT_DTYPES: dict[str, str] = {
    "f32": "float32",
    "f64": "float64",
    "i64": "int64",
    "i32": "int32",
    "u8": "uint8",
    "u64": "uint64",
    "bool": "bool",
}

_INT_DTYPES = frozenset(
    {"int8", "int16", "int32", "int64", "uint8", "uint16", "uint32", "uint64"}
)

#: integer dtypes narrower than the id invariant (sub-64-bit -> REP804).
NARROW_INT_DTYPES = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)

_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})

_DTYPE_TOKENS = frozenset(_EXACT_DTYPES) | {"int", "num", "any"}

_SCALAR_KINDS = frozenset({"int", "float", "str", "bool", "callable", "any"})

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_ARRAY_RE = re.compile(
    r"^\((?P<dims>[^()]*)\)\s*(?P<dtype>[A-Za-z0-9]+)(?:::(?P<layout>C|any))?$"
)


@dataclass(frozen=True)
class ArraySpec:
    """One declared array: symbolic dims + dtype token + layout."""

    dims: tuple[str | int, ...]  # symbols, ints, "_", or a leading "..."
    dtype: str
    layout: str  # "C" or "any"
    name: str | None = None

    def describe(self) -> str:
        """The spec back in grammar form (for messages)."""
        dims = ", ".join(str(d) for d in self.dims)
        layout = "" if self.layout == "C" else f"::{self.layout}"
        return f"({dims}) {self.dtype}{layout}"


@dataclass(frozen=True)
class ScalarSpec:
    """One declared non-array parameter (``k: int``)."""

    kind: str
    name: str | None = None


@dataclass(frozen=True)
class ArrayContract:
    """A parsed contract: positional param specs + return specs."""

    text: str
    params: tuple[ArraySpec | ScalarSpec, ...]
    returns: tuple[ArraySpec, ...] | None  # None = opaque (unchecked)


def _split_top(text: str) -> list[str]:
    """Split on commas outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ContractError(f"unbalanced ')' in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ContractError(f"unbalanced '(' in {text!r}")
    parts.append("".join(current))
    return parts


def _split_name(entry: str) -> tuple[str | None, str]:
    """Strip an optional ``name:`` prefix (``::`` is the layout marker)."""
    index = entry.find(":")
    if index < 0 or entry[index : index + 2] == "::":
        return None, entry
    name = entry[:index].strip()
    if not _IDENT_RE.match(name):
        raise ContractError(f"invalid entry name {name!r} in {entry!r}")
    return name, entry[index + 1 :].strip()


def _parse_dims(text: str, entry: str) -> tuple[str | int, ...]:
    tokens = [t.strip() for t in text.split(",")]
    if len(tokens) > 1 and tokens[-1] == "":  # trailing comma: "(d,)"
        tokens = tokens[:-1]
    if tokens == [""]:
        raise ContractError(f"empty dims in {entry!r}; use a scalar kind")
    dims: list[str | int] = []
    for position, token in enumerate(tokens):
        if token == "...":
            if position != 0:
                raise ContractError(f"'...' must lead the dims in {entry!r}")
            dims.append("...")
        elif token == "_":
            dims.append("_")
        elif token.lstrip("-").isdigit():
            dims.append(int(token))
        elif _IDENT_RE.match(token):
            dims.append(token)
        else:
            raise ContractError(f"invalid dim {token!r} in {entry!r}")
    return tuple(dims)


def _parse_entry(entry: str, *, returns: bool) -> ArraySpec | ScalarSpec:
    stripped = entry.strip()
    if not stripped:
        raise ContractError(f"empty entry in contract (stray comma?)")
    name, spec = _split_name(stripped)
    if returns and name is not None:
        raise ContractError(f"return entries cannot be named: {entry!r}")
    if spec.startswith("("):
        match = _ARRAY_RE.match(spec)
        if match is None:
            raise ContractError(f"invalid array spec {spec!r}")
        dtype = match.group("dtype")
        if dtype not in _DTYPE_TOKENS:
            raise ContractError(
                f"unknown dtype token {dtype!r} in {spec!r} "
                f"(known: {', '.join(sorted(_DTYPE_TOKENS))})"
            )
        return ArraySpec(
            dims=_parse_dims(match.group("dims"), spec),
            dtype=dtype,
            layout=match.group("layout") or "C",
            name=name,
        )
    if returns:
        raise ContractError(f"invalid return spec {spec!r}")
    if spec not in _SCALAR_KINDS:
        raise ContractError(
            f"unknown scalar kind {spec!r} "
            f"(known: {', '.join(sorted(_SCALAR_KINDS))})"
        )
    return ScalarSpec(kind=spec, name=name)


def parse_contract(text: str) -> ArrayContract:
    """Parse the contract grammar; raises :class:`ContractError`."""
    if text.count("->") != 1:
        raise ContractError(f"contract needs exactly one '->': {text!r}")
    left, right = text.split("->")
    params: list[ArraySpec | ScalarSpec] = []
    if left.strip():
        for entry in _split_top(left):
            params.append(_parse_entry(entry, returns=False))
    right = right.strip()
    if not right:
        raise ContractError(f"missing return spec (use 'None'): {text!r}")
    entries = [e.strip() for e in _split_top(right)]
    if any(e.startswith("(") for e in entries):
        if not all(e.startswith("(") for e in entries):
            raise ContractError(
                f"returns mix array specs and opaque tokens: {text!r}"
            )
        returns: tuple[ArraySpec, ...] | None = tuple(
            _parse_entry(e, returns=True)  # type: ignore[misc]
            for e in entries
        )
    else:
        if len(entries) != 1:
            raise ContractError(f"multiple opaque return tokens: {text!r}")
        returns = None  # opaque: "None", "SearchResult", "any", ...
    return ArrayContract(text=text, params=tuple(params), returns=returns)


# -- shared dtype verdicts ---------------------------------------------------------


def dtype_verdict(token: str, actual: str) -> tuple[str, str] | None:
    """``(rule, why)`` when dtype ``actual`` violates ``token``, else ``None``.

    Shared by the static pass and the runtime validator so both halves
    classify identically: a sub-int64 integer where ``i64`` is declared
    is the id-width overflow hazard (REP804); every other mismatch is a
    dtype-contract violation (REP802).
    """
    if token == "any":
        return None
    if token == "num":
        if actual in _INT_DTYPES or actual in _FLOAT_DTYPES:
            return None
        return ("REP802", f"declared numeric, got {actual}")
    if token == "int":
        if actual in _INT_DTYPES:
            return None
        return ("REP802", f"declared an integer dtype, got {actual}")
    if token == "i64":
        if actual == "int64":
            return None
        if actual in NARROW_INT_DTYPES:
            return (
                "REP804",
                f"declared i64 but carries {actual}: id arithmetic can "
                "overflow below int64",
            )
        return ("REP802", f"declared i64, got {actual}")
    expected = _EXACT_DTYPES[token]
    if actual == expected:
        return None
    return ("REP802", f"declared {token} ({expected}), got {actual}")


# -- runtime tracker ---------------------------------------------------------------


class ContractTracker:
    """Records runtime contract violations (``"REP80x message"`` strings).

    Thread-safe; like the lock-order sanitizer's tracker, violations are
    recorded rather than raised at the call site and surfaced at a safe
    point (:meth:`check`, or the conftest's per-test assert).
    """

    def __init__(self) -> None:
        # RLock, not Lock: the lock-order sanitizer may have patched
        # threading.Lock by the time a tracker is built, and this
        # meta-lock must never appear in the graph it would observe.
        self._meta = threading.RLock()
        self._violations: list[str] = []

    def record(self, rule: str, message: str) -> None:
        """Record one violation under static rule id ``rule``."""
        with self._meta:
            self._violations.append(f"{rule} {message}")

    def violations(self) -> list[str]:
        """Copy of the recorded violation messages."""
        with self._meta:
            return list(self._violations)

    def rules_seen(self) -> set[str]:
        """The distinct REP80x ids recorded so far."""
        return {message.split(" ", 1)[0] for message in self.violations()}

    def check(self) -> None:
        """Raise :class:`ContractViolation` if anything was recorded."""
        found = self.violations()
        if found:
            raise ContractViolation(
                f"{len(found)} array-contract violation(s):\n"
                + "\n".join(f"  - {message}" for message in found)
            )

    def reset(self) -> None:
        """Forget recorded violations (per-suite isolation)."""
        with self._meta:
            self._violations.clear()


_INSTALLED: ContractTracker | None = None


def current_tracker() -> ContractTracker | None:
    """The globally installed tracker, or ``None``."""
    return _INSTALLED


def install() -> ContractTracker:
    """Enable runtime validation process-wide; idempotent."""
    global _INSTALLED
    if _INSTALLED is None:
        _INSTALLED = ContractTracker()
    return _INSTALLED


def uninstall() -> None:
    """Disable runtime validation and drop the tracker."""
    global _INSTALLED
    _INSTALLED = None


@contextmanager
def scoped_tracker():
    """A fresh tracker installed for the ``with`` body only.

    Restores whatever was installed before (including ``None``), so
    violation-seeding tests compose with a session-wide
    ``REPRO_ARRAYCHECK=1`` install.
    """
    global _INSTALLED
    previous = _INSTALLED
    tracker = ContractTracker()
    _INSTALLED = tracker
    try:
        yield tracker
    finally:
        _INSTALLED = previous


# -- runtime validation ------------------------------------------------------------


def _check_scalar(
    tracker: ContractTracker,
    where: str,
    label: str,
    spec: ScalarSpec,
    value: object,
    bindings: dict[str, int],
    param: str,
) -> None:
    import numpy as np

    if isinstance(value, (bool, np.bool_)):
        ok = spec.kind in ("bool", "any")
    elif isinstance(value, (int, np.integer)):
        ok = spec.kind in ("int", "float", "any")
        bindings.setdefault(param, int(value))  # scalar name doubles as a dim
    elif isinstance(value, (float, np.floating)):
        ok = spec.kind in ("float", "any")
    elif isinstance(value, str):
        ok = spec.kind in ("str", "any")
    elif callable(value):
        ok = spec.kind in ("callable", "any")
    else:
        ok = spec.kind == "any" or value is None
    if not ok:
        tracker.record(
            "REP802",
            f"{where}: {label} declared {spec.kind}, "
            f"got {type(value).__name__}",
        )


def _check_array(
    tracker: ContractTracker,
    where: str,
    label: str,
    spec: ArraySpec,
    value: object,
    bindings: dict[str, int],
) -> None:
    import numpy as np

    if value is None:  # optional arrays opt out per call
        return
    if not isinstance(value, np.ndarray):
        tracker.record(
            "REP801",
            f"{where}: {label} declared {spec.describe()}, "
            f"got {type(value).__name__}",
        )
        return
    dims = spec.dims
    if dims and dims[0] == "...":
        fixed = dims[1:]
        if value.ndim < len(fixed):
            tracker.record(
                "REP801",
                f"{where}: {label} declared {spec.describe()}, "
                f"got shape {value.shape}",
            )
            fixed = ()
        pairs = list(zip(fixed, value.shape[len(value.shape) - len(fixed) :]))
    elif value.ndim != len(dims):
        tracker.record(
            "REP801",
            f"{where}: {label} declared {len(dims)}-d "
            f"{spec.describe()}, got shape {value.shape}",
        )
        pairs = []
    else:
        pairs = list(zip(dims, value.shape))
    for dim, size in pairs:
        if dim == "_":
            continue
        if isinstance(dim, int):
            if size != dim:
                tracker.record(
                    "REP801",
                    f"{where}: {label} declared {spec.describe()}, "
                    f"got shape {value.shape}",
                )
                break
            continue
        bound = bindings.get(dim)
        if bound is None:
            bindings[dim] = int(size)
        elif bound != size:
            tracker.record(
                "REP801",
                f"{where}: {label} dim '{dim}' already bound to {bound}, "
                f"got {size} (shape {value.shape})",
            )
            break
    verdict = dtype_verdict(spec.dtype, value.dtype.name)
    if verdict is not None:
        rule, why = verdict
        tracker.record(rule, f"{where}: {label} {why}")
    if spec.layout == "C" and not value.flags.c_contiguous:
        tracker.record(
            "REP803",
            f"{where}: {label} declared C-contiguous "
            f"{spec.describe()}, got a non-contiguous array",
        )


def _check_returns(
    tracker: ContractTracker,
    where: str,
    specs: tuple[ArraySpec, ...],
    result: object,
    bindings: dict[str, int],
) -> None:
    if len(specs) == 1:
        _check_array(tracker, where, "return value", specs[0], result, bindings)
        return
    if not isinstance(result, (tuple, list)) or len(result) != len(specs):
        tracker.record(
            "REP801",
            f"{where}: declared {len(specs)} array returns, "
            f"got {type(result).__name__}",
        )
        return
    for index, (spec, value) in enumerate(zip(specs, result)):
        _check_array(
            tracker, where, f"return value {index}", spec, value, bindings
        )


def array_contract(spec: str):
    """Attach a parsed :class:`ArrayContract` and the runtime validator.

    The contract is parsed (and aligned against the signature) at import
    time, so a malformed spec or a misnamed entry fails loudly.  The
    wrapper is a no-op until :func:`install` (``REPRO_ARRAYCHECK=1`` via
    the conftest) provides a tracker.
    """
    contract = parse_contract(spec)

    def decorate(func):
        signature = inspect.signature(func)
        names = [
            p.name
            for p in signature.parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        ]
        offset = 1 if names and names[0] in ("self", "cls") else 0
        positional = names[offset:]
        if len(contract.params) > len(positional):
            raise ContractError(
                f"{func.__qualname__}: contract declares "
                f"{len(contract.params)} parameters, signature has "
                f"{len(positional)}"
            )
        for index, entry in enumerate(contract.params):
            if entry.name is not None and entry.name != positional[index]:
                raise ContractError(
                    f"{func.__qualname__}: contract names entry {index} "
                    f"{entry.name!r} but parameter {index} is "
                    f"{positional[index]!r}"
                )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracker = _INSTALLED
            if tracker is None:
                return func(*args, **kwargs)
            where = func.__qualname__
            bindings: dict[str, int] = {}
            for index, entry in enumerate(contract.params):
                param = positional[index]
                arg_index = index + offset
                if arg_index < len(args):
                    value = args[arg_index]
                elif param in kwargs:
                    value = kwargs[param]
                else:
                    continue  # default used; nothing to validate
                label = f"parameter '{param}'"
                if isinstance(entry, ScalarSpec):
                    _check_scalar(
                        tracker, where, label, entry, value, bindings, param
                    )
                else:
                    _check_array(tracker, where, label, entry, value, bindings)
            result = func(*args, **kwargs)
            if contract.returns is not None:
                _check_returns(
                    tracker, where, contract.returns, result, bindings
                )
            return result

        wrapper.__array_contract__ = contract
        return wrapper

    return decorate
