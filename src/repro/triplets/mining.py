"""Offline triplet mining over a knowledge graph.

For each entity the miner emits up to ``triplets_per_entity`` triplets
``(anchor, positive, negative)`` with three positive sources (paper
Section III-B):

1. **aliases** — every synonym of the entity (``(germany, deutschland, *)``),
2. **typos** — noise-model corruptions of the label
   (``(germany, germny, *)``), injecting the syntactic inductive signal,
3. **type neighbours** — labels of same-type entities
   (``(germany, france, *)``), a lightweight semantic-relatedness signal.

Negatives are labels of uniformly random other entities (``blahX`` in the
paper's notation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.text.noise import NoiseModel
from repro.text.tokenize import normalize
from repro.utils.rng import as_rng

__all__ = ["Triplet", "TripletMiner", "TripletMiningConfig"]


class Triplet(NamedTuple):
    """An (anchor, positive, negative) training example."""

    anchor: str
    positive: str
    negative: str


@dataclass(frozen=True)
class TripletMiningConfig:
    """Mining parameters.

    ``alias_fraction`` / ``typo_fraction`` / ``type_fraction`` control the
    positive-source mixture; they are renormalised if they do not sum to 1.
    The paper's default budget is 100 triplets per entity — alias positives
    are enumerated first (at most ~50 exist for 95 % of entities) and the
    remaining budget goes to syntactic perturbations.
    """

    triplets_per_entity: int = 100
    alias_fraction: float = 0.4
    typo_fraction: float = 0.45
    type_fraction: float = 0.15
    seed: int = 31

    def __post_init__(self) -> None:
        if self.triplets_per_entity < 1:
            raise ValueError("triplets_per_entity must be >= 1")
        fractions = (self.alias_fraction, self.typo_fraction, self.type_fraction)
        if any(f < 0 for f in fractions) or sum(fractions) <= 0:
            raise ValueError("fractions must be non-negative with positive sum")


class TripletMiner:
    """Generates offline training triplets from a knowledge graph."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        config: TripletMiningConfig | None = None,
        noise: NoiseModel | None = None,
    ):
        self.kg = kg
        self.config = config or TripletMiningConfig()
        self.rng = as_rng(self.config.seed)
        self.noise = noise or NoiseModel(seed=self.rng)
        self._labels = [normalize(e.label) for e in kg.entities()]
        self._entity_ids = kg.entity_ids()
        if not self._labels:
            raise ValueError("cannot mine triplets from an empty knowledge graph")

    def mine(self) -> list[Triplet]:
        """Mine triplets for every entity in the graph."""
        triplets: list[Triplet] = []
        for entity_id in self._entity_ids:
            triplets.extend(self.mine_entity(entity_id))
        return triplets

    def mine_entity(self, entity_id: str) -> list[Triplet]:
        """Mine up to ``triplets_per_entity`` triplets for one entity."""
        entity = self.kg.entity(entity_id)
        anchor = normalize(entity.label)
        budget = self.config.triplets_per_entity
        fractions = np.asarray(
            (
                self.config.alias_fraction,
                self.config.typo_fraction,
                self.config.type_fraction,
            ),
            dtype=np.float64,
        )
        fractions = fractions / fractions.sum()
        alias_budget = int(round(budget * fractions[0]))
        type_budget = int(round(budget * fractions[2]))

        positives: list[str] = []
        # 1. Alias positives: enumerate all, capped at the alias budget;
        #    leftover alias budget rolls into typo perturbations.
        aliases = [normalize(a) for a in entity.aliases if normalize(a) != anchor]
        positives.extend(aliases[:alias_budget])

        # 3. Type-neighbour positives.
        positives.extend(self._type_positives(entity, type_budget))

        # 2. Typo positives fill whatever budget remains.
        typo_budget = budget - len(positives)
        if typo_budget > 0:
            positives.extend(self.noise.corrupt_many(anchor, typo_budget))

        return [
            Triplet(anchor, positive, self._random_negative(anchor, positive))
            for positive in positives[:budget]
        ]

    # -- internals ---------------------------------------------------------------

    def _type_positives(self, entity, budget: int) -> list[str]:
        if budget <= 0 or not entity.type_ids:
            return []
        type_id = entity.type_ids[0]
        peers = [
            eid
            for eid in self.kg.entities_of_type(type_id)
            if eid != entity.entity_id
        ]
        if not peers:
            return []
        out: list[str] = []
        for _ in range(budget):
            peer = peers[int(self.rng.integers(0, len(peers)))]
            out.append(normalize(self.kg.entity(peer).label))
        return out

    def _random_negative(self, anchor: str, positive: str) -> str:
        """A random entity label distinct from both anchor and positive."""
        for _ in range(16):
            label = self._labels[int(self.rng.integers(0, len(self._labels)))]
            if label != anchor and label != positive:
                return label
        # Pathologically homogeneous graph: fall back to a synthetic token.
        return anchor + " negative"
