"""Triplet mining (paper Section III-B).

Offline mining draws positives from aliases, synthetic typo perturbations,
and same-type neighbours, with negatives sampled from random entity labels;
online mining (second half of training) filters batches down to hard and
semi-hard triplets.
"""

from repro.triplets.mining import Triplet, TripletMiner, TripletMiningConfig
from repro.triplets.online import select_hard_triplets, split_by_hardness

__all__ = [
    "Triplet",
    "TripletMiner",
    "TripletMiningConfig",
    "select_hard_triplets",
    "split_by_hardness",
]
