"""Online hard / semi-hard triplet selection (paper Section III-B).

Given current embeddings, a triplet ``(a, p, n)`` with margin ``m`` is:

- **easy** when ``d(a,p) + m <= d(a,n)`` (zero loss; skipped),
- **semi-hard** when ``d(a,p) < d(a,n) < d(a,p) + m``,
- **hard** when ``d(a,n) <= d(a,p)``.

The second half of EmbLookup's training keeps only the hard and semi-hard
triplets of each epoch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_hard_triplets", "split_by_hardness"]


def _check_shapes(
    anchors: np.ndarray, positives: np.ndarray, negatives: np.ndarray
) -> None:
    if not (anchors.shape == positives.shape == negatives.shape):
        raise ValueError(
            "anchor/positive/negative embeddings must share a shape, got "
            f"{anchors.shape}, {positives.shape}, {negatives.shape}"
        )
    if anchors.ndim != 2:
        raise ValueError(f"embeddings must be 2-D, got {anchors.ndim}-D")


def split_by_hardness(
    anchors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    margin: float = 1.0,
) -> dict[str, np.ndarray]:
    """Partition triplet indices into easy / semi-hard / hard sets."""
    _check_shapes(anchors, positives, negatives)
    d_pos = ((anchors - positives) ** 2).sum(axis=1)
    d_neg = ((anchors - negatives) ** 2).sum(axis=1)
    hard = d_neg <= d_pos
    easy = d_pos + margin <= d_neg
    semi_hard = ~hard & ~easy
    return {
        "easy": np.flatnonzero(easy),
        "semi_hard": np.flatnonzero(semi_hard),
        "hard": np.flatnonzero(hard),
    }


def select_hard_triplets(
    anchors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    margin: float = 1.0,
) -> np.ndarray:
    """Indices of triplets with non-zero loss (hard + semi-hard)."""
    parts = split_by_hardness(anchors, positives, negatives, margin)
    return np.sort(np.concatenate([parts["hard"], parts["semi_hard"]]))
