"""Inverted-file index with flat (uncompressed) posting lists.

FAISS ``IndexIVFFlat`` equivalent: a coarse k-means quantizer partitions the
space into ``nlist`` cells; queries probe only the ``nprobe`` nearest cells.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.kmeans import KMeans, _squared_distances
from repro.utils.contracts import array_contract
from repro.utils.rng import as_rng

__all__ = ["IVFFlatIndex"]


class IVFFlatIndex(VectorIndex):
    """Coarse-quantized exact search over probed cells.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    nlist:
        Number of coarse cells.
    nprobe:
        Default number of cells scanned per query (overridable per search).
    """

    def __init__(
        self,
        dim: int,
        nlist: int = 64,
        nprobe: int = 8,
        seed: int | np.random.Generator | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if nlist <= 0:
            raise ValueError(f"nlist must be positive, got {nlist}")
        if not 1 <= nprobe <= nlist:
            raise ValueError(f"nprobe must be in [1, {nlist}], got {nprobe}")
        self.dim = dim
        self.nlist = nlist
        self.nprobe = nprobe
        self.rng = as_rng(seed)
        self._quantizer: KMeans | None = None
        self._lists: list[list[int]] = [[] for _ in range(nlist)]
        self._store = GrowBuffer(dim, np.float32)

    @property
    def is_trained(self) -> bool:
        return self._quantizer is not None

    @property
    def ntotal(self) -> int:
        return len(self._store)

    @property
    def _vectors(self) -> np.ndarray:
        return self._store.view

    @array_contract("vectors: (..., d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        vectors = self._check_vectors(vectors, "training vectors")
        self._quantizer = KMeans(self.nlist, seed=self.rng).fit(vectors)

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        if self._quantizer is None:
            raise RuntimeError("IVFFlatIndex.add called before train()")
        vectors = self._check_vectors(vectors, "vectors")
        start = self.ntotal
        cells = self._quantizer.predict(vectors)
        for offset, cell in enumerate(cells):
            self._lists[int(cell)].append(start + offset)
        self._store.append(vectors)

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> SearchResult:
        if self._quantizer is None:
            raise RuntimeError("IVFFlatIndex.search called before train()")
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        nprobe = nprobe if nprobe is not None else self.nprobe
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe must be in [1, {self.nlist}], got {nprobe}")

        ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Distance accumulator in the SearchResult contract, not storage.
        distances = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        if self.ntotal == 0:
            return SearchResult(ids=ids, distances=distances)

        cell_d = self._quantizer.transform(queries)  # (nq, nlist)
        probe_cells = np.argsort(cell_d, axis=1)[:, :nprobe]
        for qi in range(len(queries)):
            candidates: list[int] = []
            for cell in probe_cells[qi].tolist():
                candidates.extend(self._lists[cell])
            if not candidates:
                continue
            cand_ids = np.asarray(candidates, dtype=np.int64)
            d = _squared_distances(
                queries[qi : qi + 1], self._vectors[cand_ids]
            ).ravel()
            take = min(k, len(cand_ids))
            order = np.argsort(d, kind="stable")[:take]
            ids[qi, :take] = cand_ids[order]
            distances[qi, :take] = d[order]
        return SearchResult(ids=ids, distances=distances)

    def memory_bytes(self) -> int:
        centroid_bytes = (
            self._quantizer.centroids.nbytes if self._quantizer else 0
        )
        list_bytes = sum(len(lst) for lst in self._lists) * 8
        return self._store.nbytes() + centroid_bytes + list_bytes
