"""HNSW: hierarchical navigable small-world graph index (Malkov & Yashunin).

The paper's Section III-C shortlists FAISS, nmslib, and annoy as
approximate-similarity-search libraries; nmslib's flagship index is HNSW.
This is a from-scratch implementation of the algorithm:

- every vector is inserted with a geometrically-sampled maximum layer;
- each layer holds a navigable small-world graph with at most ``m``
  neighbours per node (``m0 = 2m`` on the ground layer);
- search greedily descends from the top layer's entry point, then runs a
  best-first beam of width ``ef`` on the ground layer.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.utils.rng import as_rng
from repro.utils.contracts import array_contract

__all__ = ["HNSWIndex"]


class HNSWIndex(VectorIndex):
    """Graph-based approximate nearest-neighbour index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Max neighbours per node on upper layers (ground layer keeps 2m).
    ef_construction:
        Beam width while inserting.
    ef_search:
        Default beam width while querying (>= k for good recall).
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: int | np.random.Generator | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        if ef_construction < 1 or ef_search < 1:
            raise ValueError("ef_construction and ef_search must be >= 1")
        self.dim = dim
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.rng = as_rng(seed)
        self._level_scale = 1.0 / np.log(m)
        self._store = GrowBuffer(dim, np.float32)
        #: per node: list of neighbour lists, one per layer (0 = ground).
        self._neighbours: list[list[list[int]]] = []
        self._entry_point: int | None = None
        self._max_layer = -1

    @property
    def ntotal(self) -> int:
        return len(self._store)

    @property
    def _vectors(self) -> np.ndarray:
        return self._store.view

    # -- distance helpers ---------------------------------------------------------

    def _distance(self, a: np.ndarray, node: int) -> float:
        diff = self._vectors[node].astype(np.float64) - a  # repro: noqa[REP102] f64 distance keeps graph ties platform-stable
        return float((diff * diff).sum())

    # -- insertion -----------------------------------------------------------------

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        vectors = self._check_vectors(vectors, "vectors")
        if len(vectors) == 0:
            return
        start = self.ntotal
        # Amortized doubling buffer: O(n) total copying across any add
        # pattern, versus O(n^2) for a per-call np.concatenate.
        self._store.append(vectors)
        for node in range(start, self.ntotal):
            self._insert(node)

    def _sample_level(self) -> int:
        return int(-np.log(max(self.rng.random(), 1e-12)) * self._level_scale)

    def _insert(self, node: int) -> None:
        vector = self._vectors[node]
        level = self._sample_level()
        self._neighbours.append([[] for _ in range(level + 1)])

        if self._entry_point is None:
            self._entry_point = node
            self._max_layer = level
            return

        query = vector.astype(np.float64)  # repro: noqa[REP102] f64 distance keeps graph ties platform-stable
        current = self._entry_point
        # Greedy descent through layers above the new node's level.
        for layer in range(self._max_layer, level, -1):
            current = self._greedy_step(query, current, layer)

        # Insert with beam search on each shared layer.
        for layer in range(min(level, self._max_layer), -1, -1):
            candidates = self._search_layer(
                query, [current], layer, self.ef_construction
            )
            limit = self.m * 2 if layer == 0 else self.m
            chosen = self._select_heuristic(sorted(candidates), limit)
            self._neighbours[node][layer] = list(chosen)
            for other in chosen:
                links = self._neighbours[other][layer]
                links.append(node)
                if len(links) > limit:
                    other_vec = self._vectors[other].astype(np.float64)  # repro: noqa[REP102] f64 distance keeps graph ties platform-stable
                    ranked = sorted(
                        (self._distance(other_vec, x), x) for x in links
                    )
                    # Heuristic re-selection, but never evict the link to
                    # the brand-new node — dropping it is what disconnects
                    # dense clusters from the rest of the graph.
                    kept = self._select_heuristic(ranked, limit)
                    if node not in kept:
                        kept[-1] = node
                    self._neighbours[other][layer] = kept
            current = chosen[0] if chosen else current

        if level > self._max_layer:
            self._max_layer = level
            self._entry_point = node

    def _select_heuristic(
        self, ranked: list[tuple[float, int]], limit: int
    ) -> list[int]:
        """Malkov & Yashunin's neighbour-selection heuristic.

        A candidate is kept only when it is closer to the base point than
        to every already-selected neighbour — preferring *diverse*
        directions over a clique of mutual near-duplicates, which is what
        keeps distant clusters navigable.
        """
        selected: list[int] = []
        for d_base, candidate in ranked:
            if len(selected) == limit:
                break
            cand_vec = self._vectors[candidate].astype(np.float64)  # repro: noqa[REP102] f64 distance keeps graph ties platform-stable
            dominated = any(
                self._distance(cand_vec, kept) < d_base for kept in selected
            )
            if not dominated:
                selected.append(candidate)
        if len(selected) < limit:
            # Back-fill with the nearest skipped candidates.
            chosen = set(selected)
            for _, candidate in ranked:
                if len(selected) == limit:
                    break
                if candidate not in chosen:
                    selected.append(candidate)
                    chosen.add(candidate)
        return selected

    def _greedy_step(self, query: np.ndarray, start: int, layer: int) -> int:
        current = start
        current_d = self._distance(query, current)
        improved = True
        while improved:
            improved = False
            for neighbour in self._neighbours[current][layer] if layer < len(
                self._neighbours[current]
            ) else []:
                d = self._distance(query, neighbour)
                if d < current_d:
                    current, current_d = neighbour, d
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry_points: list[int], layer: int, ef: int
    ) -> list[tuple[float, int]]:
        """Best-first beam search; returns (distance, node) pairs."""
        visited: set[int] = set(entry_points)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []  # max-heap via negation
        for point in entry_points:
            d = self._distance(query, point)
            heapq.heappush(candidates, (d, point))
            heapq.heappush(results, (-d, point))
        while candidates:
            d, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if d > worst and len(results) >= ef:
                break
            node_layers = self._neighbours[node]
            neighbours = node_layers[layer] if layer < len(node_layers) else []
            for neighbour in neighbours:
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                nd = self._distance(query, neighbour)
                worst = -results[0][0]
                if len(results) < ef or nd < worst:
                    heapq.heappush(candidates, (nd, neighbour))
                    heapq.heappush(results, (-nd, neighbour))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-negd, node) for negd, node in results]

    # -- query -----------------------------------------------------------------------

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self, queries: np.ndarray, k: int, ef: int | None = None
    ) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        ef = max(ef if ef is not None else self.ef_search, k)
        ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Distance accumulator in the SearchResult contract, not storage.
        distances = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        if self._entry_point is None:
            return SearchResult(ids=ids, distances=distances)

        for qi in range(len(queries)):
            query = queries[qi].astype(np.float64)  # repro: noqa[REP102] f64 distance keeps graph ties platform-stable
            current = self._entry_point
            for layer in range(self._max_layer, 0, -1):
                current = self._greedy_step(query, current, layer)
            found = self._search_layer(query, [current], 0, ef)
            found.sort()
            take = min(k, len(found))
            for slot in range(take):
                distances[qi, slot], ids[qi, slot] = found[slot]
        return SearchResult(ids=ids, distances=distances)

    def memory_bytes(self) -> int:
        link_bytes = sum(
            8 * len(layer) for node in self._neighbours for layer in node
        )
        return self._store.nbytes() + link_bytes
