"""PCA dimensionality reduction — the Figure 5 compression alternative.

The paper compares PQ against PCA at matched storage budgets: a vector
compressed to ``b`` bytes keeps ``b / 4`` float32 principal components.
"""

from __future__ import annotations

import numpy as np

from repro.utils.contracts import array_contract

__all__ = ["PCATransform"]


class PCATransform:
    """Learns a mean-centred orthogonal projection to ``n_components`` dims."""

    def __init__(self, n_components: int):
        if n_components <= 0:
            raise ValueError(
                f"n_components must be positive, got {n_components}"
            )
        self.n_components = n_components
        self.mean: np.ndarray | None = None
        self.components: np.ndarray | None = None  # (n_components, dim)
        self.explained_variance: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self.components is not None

    @array_contract("vectors: (n, d) num::any -> any")
    def train(self, vectors: np.ndarray) -> "PCATransform":
        """Fit on ``(n, d)`` data via SVD of the centred matrix.

        Fitting runs in float64 on purpose: the SVD of a centred matrix
        loses orthogonality in float32 accumulation, and training is a
        one-time cost.  Everything stored for serving is cast back to
        float32 by the callers of :meth:`apply`/:meth:`inverse`.
        """
        vectors = np.asarray(vectors, dtype=np.float64)  # repro: noqa[REP102] f64 SVD numerics by design
        if vectors.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {vectors.shape}")
        n, d = vectors.shape
        if self.n_components > d:
            raise ValueError(
                f"n_components {self.n_components} exceeds dimensionality {d}"
            )
        if n < 2:
            raise ValueError("PCA needs at least two training vectors")
        self.mean = vectors.mean(axis=0)
        centred = vectors - self.mean
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        self.components = vt[: self.n_components]
        self.explained_variance = (singular_values[: self.n_components] ** 2) / (
            n - 1
        )
        return self

    @array_contract("vectors: (n, d) num::any -> (n, ncomp) f32")
    def apply(self, vectors: np.ndarray) -> np.ndarray:
        """Project ``(n, d)`` vectors to ``(n, n_components)`` float32."""
        if self.components is None or self.mean is None:
            raise RuntimeError("PCATransform.apply called before train()")
        # Project in float64 to match the training numerics, return f32.
        vectors = np.asarray(vectors, dtype=np.float64)  # repro: noqa[REP102] f64 projection, f32 output
        return ((vectors - self.mean) @ self.components.T).astype(np.float32)

    @array_contract("projected: (n, ncomp) num::any -> (n, d) f32")
    def inverse(self, projected: np.ndarray) -> np.ndarray:
        """Best-effort reconstruction back to the original space."""
        if self.components is None or self.mean is None:
            raise RuntimeError("PCATransform.inverse called before train()")
        # Reconstruct in float64 to match the training numerics, return f32.
        projected = np.asarray(projected, dtype=np.float64)  # repro: noqa[REP102] f64 reconstruction, f32 output
        return (projected @ self.components + self.mean).astype(np.float32)

    def bytes_per_vector(self) -> int:
        """Storage cost: 4 bytes per retained component."""
        return 4 * self.n_components
