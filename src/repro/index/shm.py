"""Shared-memory segment registry for zero-copy shard payloads.

The process-parallel executor of :class:`repro.index.sharded.ShardedIndex`
ships each shard's bulk payload (flat vectors, PQ codes, PQ codebooks) to
its worker process through ``multiprocessing.shared_memory`` instead of
pickling it over the pipe: the parent copies each array into a named
segment once, the worker maps the same segment read-only, and afterwards
only query batches and ``(distance, id)`` top-k tuples cross the pipe.

Ownership model — exactly one :class:`ShmRegistry` *owns* a family of
segments:

- :meth:`ShmRegistry.share` copies an array into a fresh segment and
  returns a picklable :class:`ShmArraySpec` handle.
- Workers call :func:`attach` with the spec and get a read-only ndarray
  view plus an :class:`AttachedSegments` holder they close on exit
  (attaching never takes ownership; a worker exit cannot unlink data
  other workers still map).
- :meth:`ShmRegistry.close` detaches and **unlinks** every owned segment
  (idempotent; also wired to ``__del__`` and context-manager exit), so a
  closed registry leaves nothing behind in ``/dev/shm``.

Segment names carry the owning pid plus random suffix
(``repro-shm-<pid>-<n>-<hex>``), which keeps concurrent registries from
colliding and lets the leak tests in ``tests/index/test_shm.py`` assert
that no ``repro-shm-*`` orphan survives a ``close()``.

Online mutation: segments are immutable once exported.  An ``add`` (or a
compaction swap) on the sharded index closes the whole pool — unlinking
every owned segment — and the next search re-exports the grown stores
into a fresh registry; a ``remove`` re-exports nothing, because the
tombstone bitmap rides each search request instead of living in shm.
The leak invariant is unchanged: after ``close()`` (crash-injected or
not), :func:`owned_segment_names` must be empty.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.utils.contracts import array_contract

__all__ = [
    "AttachedSegments",
    "ShmArraySpec",
    "ShmRegistry",
    "attach",
    "owned_segment_names",
]

#: Prefix of every segment created by this module (leak tests scan for it).
SEGMENT_PREFIX = "repro-shm"


@dataclass(frozen=True)
class ShmArraySpec:
    """Picklable handle to one shared ndarray: segment name + array layout."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        """Payload bytes of the described array (`prod(shape) * itemsize`)."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


class ShmRegistry:
    """Owns shared-memory segments; unlinks all of them on ``close()``."""

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._counter = 0
        self._closed = False

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> tuple[str, ...]:
        """Names of the segments this registry currently owns."""
        return tuple(self._segments)

    def total_bytes(self) -> int:
        """Payload bytes across all owned segments."""
        return sum(seg.size for seg in self._segments.values())

    @array_contract("array: (...) any::any -> any")
    def share(self, array: np.ndarray) -> ShmArraySpec:
        """Copy ``array`` into a fresh owned segment; return its spec."""
        if self._closed:
            raise RuntimeError("ShmRegistry is closed")
        # The segment stores whatever the index stores (f32 vectors, u8
        # codes, f64 codebooks) — the caller's dtype is the contract.
        array = np.ascontiguousarray(array, dtype=array.dtype)
        name = (
            f"{SEGMENT_PREFIX}-{os.getpid()}-{self._counter}-"
            f"{secrets.token_hex(4)}"
        )
        self._counter += 1
        # Zero-size arrays still need a mappable segment.
        seg = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1), name=name
        )
        if array.nbytes:
            dst = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
            dst[...] = array
        self._segments[name] = seg
        return ShmArraySpec(
            name=name, shape=tuple(array.shape), dtype=array.dtype.str
        )

    @array_contract("spec: any -> (...) any")
    def view(self, spec: ShmArraySpec) -> np.ndarray:
        """Owner-side read-only view of a segment this registry created."""
        seg = self._segments[spec.name]
        return _as_array(seg, spec)

    def close(self) -> None:
        """Detach and unlink every owned segment (idempotent)."""
        self._closed = True
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover - platform specific
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            except Exception:  # pragma: no cover - platform specific
                pass

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class AttachedSegments:
    """Worker-side holder of mapped (non-owned) segments.

    ``close()`` detaches the mappings without unlinking — the owning
    :class:`ShmRegistry` (in the parent) decides when the data dies.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    @array_contract("spec: any -> (...) any")
    def attach(self, spec: ShmArraySpec) -> np.ndarray:
        """Map ``spec``'s segment and return a read-only ndarray view.

        No ``resource_tracker`` bookkeeping happens here on purpose: a
        ``multiprocessing`` worker shares the *parent's* tracker process,
        whose cache is one name set — the attach-time ``register`` dedups
        against the owner's create-time entry, and the owner's ``unlink``
        retires it.  A worker-side ``unregister`` would strip the owner's
        entry from that shared set and make the later ``unlink`` crash
        the tracker with a ``KeyError``.
        """
        seg = shared_memory.SharedMemory(name=spec.name)
        self._segments.append(seg)
        return _as_array(seg, spec)

    def close(self) -> None:
        """Detach every mapping (idempotent; never unlinks)."""
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover - platform specific
                pass

    def __enter__(self) -> "AttachedSegments":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


@array_contract("spec: any -> any")
def attach(spec: ShmArraySpec) -> tuple[np.ndarray, AttachedSegments]:
    """One-spec convenience: mapped read-only array + its detach handle."""
    holder = AttachedSegments()
    try:
        return holder.attach(spec), holder
    except BaseException:
        holder.close()
        raise


def owned_segment_names() -> list[str]:
    """Names of live ``repro-shm-*`` segments on this host (leak probe).

    Reads ``/dev/shm`` where POSIX shared memory is file-backed; on
    platforms without it the probe degrades to "none observed".
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX
        return []
    return sorted(
        name for name in os.listdir(root) if name.startswith(SEGMENT_PREFIX)
    )


def _as_array(
    seg: shared_memory.SharedMemory, spec: ShmArraySpec
) -> np.ndarray:
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
    array.flags.writeable = False
    return array
