"""Sharded wrapper parallelising any index family across N sub-indexes.

Production entity retrievers (Gillick et al.'s dense retrieval stack,
FAISS's ``IndexShards``) split the vector store into shards and fan each
query batch out over workers so shard scans overlap on multi-core serving
hosts, and each shard's working set is a fraction of the full store.

Vectors are striped round-robin by arrival order — the ``g``-th added
vector lands in shard ``g % num_shards`` — so the global id of a shard's
``local``-th row is simply ``local * num_shards + shard`` and per-shard
results remap to the global id space arithmetically.  Fan-in uses
:func:`repro.index.topk.merge_topk`, which ranks by ``(distance, id)``;
together with the blockwise scans inside each shard this makes a sharded
search return *identical* results to the equivalent unsharded index.

Execution model (``executor=``): the fan-out runs on one of three
interchangeable executors, all returning bit-identical results:

- ``"process"`` — a persistent pool of worker *processes*, one lazy
  spawn per pool.  Shard payloads (flat vectors, PQ codes, PQ codebooks)
  are exported once into ``multiprocessing.shared_memory`` segments (see
  :mod:`repro.index.shm`) that every worker maps read-only, so only query
  batches in and ``(distance, id)`` top-k tuples out ever cross a pipe.
  This is the executor that actually scales with cores: CPython's GIL
  serialises the *gather/top-k* half of a scan even though the distance
  matmuls release it, which is why the PR 4 thread fan-out measured
  slower than one shard on a busy host.  A worker that crashes (or whose
  request times out) is killed and respawned, counted in
  :meth:`ShardedIndex.health_stats`; index families without a
  shared-memory exporter fall back to pickling the shard into the worker
  at spawn.
- ``"thread"`` — the PR 4 thread pool (numpy matmuls release the GIL).
  Still the right choice on 1-CPU hosts, where worker processes would
  add IPC overhead with no parallelism to win.
- ``"inline"`` — no pool at all: shards scan serially on the calling
  thread.  Deterministic and dependency-free, for tests and debugging;
  ``shard_timeout`` is emulated by comparing each shard's own elapsed
  wall time against the budget after it finishes (a serial scan cannot
  be pre-empted).
- ``"auto"`` (default) — ``"process"`` when the host has more than one
  CPU and every shard is exportable, else ``"thread"``.

Failure semantics (identical across executors): a shard that raises is
retried (``max_retries``); a shard that still fails, or whose result
does not arrive within ``shard_timeout`` seconds, is *dropped* from the
fan-in and the search returns the merged top-k of the surviving shards
with ``partial=True`` and the dead shards listed in ``failed_shards`` —
one slow or crashing shard degrades recall instead of failing the whole
lookup.  Timeouts are not retried (the hung scan cannot be cancelled; on
the process executor the stuck *worker* is killed and respawned so the
next search starts clean).  Per-shard counters (searches / failures /
timeouts / retries / seconds) are kept in
:meth:`ShardedIndex.health_stats` so a serving layer can alert on a
persistently sick shard.  Pass ``fail_fast=True`` to restore strict
all-or-nothing behaviour.

Online mutation: :meth:`ShardedIndex.remove` / :meth:`ShardedIndex.update`
follow the snapshot protocol of :mod:`repro.index.mutation`, lifted to the
fan-out level.  The cross-shard visibility state is one published
``_IndexView`` — an immutable ``(token, shards, snaps)`` triple — so a
search pins *all* shards' snapshots with a single attribute read and can
never observe shard 0 post-mutation but shard 1 pre-mutation.  On the
process executor each request ships its pinned ``(rows, tombstones)``
pair to the worker (removes need no re-export; appends re-export via the
existing pool invalidation).  :meth:`ShardedIndex.compact` rebuilds the
shard set off-lock — re-training PQ codebooks on the decoded live rows —
and swaps it in all-or-nothing: the swap is abandoned if any mutation
landed during the rebuild, and a search that raced the swap falls back to
an inline scan over its pinned (old) shard objects, which the swap never
mutates.

Fault injection: tests (see :mod:`repro.testing.faults`) pass a
``fault_hook`` — any object with optional methods
``before(shard: int) -> None`` (called on the shard's coordinator
thread before its search; may raise or sleep),
``transform(shard: int, ids, distances) -> (ids, distances)`` (applied
to the shard's result before fan-in),
``should_kill(shard: int) -> bool`` (process executor only: when true
the shard's worker process is killed before the request, exercising the
crash-detection → respawn → retry path), and
``on_compaction(phase: str) -> None`` (called with ``"build"`` when a
compaction starts rebuilding and ``"swap"`` immediately before the
atomic swap; raising at ``"swap"`` aborts the compaction with the old
shard set untouched).  Production code leaves it ``None``; the index
never imports the testing layer.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing.connection import wait as _mp_wait
from time import monotonic
from typing import NamedTuple

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.mutation import IndexSnapshot, check_row_ids, validate_removable
from repro.index.shm import AttachedSegments, ShmRegistry
from repro.index.topk import mask_tombstoned, merge_topk
from repro.utils.contracts import array_contract

__all__ = [
    "AllShardsFailedError",
    "ShardedIndex",
    "ShardTimeoutError",
    "WorkerCrashedError",
]

_EXECUTORS = ("auto", "thread", "process", "inline")


class AllShardsFailedError(RuntimeError):
    """Every shard of a sharded search failed or timed out."""


class ShardTimeoutError(TimeoutError):
    """A shard's scan missed its ``shard_timeout`` budget."""


class WorkerCrashedError(RuntimeError):
    """A shard's worker process died mid-request (before responding)."""


class _IndexView(NamedTuple):
    """One immutable cross-shard visibility state, published atomically.

    ``token`` identifies the shard *set* (a fresh object per compaction
    swap — the process pool records the token it exported, so a search
    pinned on an older token detects the mismatch and scans inline on
    its pinned shard objects instead).  ``snaps`` holds one
    :class:`~repro.index.mutation.IndexSnapshot` per shard (``None`` for
    shard families without snapshot support), captured under the write
    lock in the same publish, so a single read pins a consistent
    cross-shard state.
    """

    token: object
    shards: tuple[VectorIndex, ...]
    snaps: tuple[IndexSnapshot | None, ...]


class _ShardHealth:
    """Per-shard serving counters (mutated under the index's stats lock)."""

    __slots__ = ("searches", "failures", "timeouts", "retries", "respawns", "seconds")

    def __init__(self) -> None:
        self.searches = 0
        self.failures = 0
        self.timeouts = 0
        self.retries = 0
        self.respawns = 0
        self.seconds = 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "searches": self.searches,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "respawns": self.respawns,
            "seconds": self.seconds,
        }


# --------------------------------------------------------------------------
# Worker-process side of the "process" executor.
# --------------------------------------------------------------------------


def _export_shard(shard: VectorIndex, registry: ShmRegistry) -> dict:
    """Describe one shard as a picklable payload, bulk arrays in shm.

    Flat and PQ shards — the two families the serving path builds — ship
    their stores through shared memory; any other family falls back to
    pickling the whole shard object into the worker (functional, but the
    payload crosses the pipe once at spawn instead of being mapped).
    """
    from repro.index.flat import FlatIndex
    from repro.index.pq import PQIndex

    if type(shard) is FlatIndex:
        return {
            "kind": "flat",
            "dim": shard.dim,
            "metric": shard.metric,
            "block_size": shard.block_size,
            "vectors": registry.share(shard.vectors),
        }
    if type(shard) is PQIndex:
        if not shard.is_trained:
            raise RuntimeError("cannot export an untrained PQ shard")
        return {
            "kind": "pq",
            "dim": shard.dim,
            "m": shard.pq.m,
            "nbits": shard.pq.nbits,
            "block_size": shard.block_size,
            "codes": registry.share(shard.codes),
            "codebooks": registry.share(shard.pq.codebooks),
        }
    return {"kind": "pickle", "index": shard}


def _build_shard(payload: dict, segments: AttachedSegments) -> VectorIndex:
    """Rebuild a worker-local shard over the parent's shm segments."""
    from repro.index.buffer import GrowBuffer
    from repro.index.flat import FlatIndex
    from repro.index.pq import PQIndex

    kind = payload["kind"]
    if kind == "flat":
        index = FlatIndex(
            payload["dim"],
            metric=payload["metric"],
            block_size=payload["block_size"],
        )
        index._store = GrowBuffer.wrap(segments.attach(payload["vectors"]))
        # The ctor published an empty snapshot; re-publish over the
        # attached store so ntotal/search see the exported rows.
        index._snap = IndexSnapshot(len(index._store), None, 0)
        return index
    if kind == "pq":
        index = PQIndex(
            payload["dim"],
            m=payload["m"],
            nbits=payload["nbits"],
            block_size=payload["block_size"],
        )
        index.pq.codebooks = segments.attach(payload["codebooks"])
        index._store = GrowBuffer.wrap(segments.attach(payload["codes"]))
        index._snap = IndexSnapshot(len(index._store), None, 0)
        return index
    if kind == "pickle":
        return payload["index"]
    raise ValueError(f"unknown shard payload kind {kind!r}")


def _shard_worker_main(conn, payloads: dict[int, dict]) -> None:
    """Worker loop: build shards from payloads, serve search requests.

    Protocol (one in-flight request per worker, enforced parent-side):

    - recv ``("search", req_id, shard, queries, k, rows, tombstones)`` →
      send ``("ok", req_id, ids, distances, seconds)`` or
      ``("err", req_id, repr(exc))``.  ``(rows, tombstones)`` is the
      parent's pinned visibility snapshot for the shard (``rows=None``
      means "search everything" — pickle-family shards without snapshot
      support).  A snapshot wider than the worker's exported store means
      the export predates an append the parent already published; the
      worker reports it as an error rather than silently serving the
      stale prefix, and the parent's retry lands on a re-exported pool.
    - recv ``("stop",)`` → detach segments and exit.
    """
    segments = AttachedSegments()
    try:
        shards = {
            s: _build_shard(payload, segments)
            for s, payload in payloads.items()
        }
        while True:
            try:
                # The worker has nothing else to do between requests;
                # blocking forever is the mainloop's contract, and the
                # parent kills the process on shutdown/timeout.
                msg = conn.recv()  # repro: noqa[REP706] worker mainloop blocks by design
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, req_id, s, queries, k, rows, tombstones = msg
            try:
                shard = shards[s]
                start = monotonic()
                if rows is None:
                    result = shard.search(queries, k)
                else:
                    if shard.ntotal < rows:
                        raise RuntimeError(
                            f"stale shm export: shard {s} has "
                            f"{shard.ntotal} rows, snapshot wants {rows}"
                        )
                    result = shard.search(
                        queries,
                        k,
                        snapshot=IndexSnapshot(rows, tombstones, 0),
                    )
                elapsed = monotonic() - start
                conn.send(
                    ("ok", req_id, result.ids, result.distances, elapsed)
                )
            except Exception as exc:  # serve the next request regardless
                try:
                    conn.send(("err", req_id, repr(exc)))
                except (BrokenPipeError, OSError):
                    break
    finally:
        segments.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class _ShardWorker:
    """Parent-side handle of one worker process (pipe + request lock)."""

    __slots__ = (
        "shard_ids",
        "process",
        "conn",
        "lock",
        "req_counter",
        "injected_kill",
    )

    def __init__(self, shard_ids: tuple[int, ...]):
        self.shard_ids = shard_ids
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.req_counter = 0
        # Set by kill_shard_worker so the next request skips the liveness
        # pre-heal and exercises the mid-request crash-detection path.
        self.injected_kill = False


class _ProcessShardPool:
    """Persistent worker-process pool behind the ``"process"`` executor.

    ``start()`` exports every shard payload into one :class:`ShmRegistry`
    and spawns ``num_workers`` processes, shards assigned round-robin.
    ``request()`` runs one shard search on its worker with an optional
    deadline; a dead worker is respawned transparently (counted through
    ``on_respawn``) and the caller retries per the index's budget.
    ``close()`` stops the workers and unlinks every segment (idempotent).
    """

    def __init__(
        self,
        shards: list[VectorIndex],
        num_workers: int,
        mp_context: str | None = None,
        on_respawn: Callable[[int], None] | None = None,
        view_token: object | None = None,
    ):
        if mp_context is None:
            # fork reuses the parent's loaded interpreter (fast spawn);
            # spawn is the portable fallback.
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.mp_context = mp_context
        self._shards = shards
        # The shard-set token this pool's shm payload was exported for;
        # a search pinned on a different token must not use this pool.
        self.view_token = view_token
        self.num_workers = max(1, min(num_workers, len(shards)))
        self._on_respawn = on_respawn
        self._registry: ShmRegistry | None = None
        self._payloads: dict[int, dict] = {}
        self._workers: list[_ShardWorker] = []
        self._worker_of: dict[int, _ShardWorker] = {}
        self._respawns = 0
        self._stats_lock = threading.Lock()
        self._started = False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def respawns(self) -> int:
        with self._stats_lock:
            return self._respawns

    def shared_bytes(self) -> int:
        """Bytes of shard payload exported to shared memory."""
        return self._registry.total_bytes() if self._registry else 0

    def worker_pids(self) -> list[int | None]:
        """Live worker pids, in worker order (None before spawn)."""
        return [
            w.process.pid if w.process is not None else None
            for w in self._workers
        ]

    def start(self) -> None:
        """Export payloads to shm and spawn the workers (idempotent)."""
        if self._started:
            return
        self._registry = ShmRegistry()
        try:
            self._payloads = {
                s: _export_shard(shard, self._registry)
                for s, shard in enumerate(self._shards)
            }
        except BaseException:
            self._registry.close()
            self._registry = None
            raise
        self._workers = [
            _ShardWorker(tuple(range(w, len(self._shards), self.num_workers)))
            for w in range(self.num_workers)
        ]
        for worker in self._workers:
            for s in worker.shard_ids:
                self._worker_of[s] = worker
            self._spawn(worker)
        self._started = True

    def _spawn(self, worker: _ShardWorker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        payloads = {s: self._payloads[s] for s in worker.shard_ids}
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, payloads),
            daemon=True,
            name=f"shard-worker-{worker.shard_ids[0]}",
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn

    def _respawn(self, worker: _ShardWorker, shard: int) -> None:
        """Replace a dead/stuck worker with a fresh process."""
        if worker.process is not None:
            try:
                worker.process.kill()
                worker.process.join(timeout=5.0)
            except Exception:  # pragma: no cover - platform specific
                pass
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._spawn(worker)
        with self._stats_lock:
            self._respawns += 1
        if self._on_respawn is not None:
            self._on_respawn(shard)

    def kill_shard_worker(self, shard: int) -> None:
        """Kill the worker currently serving ``shard`` (fault injection).

        The worker is marked ``injected_kill`` so the next request sends
        into the dead pipe instead of pre-healing: the pipe's sentinel
        fires mid-wait and the request surfaces as a
        :class:`WorkerCrashedError` after the respawn — the exact path a
        worker OOM-killed mid-scan takes in production.
        """
        worker = self._worker_of[shard]
        with worker.lock:
            if worker.process is not None:
                worker.process.kill()
                worker.process.join(timeout=5.0)
                worker.injected_kill = True

    def request(
        self,
        shard: int,
        queries: np.ndarray,
        k: int,
        deadline: float | None,
        snap: IndexSnapshot | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """One shard search on its worker; ``(ids, distances, seconds)``.

        ``snap`` is the caller's pinned visibility snapshot for the
        shard; its ``(rows, tombstones)`` pair rides the request so
        removes are visible without re-exporting shared memory.

        Raises :class:`WorkerCrashedError` when the worker died before
        responding (after respawning it so the next attempt is clean),
        :class:`ShardTimeoutError` when ``deadline`` passes first (the
        stuck worker is killed and respawned — its scan cannot be
        cancelled, but the *pool* must not stay wedged), and
        ``RuntimeError`` when the worker reports a search error.
        """
        rows = snap.rows if snap is not None else None
        tombstones = snap.tombstones if snap is not None else None
        worker = self._worker_of[shard]
        with worker.lock:
            if worker.injected_kill:
                # Leave the corpse in place for this one request so the
                # send-into-dead-pipe detection below actually runs.
                worker.injected_kill = False
            elif worker.process is None or not worker.process.is_alive():
                self._respawn(worker, shard)
            worker.req_counter += 1
            req_id = worker.req_counter
            try:
                worker.conn.send(
                    ("search", req_id, shard, queries, k, rows, tombstones)
                )
            except (BrokenPipeError, OSError):
                self._respawn(worker, shard)
                raise WorkerCrashedError(
                    f"worker for shard {shard} died before accepting request"
                ) from None
            while True:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - monotonic())
                ready = _mp_wait(
                    [worker.conn, worker.process.sentinel], timeout=timeout
                )
                if worker.conn in ready:
                    try:
                        # _mp_wait above proved the pipe is readable, so
                        # this recv returns without blocking.
                        msg = worker.conn.recv()  # repro: noqa[REP706] readiness-checked via _mp_wait
                    except (EOFError, OSError):
                        self._respawn(worker, shard)
                        raise WorkerCrashedError(
                            f"worker for shard {shard} died mid-response"
                        ) from None
                    if msg[1] != req_id:  # stale reply from an old cycle
                        continue
                    if msg[0] == "ok":
                        return msg[2], msg[3], msg[4]
                    raise RuntimeError(
                        f"shard {shard} worker error: {msg[2]}"
                    )
                if not ready:  # deadline expired before data or death
                    self._respawn(worker, shard)
                    raise ShardTimeoutError(
                        f"shard {shard} worker missed its deadline"
                    )
                # Sentinel fired: the process died without responding.
                self._respawn(worker, shard)
                raise WorkerCrashedError(
                    f"worker for shard {shard} crashed mid-request"
                )

    def close(self) -> None:
        """Stop workers, close pipes, unlink shm segments (idempotent)."""
        workers, self._workers = self._workers, []
        self._worker_of = {}
        for worker in workers:
            with worker.lock:
                if worker.conn is not None:
                    try:
                        worker.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
        for worker in workers:
            with worker.lock:
                if worker.process is not None:
                    worker.process.join(timeout=5.0)
                    if worker.process.is_alive():  # pragma: no cover
                        worker.process.kill()
                        worker.process.join(timeout=5.0)
                    worker.process = None
                if worker.conn is not None:
                    try:
                        worker.conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    worker.conn = None
        if self._registry is not None:
            self._registry.close()
            self._registry = None
        self._payloads = {}
        self._started = False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------------
# The sharded index itself.
# --------------------------------------------------------------------------


class ShardedIndex(VectorIndex):
    """Round-robin striped fan-out over ``num_shards`` child indexes.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    num_shards:
        Number of child indexes (and fan-out width of every search).
    factory:
        ``factory(dim) -> VectorIndex`` building one (empty) shard; defaults
        to flat shards.  For trained families the factory must produce
        identically-seeded indexes so all shards learn the same quantizer
        (``train`` feeds every shard the full training matrix).
    executor:
        ``"auto"`` | ``"thread"`` | ``"process"`` | ``"inline"`` — the
        fan-out execution model (module docstring).  ``"auto"`` picks
        ``"process"`` on multi-core hosts and ``"thread"`` otherwise.
    num_workers:
        Fan-out width: worker processes for the process executor (shards
        are assigned round-robin when fewer workers than shards), thread
        count otherwise.  Defaults to ``num_shards``.
    mp_context:
        Multiprocessing start method for the process executor
        (``"fork"`` where available, else ``"spawn"``).
    shard_timeout:
        Seconds one search waits for its shard fan-out (a single deadline
        shared by the concurrently-running shards, not a per-shard serial
        budget; the inline executor necessarily budgets per shard).
        ``None`` waits forever.
    max_retries:
        Bounded retries after a shard search raises (the retry runs
        immediately on the same coordinator; timeouts are not retried —
        the hung scan cannot be cancelled, so a retry would double the
        stall).  On the process executor a crashed worker is respawned
        before the retry.
    fail_fast:
        When ``True``, re-raise the first shard failure instead of
        degrading to a partial result.
    fault_hook:
        Optional fault-injection hook (see module docstring); production
        callers leave this ``None``.
    """

    def __init__(
        self,
        dim: int,
        num_shards: int,
        factory: Callable[[int], VectorIndex] | None = None,
        executor: str = "auto",
        num_workers: int | None = None,
        mp_context: str | None = None,
        max_workers: int | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 1,
        fail_fast: bool = False,
        fault_hook: object | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive or None, got {shard_timeout}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if factory is None:
            from repro.index.flat import FlatIndex

            factory = FlatIndex
        self.dim = dim
        self.num_shards = num_shards
        self._factory = factory
        self._shards: list[VectorIndex] = [
            factory(dim) for _ in range(num_shards)
        ]
        for shard in self._shards:
            if shard.dim != dim:
                raise ValueError(
                    f"factory built a dim-{shard.dim} shard, expected {dim}"
                )
        self._ntotal = 0
        self._write_lock = threading.Lock()
        self._epoch = 0
        self._view = _IndexView(object(), (), ())
        self._publish_view(self._view.token)
        self.executor = executor
        # max_workers is the PR 4 name for the same knob; num_workers wins.
        self._num_workers = num_workers or max_workers or num_shards
        self._mp_context = mp_context
        self._executor: ThreadPoolExecutor | None = None
        self._process_pool: _ProcessShardPool | None = None
        self._resolved: str | None = None
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.fail_fast = fail_fast
        self.fault_hook = fault_hook
        self._stats_lock = threading.Lock()
        self._health = [_ShardHealth() for _ in range(num_shards)]
        self._partial_searches = 0
        self._total_searches = 0

    @property
    def shards(self) -> list[VectorIndex]:
        """The child indexes (read-only; mutate only through this class)."""
        return list(self._shards)

    @property
    def is_trained(self) -> bool:
        return all(shard.is_trained for shard in self._shards)

    @property
    def ntotal(self) -> int:
        return self._ntotal

    @property
    def nlive(self) -> int:
        """Rows visible to a search (stored minus tombstoned)."""
        view = self._view
        return sum(
            snap.nlive if snap is not None else shard.ntotal
            for shard, snap in zip(view.shards, view.snaps)
        )

    @property
    def tombstone_count(self) -> int:
        """Removed rows awaiting :meth:`compact`, across all shards."""
        return sum(
            snap.tombstone_count
            for snap in self._view.snaps
            if snap is not None
        )

    @property
    def mutation_epoch(self) -> int:
        """Published mutation count; changes iff the visible set changed."""
        return self._epoch

    def _publish_view(self, token: object | None = None) -> None:
        """Publish a new cross-shard view; caller holds ``_write_lock``
        (the ctor publishes before the index is visible to anyone)."""
        shards = tuple(self._shards)
        snaps = tuple(
            shard.snapshot() if hasattr(shard, "snapshot") else None
            for shard in shards
        )
        self._view = _IndexView(
            token if token is not None else self._view.token, shards, snaps
        )

    def _locals_by_shard(self, ids: np.ndarray) -> dict[int, np.ndarray]:
        """Split validated global row ids into per-shard local row ids."""
        out: dict[int, np.ndarray] = {}
        lanes = ids % self.num_shards
        for s in range(self.num_shards):
            local = ids[lanes == s] // self.num_shards
            if len(local):
                out[s] = local
        return out

    @array_contract("vectors: (..., d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        """Train every shard on the full matrix (identical quantizers)."""
        vectors = self._check_vectors(vectors, "training vectors")
        with self._write_lock:
            self._invalidate_workers()
            for shard in self._shards:
                shard.train(vectors)
            self._epoch += 1
            self._publish_view()

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        """Stripe a batch round-robin by global arrival order."""
        vectors = self._check_vectors(vectors, "vectors")
        if len(vectors) == 0:
            return
        with self._write_lock:
            self._invalidate_workers()
            arrival = self._ntotal + np.arange(len(vectors), dtype=np.int64)
            lanes = arrival % self.num_shards
            for s, shard in enumerate(self._shards):
                rows = vectors[lanes == s]
                if len(rows):
                    shard.add(rows)
            self._ntotal += len(vectors)
            self._epoch += 1
            self._publish_view()

    @array_contract("ids: any -> None")
    def remove(self, ids) -> None:
        """Tombstone global row ids across shards (all-or-nothing).

        Every shard's batch is pre-validated against its pinned
        tombstone bitmap before *any* shard is touched, so a bad id in
        one shard cannot leave another shard half-mutated.  No shm
        re-export happens: the tombstones ride each search request.
        """
        with self._write_lock:
            row_ids = check_row_ids(ids, self._ntotal)
            by_shard = self._locals_by_shard(row_ids)
            for s, local in by_shard.items():
                shard = self._shards[s]
                if not hasattr(shard, "remove"):
                    raise NotImplementedError(
                        f"shard family {type(shard).__name__} does not "
                        "support remove()"
                    )
                validate_removable(shard.snapshot().tombstones, local)
            for s, local in by_shard.items():
                self._shards[s].remove(local)
            self._epoch += 1
            self._publish_view()

    @array_contract("ids: any, vectors: (..., d) num::any -> (_,) i64")
    def update(self, ids, vectors: np.ndarray) -> np.ndarray:
        """Atomically replace global rows: tombstone ``ids``, append rows.

        Both halves happen under one write-lock hold with a single view
        publish at the end, so a concurrent search sees the whole update
        or none of it.  Returns the new rows' global ids.
        """
        vectors = self._check_vectors(vectors, "vectors")
        with self._write_lock:
            row_ids = check_row_ids(ids, self._ntotal)
            by_shard = self._locals_by_shard(row_ids)
            for s, local in by_shard.items():
                validate_removable(self._shards[s].snapshot().tombstones, local)
            self._invalidate_workers()
            for s, local in by_shard.items():
                self._shards[s].remove(local)
            base = self._ntotal
            new_ids = base + np.arange(len(vectors), dtype=np.int64)
            lanes = new_ids % self.num_shards
            for s, shard in enumerate(self._shards):
                rows = vectors[lanes == s]
                if len(rows):
                    shard.add(rows)
            self._ntotal += len(vectors)
            self._epoch += 1
            self._publish_view()
            return new_ids

    def _gather_live(
        self, view: _IndexView
    ) -> tuple[np.ndarray, np.ndarray]:
        """Live rows of a pinned view, in global-id order.

        Returns ``(global_ids, vectors)``; PQ shards decode their live
        codes (compaction re-encodes against freshly trained codebooks).
        Raises ``NotImplementedError`` for shard families without a
        vector representation to rebuild from.
        """
        from repro.index.flat import FlatIndex
        from repro.index.pq import PQIndex

        all_ids: list[np.ndarray] = []
        all_vecs: list[np.ndarray] = []
        for s, (shard, snap) in enumerate(zip(view.shards, view.snaps)):
            if snap is None or type(shard) not in (FlatIndex, PQIndex):
                raise NotImplementedError(
                    f"compact() unsupported for shard family "
                    f"{type(shard).__name__}"
                )
            local = np.arange(snap.rows, dtype=np.int64)
            if snap.tombstones is not None:
                local = local[~snap.tombstones]
            if type(shard) is FlatIndex:
                vecs = shard.vectors[: snap.rows][local]
            else:
                vecs = shard.pq.decode(shard.codes[: snap.rows][local])
            all_ids.append(local * self.num_shards + s)
            all_vecs.append(np.asarray(vecs, dtype=np.float32))
        ids = (
            np.concatenate(all_ids)
            if all_ids
            else np.empty(0, dtype=np.int64)
        )
        vecs = (
            np.concatenate(all_vecs)
            if all_vecs
            else np.empty((0, self.dim), dtype=np.float32)
        )
        order = np.argsort(ids, kind="stable")
        return ids[order], vecs[order]

    @array_contract("-> any")
    def compact(self) -> np.ndarray | None:
        """Rebuild the shard set without tombstoned rows; swap atomically.

        The expensive rebuild — gathering live vectors, re-training PQ
        codebooks on them, re-striping — runs *off-lock* against a pinned
        view, so serving traffic (and other mutators) proceed meanwhile.
        The swap itself is all-or-nothing: it is abandoned (returning
        ``None``) when any mutation was published during the rebuild, and
        in-flight searches pinned on the old view keep scanning the old
        shard objects, which the swap never mutates.  On success returns
        the old-to-new global-id remap (``-1`` for removed rows); live
        rows are re-striped round-robin in old-global-id order.

        The ``fault_hook.on_compaction`` phases fire at ``"build"`` (after
        pinning, before the rebuild) and ``"swap"`` (immediately before
        the atomic swap); an exception at either point aborts with the
        old shard set fully intact.
        """
        hook = self.fault_hook
        on_compaction = (
            getattr(hook, "on_compaction", None) if hook is not None else None
        )
        with self._write_lock:
            view = self._view
            epoch0 = self._epoch
        if not any(
            snap is not None and snap.tombstone_count for snap in view.snaps
        ):
            return None
        if on_compaction is not None:
            on_compaction("build")
        live_ids, live_vecs = self._gather_live(view)
        new_shards = [self._factory(self.dim) for _ in range(self.num_shards)]
        if any(not shard.is_trained for shard in new_shards) and len(live_vecs):
            for shard in new_shards:
                shard.train(live_vecs)
        arrival = np.arange(len(live_vecs), dtype=np.int64)
        lanes = arrival % self.num_shards
        for s, shard in enumerate(new_shards):
            rows = live_vecs[lanes == s]
            if len(rows):
                shard.add(rows)
        if on_compaction is not None:
            on_compaction("swap")
        with self._write_lock:
            if self._epoch != epoch0:
                # A mutation landed during the rebuild: the gathered set
                # is stale.  All-or-nothing — leave the old shards
                # serving and let the caller retry.
                return None
            old_total = self._ntotal
            self._invalidate_workers()
            self._shards = new_shards
            self._ntotal = len(live_vecs)
            self._epoch += 1
            self._publish_view(object())
            remap = np.full(old_total, -1, dtype=np.int64)
            remap[live_ids] = arrival
            return remap

    # -- executors -------------------------------------------------------------

    def resolved_executor(self) -> str:
        """The concrete executor ``search`` will use (resolves ``auto``)."""
        if self._resolved is None:
            self._resolved = self._resolve_executor()
        return self._resolved

    def _resolve_executor(self) -> str:
        if self.executor != "auto":
            return self.executor
        if (os.cpu_count() or 1) > 1 and self._shards_exportable():
            return "process"
        return "thread"

    def _shards_exportable(self) -> bool:
        """Whether every shard has a zero-copy shared-memory exporter."""
        from repro.index.flat import FlatIndex
        from repro.index.pq import PQIndex

        return all(type(s) in (FlatIndex, PQIndex) for s in self._shards)

    def _pool(self) -> ThreadPoolExecutor:
        """Coordinator thread pool (thread executor scans run on it too)."""
        if self._executor is None:
            width = (
                self.num_shards
                if self.resolved_executor() == "process"
                else min(self._num_workers, self.num_shards)
            )
            self._executor = ThreadPoolExecutor(
                max_workers=width,
                thread_name_prefix="shard-search",
            )
        return self._executor

    def _worker_pool(self) -> _ProcessShardPool:
        """The live process pool, (re)created under the write lock.

        Serialising creation with mutators guarantees the shm export is
        a consistent snapshot of the *latest published* view — a pool
        can never be born covering half an in-progress ``add``.  Any
        older pinned view then reads a prefix of the export (safe); any
        newer mutation closes this pool before publishing.
        """
        with self._write_lock:
            if self._process_pool is None:
                self._process_pool = _ProcessShardPool(
                    self._shards,
                    num_workers=self._num_workers,
                    mp_context=self._mp_context,
                    on_respawn=self._count_respawn,
                    view_token=self._view.token,
                )
            self._process_pool.start()
            return self._process_pool

    def _count_respawn(self, shard: int) -> None:
        with self._stats_lock:
            self._health[shard].respawns += 1

    def _invalidate_workers(self) -> None:
        """Drop the worker pool: its shm payload no longer matches."""
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    # -- searching -------------------------------------------------------------

    def _search_shard(
        self,
        s: int,
        queries: np.ndarray,
        k: int,
        deadline: float | None,
        mode: str,
        view: _IndexView,
    ) -> SearchResult:
        """One shard's search on its coordinator, with bounded retries.

        ``view`` is the cross-shard state the whole fan-out pinned; the
        shard object and its snapshot come from it, never from ``self``,
        so a compaction swapping ``self._shards`` mid-search cannot tear
        this search.  On the process executor a pool whose shm export
        belongs to a *different* shard set (token mismatch after a
        compaction swap) is bypassed with an inline scan over the pinned
        old shard objects — the swap leaves them intact.
        """
        hook = self.fault_hook
        before = getattr(hook, "before", None) if hook is not None else None
        transform = (
            getattr(hook, "transform", None) if hook is not None else None
        )
        should_kill = (
            getattr(hook, "should_kill", None) if hook is not None else None
        )
        shard = view.shards[s]
        snap = view.snaps[s]
        attempts = self.max_retries + 1
        start = monotonic()
        try:
            for attempt in range(attempts):
                try:
                    if before is not None:
                        before(s)
                    if mode == "process":
                        pool = self._worker_pool()
                        if pool.view_token is not view.token:
                            result = self._pinned_scan(shard, snap, queries, k)
                        else:
                            if should_kill is not None and should_kill(s):
                                pool.kill_shard_worker(s)
                            ids, distances, _ = pool.request(
                                s, queries, k, deadline, snap
                            )
                            result = SearchResult(
                                ids=ids, distances=distances
                            )
                    else:
                        result = self._pinned_scan(shard, snap, queries, k)
                    if transform is not None:
                        ids, distances = transform(
                            s, result.ids, result.distances
                        )
                        result = SearchResult(ids=ids, distances=distances)
                    return result
                except ShardTimeoutError:
                    raise  # never retried; the pool already respawned
                except Exception:
                    if attempt + 1 >= attempts:
                        raise
                    with self._stats_lock:
                        self._health[s].retries += 1
            raise AssertionError("unreachable")  # pragma: no cover
        finally:
            elapsed = monotonic() - start
            with self._stats_lock:
                self._health[s].seconds += elapsed

    @staticmethod
    def _pinned_scan(
        shard: VectorIndex,
        snap: IndexSnapshot | None,
        queries: np.ndarray,
        k: int,
    ) -> SearchResult:
        """Inline scan of one pinned shard under its pinned snapshot."""
        if snap is None:
            return shard.search(queries, k)
        return shard.search(queries, k, snapshot=snap)

    def _inline_outcomes(
        self, queries: np.ndarray, k: int, view: _IndexView
    ) -> list[tuple[SearchResult | None, bool, BaseException | None]]:
        """Serial fan-out: per-shard ``(result, timed_out, error)`` rows.

        Each shard gets its own ``shard_timeout`` budget, checked after
        the scan (serial execution cannot be pre-empted): a shard whose
        own wall time blew the budget is dropped exactly like a timed-out
        concurrent shard, which keeps fault-injection delay tests
        deterministic on any host.
        """
        outcomes: list = []
        for s in range(self.num_shards):
            started = monotonic()
            try:
                result = self._search_shard(
                    s, queries, k, None, "inline", view
                )
            except Exception as exc:
                outcomes.append((None, False, exc))
                continue
            elapsed = monotonic() - started
            if (
                self.shard_timeout is not None
                and elapsed > self.shard_timeout
            ):
                outcomes.append((None, True, None))
            else:
                outcomes.append((result, False, None))
        return outcomes

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        mode = self.resolved_executor()
        # Pin the cross-shard visibility state once: every shard scan and
        # the fan-in below read this view, never self._shards/_view again.
        view = self._view
        deadline = (
            monotonic() + self.shard_timeout
            if self.shard_timeout is not None
            else None
        )
        if mode == "process":
            # Spawn (or re-export) the worker pool on the calling thread
            # before fanning out: pool start is not coordinator-safe.
            self._worker_pool()
        if mode == "inline":
            outcomes = self._inline_outcomes(queries, k, view)
        else:
            futures = [
                self._pool().submit(
                    self._search_shard, s, queries, k, deadline, mode, view
                )
                for s in range(self.num_shards)
            ]
            outcomes = []
            for future in futures:
                try:
                    if deadline is None:
                        # shard_timeout=None explicitly selects
                        # wait-forever semantics; bounded waits take the
                        # timeout branch below.
                        outcomes.append((future.result(), False, None))  # repro: noqa[REP706] deadline=None means wait forever
                    else:
                        outcomes.append(
                            (
                                future.result(
                                    timeout=max(0.0, deadline - monotonic())
                                ),
                                False,
                                None,
                            )
                        )
                except (FutureTimeoutError, ShardTimeoutError):
                    outcomes.append((None, True, None))
                except Exception as exc:
                    outcomes.append((None, False, exc))
        return self._fan_in(outcomes, queries, k, view)

    def _fan_in(
        self,
        outcomes: list[tuple[SearchResult | None, bool, BaseException | None]],
        queries: np.ndarray,
        k: int,
        view: _IndexView,
    ) -> SearchResult:
        """Merge per-shard outcomes, bookkeeping health and degradation."""
        run_ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Running accumulator in the SearchResult contract, not storage.
        run_d = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        failed: list[int] = []
        for s, (result, timed_out, error) in enumerate(outcomes):
            with self._stats_lock:
                self._health[s].searches += 1
                if result is None:
                    self._health[s].failures += 1
                    if timed_out:
                        self._health[s].timeouts += 1
            if result is None:
                if self.fail_fast:
                    with self._stats_lock:
                        self._total_searches += 1
                    if error is not None:
                        raise error
                    raise TimeoutError(
                        f"shard {s} exceeded shard_timeout="
                        f"{self.shard_timeout}s"
                    )
                failed.append(s)
                continue
            local = result.ids
            distances = result.distances
            snap = view.snaps[s]
            if snap is not None and snap.tombstones is not None:
                # Defense-in-depth: the shard scan already excluded its
                # tombstones, but a result computed without the pinned
                # snapshot (pickle-family worker, fault-injected
                # transform) must still never leak a removed row.
                local, distances = mask_tombstoned(
                    local, distances, snap.tombstones
                )
            # local row r of shard s holds global id r * num_shards + s.
            remapped = np.where(
                local >= 0, local * self.num_shards + s, np.int64(-1)
            )
            run_ids, run_d = merge_topk(
                run_ids, run_d, remapped, distances, k
            )
        with self._stats_lock:
            self._total_searches += 1
            if failed:
                self._partial_searches += 1
        if len(failed) == self.num_shards:
            raise AllShardsFailedError(
                f"all {self.num_shards} shards failed or timed out"
            )
        return SearchResult(
            ids=run_ids,
            distances=run_d,
            partial=bool(failed),
            failed_shards=tuple(failed),
        )

    # -- introspection ---------------------------------------------------------

    def health_stats(self) -> dict:
        """Serving-health snapshot: per-shard counters plus search totals.

        ``searches``/``failures``/``timeouts``/``retries``/``respawns``/
        ``seconds`` per shard; ``partial_searches`` counts degraded
        (survivor-only) results; ``executor`` is the resolved execution
        model and ``worker_respawns`` the pool-wide respawn total.

        The snapshot is atomic: every per-shard dict and both totals are
        copied under one ``_stats_lock`` hold, so concurrent searches
        cannot produce a report whose totals disagree with its rows.
        The pool respawn counter is read *before* taking the index lock
        (it takes the pool's own lock internally — never nest the two).
        """
        pool = self._process_pool
        worker_respawns = pool.respawns if pool is not None else 0
        with self._stats_lock:
            return {
                "shards": [h.as_dict() for h in self._health],
                "total_searches": self._total_searches,
                "partial_searches": self._partial_searches,
                "executor": self._resolved or self.executor,
                "worker_respawns": worker_respawns,
            }

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self._shards)

    def close(self) -> None:
        """Shut down pools and unlink shared memory (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
