"""Sharded wrapper parallelising any index family across N sub-indexes.

Production entity retrievers (Gillick et al.'s dense retrieval stack,
FAISS's ``IndexShards``) split the vector store into shards and fan each
query batch out over worker threads: numpy's distance matmuls release the
GIL, so shard scans overlap on multi-core serving hosts, and each shard's
working set is a fraction of the full store.

Vectors are striped round-robin by arrival order — the ``g``-th added
vector lands in shard ``g % num_shards`` — so the global id of a shard's
``local``-th row is simply ``local * num_shards + shard`` and per-shard
results remap to the global id space arithmetically.  Fan-in uses
:func:`repro.index.topk.merge_topk`, which ranks by ``(distance, id)``;
together with the blockwise scans inside each shard this makes a sharded
search return *identical* results to the equivalent unsharded index.

Failure semantics (the serving hardening pass): a shard that raises is
retried once; a shard that still fails, or whose result does not arrive
within ``shard_timeout`` seconds, is *dropped* from the fan-in and the
search returns the merged top-k of the surviving shards with
``partial=True`` and the dead shards listed in ``failed_shards`` — one
slow or crashing shard degrades recall instead of failing the whole
lookup.  Per-shard counters (searches / failures / timeouts / retries)
are kept in :meth:`ShardedIndex.health_stats` so a serving layer can
alert on a persistently sick shard.  Pass ``fail_fast=True`` to restore
strict all-or-nothing behaviour.

Fault injection: tests (see :mod:`repro.testing.faults`) pass a
``fault_hook`` — any object with optional methods
``before(shard: int) -> None`` (called on the shard's worker thread
before its search; may raise or sleep) and
``transform(shard: int, ids, distances) -> (ids, distances)`` (applied
to the shard's result before fan-in).  Production code leaves it
``None``; the index never imports the testing layer.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import monotonic

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.topk import merge_topk

__all__ = ["AllShardsFailedError", "ShardedIndex"]


class AllShardsFailedError(RuntimeError):
    """Every shard of a sharded search failed or timed out."""


class _ShardHealth:
    """Per-shard serving counters (mutated under the index's stats lock)."""

    __slots__ = ("searches", "failures", "timeouts", "retries")

    def __init__(self) -> None:
        self.searches = 0
        self.failures = 0
        self.timeouts = 0
        self.retries = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "searches": self.searches,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "retries": self.retries,
        }


class ShardedIndex(VectorIndex):
    """Round-robin striped fan-out over ``num_shards`` child indexes.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    num_shards:
        Number of child indexes (and fan-out width of every search).
    factory:
        ``factory(dim) -> VectorIndex`` building one (empty) shard; defaults
        to flat shards.  For trained families the factory must produce
        identically-seeded indexes so all shards learn the same quantizer
        (``train`` feeds every shard the full training matrix).
    max_workers:
        Thread-pool width (defaults to ``num_shards``).
    shard_timeout:
        Seconds one search waits for its shard fan-out (a single deadline
        shared by the concurrently-running shards, not a per-shard serial
        budget).  ``None`` waits forever.
    max_retries:
        Bounded in-thread retries after a shard search raises (the retry
        runs immediately on the same worker; timeouts are not retried —
        the hung call cannot be cancelled, so a retry would double the
        stall).
    fail_fast:
        When ``True``, re-raise the first shard failure instead of
        degrading to a partial result.
    fault_hook:
        Optional fault-injection hook (see module docstring); production
        callers leave this ``None``.
    """

    def __init__(
        self,
        dim: int,
        num_shards: int,
        factory: Callable[[int], VectorIndex] | None = None,
        max_workers: int | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 1,
        fail_fast: bool = False,
        fault_hook: object | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive or None, got {shard_timeout}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if factory is None:
            from repro.index.flat import FlatIndex

            factory = FlatIndex
        self.dim = dim
        self.num_shards = num_shards
        self._shards: list[VectorIndex] = [
            factory(dim) for _ in range(num_shards)
        ]
        for shard in self._shards:
            if shard.dim != dim:
                raise ValueError(
                    f"factory built a dim-{shard.dim} shard, expected {dim}"
                )
        self._ntotal = 0
        self._max_workers = max_workers or num_shards
        self._executor: ThreadPoolExecutor | None = None
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.fail_fast = fail_fast
        self.fault_hook = fault_hook
        self._stats_lock = threading.Lock()
        self._health = [_ShardHealth() for _ in range(num_shards)]
        self._partial_searches = 0
        self._total_searches = 0

    @property
    def shards(self) -> list[VectorIndex]:
        """The child indexes (read-only; mutate only through this class)."""
        return list(self._shards)

    @property
    def is_trained(self) -> bool:
        return all(shard.is_trained for shard in self._shards)

    @property
    def ntotal(self) -> int:
        return self._ntotal

    def train(self, vectors: np.ndarray) -> None:
        """Train every shard on the full matrix (identical quantizers)."""
        vectors = self._check_vectors(vectors, "training vectors")
        for shard in self._shards:
            shard.train(vectors)

    def add(self, vectors: np.ndarray) -> None:
        """Stripe a batch round-robin by global arrival order."""
        vectors = self._check_vectors(vectors, "vectors")
        if len(vectors) == 0:
            return
        arrival = self._ntotal + np.arange(len(vectors), dtype=np.int64)
        lanes = arrival % self.num_shards
        for s, shard in enumerate(self._shards):
            rows = vectors[lanes == s]
            if len(rows):
                shard.add(rows)
        self._ntotal += len(vectors)

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="shard-search",
            )
        return self._executor

    def _search_shard(
        self, s: int, queries: np.ndarray, k: int
    ) -> SearchResult:
        """One shard's search on a worker thread, with bounded retries."""
        hook = self.fault_hook
        before = getattr(hook, "before", None) if hook is not None else None
        transform = (
            getattr(hook, "transform", None) if hook is not None else None
        )
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                if before is not None:
                    before(s)
                result = self._shards[s].search(queries, k)
                if transform is not None:
                    ids, distances = transform(
                        s, result.ids, result.distances
                    )
                    result = SearchResult(ids=ids, distances=distances)
                return result
            except Exception:
                if attempt + 1 >= attempts:
                    raise
                with self._stats_lock:
                    self._health[s].retries += 1
        raise AssertionError("unreachable")  # pragma: no cover

    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        deadline = (
            monotonic() + self.shard_timeout
            if self.shard_timeout is not None
            else None
        )
        futures = [
            self._pool().submit(self._search_shard, s, queries, k)
            for s in range(self.num_shards)
        ]
        run_ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Running accumulator in the SearchResult contract, not storage.
        run_d = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        failed: list[int] = []
        for s, future in enumerate(futures):
            timed_out = False
            try:
                if deadline is None:
                    result = future.result()
                else:
                    result = future.result(
                        timeout=max(0.0, deadline - monotonic())
                    )
            except FutureTimeoutError:
                timed_out = True
                result = None
            except Exception:
                if self.fail_fast:
                    with self._stats_lock:
                        self._health[s].searches += 1
                        self._health[s].failures += 1
                        self._total_searches += 1
                    raise
                result = None
            with self._stats_lock:
                self._health[s].searches += 1
                if result is None:
                    self._health[s].failures += 1
                    if timed_out:
                        self._health[s].timeouts += 1
            if result is None:
                if timed_out and self.fail_fast:
                    with self._stats_lock:
                        self._total_searches += 1
                    raise TimeoutError(
                        f"shard {s} exceeded shard_timeout="
                        f"{self.shard_timeout}s"
                    )
                failed.append(s)
                continue
            local = result.ids
            # local row r of shard s holds global id r * num_shards + s.
            remapped = np.where(
                local >= 0, local * self.num_shards + s, np.int64(-1)
            )
            run_ids, run_d = merge_topk(
                run_ids, run_d, remapped, result.distances, k
            )
        with self._stats_lock:
            self._total_searches += 1
            if failed:
                self._partial_searches += 1
        if len(failed) == self.num_shards:
            raise AllShardsFailedError(
                f"all {self.num_shards} shards failed or timed out"
            )
        return SearchResult(
            ids=run_ids,
            distances=run_d,
            partial=bool(failed),
            failed_shards=tuple(failed),
        )

    def health_stats(self) -> dict:
        """Serving-health snapshot: per-shard counters plus search totals.

        ``searches``/``failures``/``timeouts``/``retries`` per shard;
        ``partial_searches`` counts degraded (survivor-only) results.
        """
        with self._stats_lock:
            return {
                "shards": [h.as_dict() for h in self._health],
                "total_searches": self._total_searches,
                "partial_searches": self._partial_searches,
            }

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self._shards)

    def close(self) -> None:
        """Shut down the search thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
