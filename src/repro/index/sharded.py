"""Sharded wrapper parallelising any index family across N sub-indexes.

Production entity retrievers (Gillick et al.'s dense retrieval stack,
FAISS's ``IndexShards``) split the vector store into shards and fan each
query batch out over worker threads: numpy's distance matmuls release the
GIL, so shard scans overlap on multi-core serving hosts, and each shard's
working set is a fraction of the full store.

Vectors are striped round-robin by arrival order — the ``g``-th added
vector lands in shard ``g % num_shards`` — so the global id of a shard's
``local``-th row is simply ``local * num_shards + shard`` and per-shard
results remap to the global id space arithmetically.  Fan-in uses
:func:`repro.index.topk.merge_topk`, which ranks by ``(distance, id)``;
together with the blockwise scans inside each shard this makes a sharded
search return *identical* results to the equivalent unsharded index.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.topk import merge_topk

__all__ = ["ShardedIndex"]


class ShardedIndex(VectorIndex):
    """Round-robin striped fan-out over ``num_shards`` child indexes.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    num_shards:
        Number of child indexes (and fan-out width of every search).
    factory:
        ``factory(dim) -> VectorIndex`` building one (empty) shard; defaults
        to flat shards.  For trained families the factory must produce
        identically-seeded indexes so all shards learn the same quantizer
        (``train`` feeds every shard the full training matrix).
    max_workers:
        Thread-pool width (defaults to ``num_shards``).
    """

    def __init__(
        self,
        dim: int,
        num_shards: int,
        factory: Callable[[int], VectorIndex] | None = None,
        max_workers: int | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if factory is None:
            from repro.index.flat import FlatIndex

            factory = FlatIndex
        self.dim = dim
        self.num_shards = num_shards
        self._shards: list[VectorIndex] = [
            factory(dim) for _ in range(num_shards)
        ]
        for shard in self._shards:
            if shard.dim != dim:
                raise ValueError(
                    f"factory built a dim-{shard.dim} shard, expected {dim}"
                )
        self._ntotal = 0
        self._max_workers = max_workers or num_shards
        self._executor: ThreadPoolExecutor | None = None

    @property
    def shards(self) -> list[VectorIndex]:
        """The child indexes (read-only; mutate only through this class)."""
        return list(self._shards)

    @property
    def is_trained(self) -> bool:
        return all(shard.is_trained for shard in self._shards)

    @property
    def ntotal(self) -> int:
        return self._ntotal

    def train(self, vectors: np.ndarray) -> None:
        """Train every shard on the full matrix (identical quantizers)."""
        vectors = self._check_vectors(vectors, "training vectors")
        for shard in self._shards:
            shard.train(vectors)

    def add(self, vectors: np.ndarray) -> None:
        """Stripe a batch round-robin by global arrival order."""
        vectors = self._check_vectors(vectors, "vectors")
        if len(vectors) == 0:
            return
        arrival = self._ntotal + np.arange(len(vectors), dtype=np.int64)
        lanes = arrival % self.num_shards
        for s, shard in enumerate(self._shards):
            rows = vectors[lanes == s]
            if len(rows):
                shard.add(rows)
        self._ntotal += len(vectors)

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="shard-search",
            )
        return self._executor

    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        futures = [
            self._pool().submit(shard.search, queries, k)
            for shard in self._shards
        ]
        run_ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Running accumulator in the SearchResult contract, not storage.
        run_d = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        for s, future in enumerate(futures):
            result = future.result()
            local = result.ids
            # local row r of shard s holds global id r * num_shards + s.
            remapped = np.where(
                local >= 0, local * self.num_shards + s, np.int64(-1)
            )
            run_ids, run_d = merge_topk(
                run_ids, run_d, remapped, result.distances, k
            )
        return SearchResult(ids=run_ids, distances=run_d)

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self._shards)

    def close(self) -> None:
        """Shut down the search thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
