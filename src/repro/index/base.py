"""Common interface for vector indexes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.contracts import array_contract

__all__ = ["SearchResult", "VectorIndex"]


@dataclass(frozen=True)
class SearchResult:
    """k-NN result for a batch of queries.

    Attributes
    ----------
    ids:
        ``(num_queries, k)`` integer row ids into the indexed matrix;
        ``-1`` pads queries with fewer than ``k`` reachable neighbours.
    distances:
        ``(num_queries, k)`` distances aligned with ``ids`` (same padding
        convention, padded entries hold ``inf``).
    partial:
        ``True`` when the result covers only part of the store — a
        sharded search degraded gracefully because one or more shards
        failed or timed out.  Exhaustive single-index scans always
        return ``False``.
    failed_shards:
        Shard numbers whose contribution is missing from a ``partial``
        result (empty for complete results).
    """

    ids: np.ndarray
    distances: np.ndarray
    partial: bool = False
    failed_shards: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.ids.shape != self.distances.shape:
            raise ValueError(
                f"ids shape {self.ids.shape} != distances shape "
                f"{self.distances.shape}"
            )


class VectorIndex:
    """Abstract k-NN index over float vectors.

    Lifecycle: construct -> :meth:`train` (optional for some indexes) ->
    :meth:`add` -> :meth:`search`.  Implementations must be deterministic
    given the same seed.
    """

    dim: int

    @property
    def is_trained(self) -> bool:
        return True

    @property
    def ntotal(self) -> int:
        """Number of indexed vectors."""
        raise NotImplementedError

    # Boundary contracts are deliberately lenient ((..., d) num::any):
    # every implementation funnels through _check_vectors, which promotes
    # 1-D inputs and coerces to float32 C-contiguous exactly once.  The
    # strict f32/C contracts live on the kernels behind the boundary.
    @array_contract("vectors: (..., d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        """Learn index parameters (codebooks, coarse centroids) from data."""
        # Default: training-free index.

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        """Append vectors; their ids are assigned sequentially."""
        raise NotImplementedError

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        """Return the ``k`` nearest indexed vectors for each query row."""
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Approximate resident size of the vector payload (for Table V-style
        storage comparisons)."""
        raise NotImplementedError

    # -- shared validation ------------------------------------------------------

    def _check_vectors(self, vectors: np.ndarray, what: str) -> np.ndarray:
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"{what} must have shape (n, {self.dim}), got {vectors.shape}"
            )
        return vectors

    @staticmethod
    def _check_k(k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
