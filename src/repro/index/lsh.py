"""Random-hyperplane (signed) locality-sensitive hashing index.

The Table V baseline family: vectors are hashed into ``nbits``-bit
signatures via random hyperplanes; candidates sharing a bucket in any of
``ntables`` hash tables are re-ranked by exact distance.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.kmeans import _squared_distances
from repro.utils.contracts import array_contract
from repro.utils.rng import as_rng

__all__ = ["LSHIndex"]


class LSHIndex(VectorIndex):
    """Multi-table signed random-projection LSH with exact re-ranking."""

    def __init__(
        self,
        dim: int,
        nbits: int = 16,
        ntables: int = 8,
        seed: int | np.random.Generator | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if nbits <= 0 or nbits > 62:
            raise ValueError(f"nbits must be in [1, 62], got {nbits}")
        if ntables <= 0:
            raise ValueError(f"ntables must be positive, got {ntables}")
        self.dim = dim
        self.nbits = nbits
        self.ntables = ntables
        rng = as_rng(seed)
        # (ntables, nbits, dim) hyperplane normals.
        self._planes = rng.normal(size=(ntables, nbits, dim)).astype(np.float32)
        self._tables: list[dict[int, list[int]]] = [
            defaultdict(list) for _ in range(ntables)
        ]
        self._store = GrowBuffer(dim, np.float32)
        self._bit_weights = 1 << np.arange(nbits, dtype=np.int64)

    @property
    def ntotal(self) -> int:
        return len(self._store)

    @property
    def _vectors(self) -> np.ndarray:
        return self._store.view

    def _signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket key per (vector, table): ``(n, ntables)`` int64."""
        sigs = np.empty((len(vectors), self.ntables), dtype=np.int64)
        for t in range(self.ntables):
            projections = vectors @ self._planes[t].T  # (n, nbits)
            bits = (projections > 0).astype(np.int64)
            sigs[:, t] = bits @ self._bit_weights
        return sigs

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        vectors = self._check_vectors(vectors, "vectors")
        start = self.ntotal
        sigs = self._signatures(vectors)
        for offset in range(len(vectors)):
            for t in range(self.ntables):
                self._tables[t][int(sigs[offset, t])].append(start + offset)
        self._store.append(vectors)

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Distance accumulator in the SearchResult contract, not storage.
        distances = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        if self.ntotal == 0:
            return SearchResult(ids=ids, distances=distances)

        sigs = self._signatures(queries)
        for qi in range(len(queries)):
            candidates: set[int] = set()
            for t in range(self.ntables):
                candidates.update(self._tables[t].get(int(sigs[qi, t]), ()))
            if not candidates:
                continue
            cand_ids = np.fromiter(candidates, dtype=np.int64)
            d = _squared_distances(
                queries[qi : qi + 1], self._vectors[cand_ids]
            ).ravel()
            take = min(k, len(cand_ids))
            order = np.argsort(d, kind="stable")[:take]
            ids[qi, :take] = cand_ids[order]
            distances[qi, :take] = d[order]
        return SearchResult(ids=ids, distances=distances)

    def memory_bytes(self) -> int:
        bucket_entries = sum(
            len(bucket) for table in self._tables for bucket in table.values()
        )
        return self._store.nbytes() + self._planes.nbytes + bucket_entries * 8
