"""Partitioned index: one sub-index per string partition key.

Type-constrained lookups (JenTab CTA candidate generation, DoSeR
disambiguation) previously scanned the whole KG index and filtered the
answers afterwards — O(ntotal) work for a query whose admissible answer
set is one entity type.  :class:`TypePartitionedIndex` stores each
partition (in serving, each primary entity type) in its own sub-index, so
a filtered search scans only the selected partitions' rows, and an
unfiltered search unions every partition through the same
:func:`~repro.index.topk.merge_topk` fold the sharded fan-in uses
(Gillick et al. 2019 motivate exactly this layout for type-constrained
dense retrieval).

Row ids are *global*: ``add`` assigns arrival-order ids across all
partitions (like every other index) and each partition keeps an int64
id column mapping its local rows back to the global space.  Because ids
cannot be recovered arithmetically (partitions grow unevenly, unlike the
round-robin stripes of :class:`~repro.index.sharded.ShardedIndex`), the
mapping is materialised in a one-column :class:`GrowBuffer` per
partition.  The ``(distance, id)`` ranking convention makes the merged
union partition-invariant — see :mod:`repro.index.topk` for the exact
bit-identity caveats per index family (the default flat partitions are
identical up to ulp-level distance ties; PQ partitions sharing one
trained quantizer are bit-exact).

The sub-index family is pluggable through ``factory`` — pass a closure
building a :class:`~repro.index.sharded.ShardedIndex` to combine per-type
partitioning with multi-core shard execution (shm export and worker
pools come along for free; ``close`` forwards to every partition).

Online mutation: :meth:`TypePartitionedIndex.remove` tombstones *global*
row ids by locating each id in its partition's id column and forwarding
the local ids to the sub-index's snapshot-protocol ``remove`` (see
:mod:`repro.index.mutation`).  Updates go through the serving engine as
remove + add — an updated entity may change primary type, i.e. change
partition, which an in-place update cannot express.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.flat import FlatIndex
from repro.index.mutation import check_row_ids, validate_removable
from repro.index.topk import merge_topk
from repro.utils.contracts import array_contract

__all__ = ["DEFAULT_PARTITION", "TypePartitionedIndex"]

#: Partition key used by callers for rows with no partition attribute
#: (e.g. untyped entities).  Ordinary string key, no special casing here.
DEFAULT_PARTITION = "__untyped__"


class TypePartitionedIndex(VectorIndex):
    """Routes each row to a per-key sub-index; search unions selected keys.

    Parameters
    ----------
    dim:
        Vector dimensionality (shared by every partition).
    factory:
        ``factory(dim) -> VectorIndex`` building one partition's
        sub-index; defaults to an auto-block-size :class:`FlatIndex`.
        Called lazily the first time a key appears in :meth:`add`.
    """

    def __init__(
        self,
        dim: int,
        factory: Callable[[int], VectorIndex] | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._factory = factory if factory is not None else FlatIndex
        # Insertion-ordered: search folds partitions in first-seen order,
        # which (with the (distance, id) ranking) does not affect results
        # but keeps scan order deterministic for timing.
        self._partitions: dict[str, VectorIndex] = {}
        # Per-partition global-id column, (n_local, 1) int64.
        self._ids: dict[str, GrowBuffer] = {}
        self._ntotal = 0
        # Serialises add/remove; searches stay lock-free on the
        # sub-indexes' own published snapshots.
        self._write_lock = threading.Lock()

    # -- construction ----------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return self._ntotal

    @property
    def nlive(self) -> int:
        """Rows visible to a search (stored minus tombstoned)."""
        return sum(
            getattr(p, "nlive", p.ntotal) for p in self._partitions.values()
        )

    @property
    def tombstone_count(self) -> int:
        """Removed rows awaiting compaction, across all partitions."""
        return sum(
            getattr(p, "tombstone_count", 0)
            for p in self._partitions.values()
        )

    @property
    def is_trained(self) -> bool:
        return all(p.is_trained for p in self._partitions.values())

    def partition_keys(self) -> tuple[str, ...]:
        """Every key seen by :meth:`add`, in first-seen order."""
        return tuple(self._partitions)

    def partition_sizes(self) -> dict[str, int]:
        """Rows stored per partition key."""
        return {key: p.ntotal for key, p in self._partitions.items()}

    @array_contract("key: str -> (n,) i64")
    def partition_global_ids(self, key: str) -> np.ndarray:
        """Global row ids stored in partition ``key`` (read-only view)."""
        if key not in self._ids:
            raise KeyError(f"unknown partition key {key!r}")
        return self._ids[key].view[:, 0]

    def rows_in(self, partitions: Sequence[str] | None = None) -> int:
        """Rows a search over ``partitions`` scans (all keys when None).

        Unknown keys count zero rows — a filter naming a type nobody has
        is an empty scan, not an error (mirrors :meth:`search`).
        """
        if partitions is None:
            return self._ntotal
        selected = self._select(partitions)
        return sum(self._partitions[key].ntotal for key in selected)

    @array_contract("vectors: (..., d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        """Forward training to every existing partition.

        Partitions created by a later :meth:`add` are *not* retroactively
        trained; trained families (PQ) should be built through a
        ``factory`` that pre-trains each sub-index, or add all keys
        before calling ``train``.
        """
        vectors = self._check_vectors(vectors, "training vectors")
        for partition in self._partitions.values():
            partition.train(vectors)

    @array_contract("vectors: (..., d) num::any, partitions: any -> None")
    def add(self, vectors: np.ndarray, partitions: Sequence[str]) -> None:
        """Append rows, routing row ``i`` to partition ``partitions[i]``.

        Global ids are assigned in arrival order across the whole index,
        exactly like a non-partitioned ``add``.
        """
        vectors = self._check_vectors(vectors, "vectors")
        keys = list(partitions)
        if len(keys) != len(vectors):
            raise ValueError(
                f"got {len(vectors)} vectors but {len(keys)} partition keys"
            )
        with self._write_lock:
            base = self._ntotal
            order: dict[str, list[int]] = {}
            for row, key in enumerate(keys):
                order.setdefault(str(key), []).append(row)
            for key, rows in order.items():
                partition = self._partitions.get(key)
                if partition is None:
                    partition = self._factory(self.dim)
                    self._partitions[key] = partition
                    self._ids[key] = GrowBuffer(1, np.int64)
                partition.add(vectors[rows])
                global_ids = np.asarray(rows, dtype=np.int64) + base
                self._ids[key].append(global_ids[:, None])
            self._ntotal = base + len(vectors)

    @array_contract("ids: any -> None")
    def remove(self, ids) -> None:
        """Tombstone global row ids in their partitions (all-or-nothing).

        Each id is located in its partition's global-id column; every
        partition's batch is pre-validated against its tombstone bitmap
        before any partition is touched, so a double-remove in one
        partition cannot leave another half-mutated.
        """
        with self._write_lock:
            row_ids = check_row_ids(ids, self._ntotal)
            if len(row_ids) == 0:
                return
            plan: list[tuple[VectorIndex, np.ndarray]] = []
            found = 0
            for key, partition in self._partitions.items():
                col = self._ids[key].view[:, 0]
                local = np.nonzero(np.isin(col, row_ids))[0]
                if len(local) == 0:
                    continue
                if not hasattr(partition, "remove"):
                    raise NotImplementedError(
                        f"partition family {type(partition).__name__} "
                        "does not support remove()"
                    )
                validate_removable(partition.snapshot().tombstones, local)
                plan.append((partition, local))
                found += len(local)
            if found != len(row_ids):  # pragma: no cover - id column invariant
                raise ValueError(
                    f"only {found} of {len(row_ids)} row ids found in "
                    "partition id columns"
                )
            for partition, local in plan:
                partition.remove(local)

    # -- search ----------------------------------------------------------------

    def _select(self, partitions: Sequence[str] | None) -> list[str]:
        if partitions is None:
            return list(self._partitions)
        seen: set[str] = set()
        selected: list[str] = []
        for key in partitions:
            key = str(key)
            if key in self._partitions and key not in seen:
                seen.add(key)
                selected.append(key)
        return selected

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self,
        queries: np.ndarray,
        k: int,
        partitions: Sequence[str] | None = None,
    ) -> SearchResult:
        """Top-``k`` over the union of ``partitions`` (all keys when None).

        Each selected partition is searched for ``k`` winners, local ids
        are remapped through the partition's global-id column, and the
        per-partition results fold through :func:`merge_topk` — the same
        reduction the sharded fan-in uses, so multi-type unions rank
        identically to an equivalent single index (up to the per-family
        tie caveats documented in :mod:`repro.index.topk`).  An empty
        selection (no partitions, or only unknown keys) returns all-pad
        rows rather than raising.
        """
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        selected = self._select(partitions)
        run_ids: np.ndarray | None = None
        run_d: np.ndarray | None = None
        for key in selected:
            partition = self._partitions[key]
            local = partition.search(queries, k)
            ids = self._remap(local.ids, self._ids[key].view[:, 0])
            if run_ids is None or run_d is None:
                run_ids, run_d = ids, local.distances
            else:
                run_ids, run_d = merge_topk(
                    run_ids, run_d, ids, local.distances, k
                )
        if run_ids is None or run_d is None:
            nq = len(queries)
            run_ids = np.full((nq, k), -1, dtype=np.int64)
            run_d = np.full((nq, k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        if run_ids.shape[1] < k:  # single partition narrower than k
            pad_ids = np.full((len(queries), k), -1, dtype=np.int64)
            pad_d = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
            pad_ids[:, : run_ids.shape[1]] = run_ids
            pad_d[:, : run_d.shape[1]] = run_d
            run_ids, run_d = pad_ids, pad_d
        return SearchResult(ids=run_ids, distances=run_d)

    @staticmethod
    @array_contract(
        "local_ids: (nq, k) i64::any, global_ids: (n,) i64::any"
        " -> (nq, k) i64"
    )
    def _remap(local_ids: np.ndarray, global_ids: np.ndarray) -> np.ndarray:
        """Map a partition's local result ids into the global id space."""
        # np.where evaluates both branches, so pad ids (-1) index the
        # column too — legal (negative wrap) and discarded by the mask.
        remapped = np.where(
            local_ids >= 0, global_ids[local_ids], np.int64(-1)
        )
        return remapped.astype(np.int64, copy=False)

    # -- maintenance -----------------------------------------------------------

    def memory_bytes(self) -> int:
        payload = sum(p.memory_bytes() for p in self._partitions.values())
        ids = sum(buf.nbytes() for buf in self._ids.values())
        return payload + ids

    def close(self) -> None:
        """Release partition resources (worker pools of sharded partitions)."""
        for partition in self._partitions.values():
            close = getattr(partition, "close", None)
            if callable(close):
                close()
