"""Amortized-growth row buffer shared by the incremental indexes.

Every index family appends vectors (or codes) one batch at a time.  A
per-call ``np.concatenate`` copies the whole store on every ``add``, which
is O(n²) across many small adds — the pattern that throttled ``HNSWIndex``
until PR 3 batched its growth.  :class:`GrowBuffer` keeps a capacity array
that doubles geometrically, so a sequence of adds totalling ``n`` rows
copies O(n) elements overall, like ``list.append`` or FAISS's own
``std::vector``-backed storage.

Prefix stability: an :attr:`GrowBuffer.view` fetched when the buffer held
``n`` rows keeps describing exactly those ``n`` rows forever — appends
only write *beyond* the published length, and a reallocation copies the
prefix verbatim into the new backing array while the old array (and any
view onto it) stays alive and unmodified.  The online-mutation snapshot
protocol (:mod:`repro.index.mutation`) leans on this: a search that
pinned ``(rows, tombstones)`` may keep scanning its view while writers
append concurrently.
"""

from __future__ import annotations

import numpy as np

from repro.utils.contracts import array_contract

__all__ = ["GrowBuffer"]


class GrowBuffer:
    """Append-only 2-D row store with geometric capacity doubling.

    Parameters
    ----------
    cols:
        Number of columns of every row (vector dim or code width).
    dtype:
        Element dtype of the store (float32 vectors, uint8 codes, ...).

    Notes
    -----
    :attr:`view` returns a zero-copy window onto the first ``len(self)``
    rows.  The window is invalidated by the next growth (the backing
    allocation may move); callers that hold it across ``append`` calls
    must re-fetch it.
    """

    def __init__(self, cols: int, dtype: np.dtype | type) -> None:
        if cols <= 0:
            raise ValueError(f"cols must be positive, got {cols}")
        self._data = np.empty((0, cols), dtype=dtype)
        self._len = 0

    @classmethod
    @array_contract("rows: (n, cols) any::any -> any")
    def wrap(cls, rows: np.ndarray) -> "GrowBuffer":
        """Zero-copy buffer over an existing ``(n, cols)`` matrix.

        Used by shard worker processes to serve scans straight out of a
        parent-owned shared-memory segment: ``view`` aliases ``rows``
        without copying.  The wrapped array may be read-only; the first
        ``append`` grows into a fresh private allocation (copying the
        rows out of the segment), so workers that never add pay nothing.
        """
        if rows.ndim != 2 or rows.shape[1] == 0:
            raise ValueError(
                f"expected a (n, cols>=1) matrix, got shape {rows.shape}"
            )
        buffer = cls(rows.shape[1], rows.dtype)
        buffer._data = rows
        buffer._len = len(rows)
        return buffer

    def __len__(self) -> int:
        """Number of appended rows (not the reserved capacity)."""
        return self._len

    @property
    def capacity(self) -> int:
        """Currently reserved rows (always >= ``len(self)``)."""
        return len(self._data)

    @property
    def view(self) -> np.ndarray:
        """Zero-copy view of the appended rows, ``(len(self), cols)``."""
        return self._data[: self._len]

    @array_contract("rows: (n, cols) any::any -> None")
    def append(self, rows: np.ndarray) -> None:
        """Append ``(n, cols)`` rows, doubling capacity when exhausted."""
        if rows.ndim != 2 or rows.shape[1] != self._data.shape[1]:
            raise ValueError(
                f"expected (n, {self._data.shape[1]}) rows, got {rows.shape}"
            )
        needed = self._len + len(rows)
        if needed > len(self._data):
            new_cap = max(needed, 2 * len(self._data), 8)
            grown = np.empty(
                (new_cap, self._data.shape[1]), dtype=self._data.dtype
            )
            grown[: self._len] = self._data[: self._len]
            self._data = grown
        self._data[self._len : needed] = rows
        self._len = needed

    def nbytes(self) -> int:
        """Bytes of the *logical* payload (excludes reserved slack)."""
        return self._len * self._data.shape[1] * self._data.itemsize
