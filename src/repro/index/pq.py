"""Product quantization (Jégou, Douze, Schmid — TPAMI 2011).

The paper's Section III-D: a 64-d float32 embedding (256 bytes) is split
into ``m`` sub-vectors, each quantized against a 256-entry codebook learned
with k-means, so each vector is stored as ``m`` one-byte codes (8 bytes with
the default ``m = 8``).  Queries use asymmetric distance computation (ADC):
the query stays uncompressed and per-subspace distance tables turn the scan
into table lookups.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.kmeans import KMeans
from repro.index.mutation import (
    IndexSnapshot,
    bury,
    check_row_ids,
    extend_tombstones,
)
from repro.index.topk import auto_block_size, blockwise_topk
from repro.utils.contracts import array_contract
from repro.utils.rng import as_rng

__all__ = ["PQIndex", "ProductQuantizer"]


class ProductQuantizer:
    """Encodes vectors into ``m`` byte codes against learned codebooks.

    Parameters
    ----------
    dim:
        Input dimensionality; must be divisible by ``m``.
    m:
        Number of sub-quantizers (= bytes per compressed vector with the
        default 8-bit codes).
    nbits:
        Bits per code; ``2**nbits`` centroids per sub-quantizer (max 8 so a
        code fits one byte).
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        nbits: int = 8,
        seed: int | np.random.Generator | None = None,
        kmeans_iters: int = 25,
    ):
        if dim <= 0 or m <= 0:
            raise ValueError(f"dim and m must be positive, got {dim}, {m}")
        if dim % m != 0:
            raise ValueError(f"dim {dim} must be divisible by m {m}")
        if not 1 <= nbits <= 8:
            raise ValueError(f"nbits must be in [1, 8], got {nbits}")
        self.dim = dim
        self.m = m
        self.nbits = nbits
        self.ksub = 2**nbits
        self.dsub = dim // m
        self.kmeans_iters = kmeans_iters
        self.rng = as_rng(seed)
        # codebooks: (m, ksub, dsub) once trained.
        self.codebooks: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    @property
    def code_bytes(self) -> int:
        """Bytes per encoded vector (one byte per sub-code)."""
        return self.m

    @array_contract("vectors: (n, d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        """Learn one k-means codebook per sub-space."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) training matrix")
        if len(vectors) == 0:
            raise ValueError("cannot train PQ on zero vectors")
        codebooks = np.empty((self.m, self.ksub, self.dsub), dtype=np.float32)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            km = KMeans(
                self.ksub,
                max_iters=self.kmeans_iters,
                seed=self.rng,
            ).fit(sub)
            codebooks[j] = km.centroids
        self.codebooks = codebooks

    @array_contract("vectors: (n, d) num::any -> (n, m) u8")
    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize ``(n, dim)`` vectors into ``(n, m)`` uint8 codes."""
        self._require_trained()
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) matrix")
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            codes[:, j] = _nearest_codes(sub, self.codebooks[j])
        return codes

    @array_contract("codes: (n, m) int::any -> (n, d) f32")
    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_trained()
        codes = np.asarray(codes)  # repro: noqa[REP101] -- keep caller's integer code dtype
        if codes.ndim != 2 or codes.shape[1] != self.m:
            raise ValueError(f"expected (n, {self.m}) code matrix")
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[j][
                codes[:, j]
            ]
        return out

    @array_contract("queries: (nq, d) num::any -> (nq, m, ksub) f64")
    def distance_tables(self, queries: np.ndarray) -> np.ndarray:
        """ADC lookup tables: ``(n_queries, m, ksub)`` squared distances."""
        self._require_trained()
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) queries")
        # ADC tables use the ||q||^2 + ||c||^2 - 2q.c expansion, which
        # cancels catastrophically in float32; accumulate in float64
        # (tables are per-query scratch, never stored).
        tables = np.empty((len(queries), self.m, self.ksub), dtype=np.float64)  # repro: noqa[REP102]
        for j in range(self.m):
            sub_q = queries[:, j * self.dsub : (j + 1) * self.dsub].astype(
                np.float64  # repro: noqa[REP102] -- cancellation-safe accumulation
            )
            cb = self.codebooks[j].astype(np.float64)  # repro: noqa[REP102] -- cancellation-safe accumulation
            cross = sub_q @ cb.T
            q_norm = (sub_q * sub_q).sum(axis=1)[:, None]
            c_norm = (cb * cb).sum(axis=1)[None, :]
            tables[:, j, :] = np.maximum(q_norm + c_norm - 2.0 * cross, 0.0)
        return tables

    @array_contract("queries: (nq, d) num::any -> (m, ksub, nq) f64")
    def scan_tables(self, queries: np.ndarray) -> np.ndarray:
        """ADC tables in scan orientation: contiguous ``(m, ksub, nq)``.

        Same numbers as :meth:`distance_tables`, transposed once per query
        batch so the hot block scan (:meth:`scan_codes`) gathers *rows* of
        ``(ksub, nq)`` sub-tables — contiguous ``nq``-wide copies the CPU
        streams — instead of one scattered element per (query, code) pair.
        """
        # ADC tables are float64 by contract (precision of the m-sum).
        return np.ascontiguousarray(
            self.distance_tables(queries).transpose(1, 2, 0),
            dtype=np.float64,  # repro: noqa[REP102]
        )

    @array_contract(
        "queries: (nq, d) num::any, codes: (n, m) int::any -> (nq, n) f64::any"
    )
    def adc_distances(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric squared distances queries x codes, ``(nq, n)``."""
        return self.scan_codes(self.scan_tables(queries), codes)

    @staticmethod
    @array_contract(
        "tables_t: (m, ksub, nq) f64, codes: (n, m) int::any -> (nq, n) f64::any"
    )
    def scan_codes(tables_t: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC block scan: gather + reduce over sub-quantizers, ``(nq, n)``.

        ``tables_t`` is the :meth:`scan_tables` layout ``(m, ksub, nq)``.
        For each sub-quantizer ``j`` the block's codes select whole rows of
        the ``(ksub, nq)`` sub-table in one vectorised ``np.take`` (each
        gathered row is a contiguous ``nq``-vector, so the gather runs at
        memcpy speed), and the ``m`` gathered ``(n, nq)`` planes fold into
        the accumulator with BLAS-shaped full-array adds.

        The fold runs in fixed ``j = 0..m-1`` order with elementwise adds,
        so every distance is a pure function of its (query, code row) pair
        — bit-identical across any block size, shard count, or executor,
        which is what keeps ``results_identical_across_variants`` exact.
        (A literal matmul/einsum reduction over ``m`` was measured slower
        here — it must materialise the full ``(m, n, nq)`` gather — and
        GEMM kernels may re-associate the ``m``-sum differently per block
        width, which would break that bit-exactness.)
        """
        m, _, nq = tables_t.shape
        n = len(codes)
        # Accumulates m float64 table entries per code; keep their precision.
        out = np.zeros((n, nq), dtype=np.float64)  # repro: noqa[REP102]
        gathered = np.empty((n, nq), dtype=np.float64)  # repro: noqa[REP102]
        for j in range(m):
            np.take(tables_t[j], codes[:, j], axis=0, out=gathered)
            out += gathered
        return out.T

    @staticmethod
    @array_contract(
        "tables: (nq, m, ksub) f64::any, codes: (n, m) int::any -> (nq, n) f64::any"
    )
    def lookup_distances(tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum per-sub-space table entries for each code row.

        Compatibility wrapper over :meth:`scan_codes` for callers holding
        the ``(nq, m, ksub)`` :meth:`distance_tables` layout; batch scans
        should build :meth:`scan_tables` once and call ``scan_codes``
        per block instead of re-transposing here every call.
        """
        # ADC tables are float64 by contract (precision of the m-sum).
        return ProductQuantizer.scan_codes(
            np.ascontiguousarray(
                tables.transpose(1, 2, 0),
                dtype=np.float64,  # repro: noqa[REP102]
            ),
            codes,
        )

    def _require_trained(self) -> None:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer used before train()")


class PQIndex(VectorIndex):
    """Flat index over PQ codes with blockwise ADC search.

    The compressed storage is ``m`` bytes/vector versus ``4 * dim`` for
    :class:`FlatIndex`, the 256 B -> 8 B reduction the paper reports.  The
    ADC tables are computed once per query batch; the table *lookups* then
    stream over the code store one block at a time with a running top-k,
    never materialising the full ``(n_queries, ntotal)`` distance matrix.

    Mutation follows the snapshot protocol of :mod:`repro.index.mutation`
    (see :class:`~repro.index.flat.FlatIndex` for the lock discipline);
    :meth:`compact` additionally *re-trains* the codebooks on the decoded
    live set, building a fresh :class:`ProductQuantizer` and swapping it
    with the code store in one publish so a pinned search never mixes old
    codes with new codebooks.
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        nbits: int = 8,
        seed: int | np.random.Generator | None = None,
        kmeans_iters: int = 25,
        block_size: int | None = None,
    ):
        self.dim = dim
        self.pq = ProductQuantizer(
            dim, m=m, nbits=nbits, seed=seed, kmeans_iters=kmeans_iters
        )
        self.block_size = block_size
        self._store = GrowBuffer(m, np.uint8)
        self._write_lock = threading.Lock()
        self._snap = IndexSnapshot(0, None, 0)

    @property
    def is_trained(self) -> bool:
        return self.pq.is_trained

    @property
    def ntotal(self) -> int:
        return self._snap.rows

    @property
    def nlive(self) -> int:
        """Rows visible to a search (stored minus tombstoned)."""
        return self._snap.nlive

    @property
    def tombstone_count(self) -> int:
        """Removed rows awaiting :meth:`compact`."""
        return self._snap.tombstone_count

    @property
    def mutation_epoch(self) -> int:
        """Published mutation count; changes iff the visible set changed."""
        return self._snap.epoch

    @property
    def codes(self) -> np.ndarray:
        """The stored code matrix (read-only view; re-fetch after ``add``)."""
        return self._store.view

    def snapshot(self) -> IndexSnapshot:
        """The currently published visibility snapshot (atomic read)."""
        return self._snap

    def _publish(self, tombstones: np.ndarray | None) -> None:
        """Publish a new snapshot; caller must hold ``_write_lock``."""
        self._snap = IndexSnapshot(
            len(self._store), tombstones, self._snap.epoch + 1
        )

    def _capture(
        self, snapshot: IndexSnapshot | None
    ) -> tuple[IndexSnapshot, ProductQuantizer, np.ndarray]:
        """Pin a consistent ``(snapshot, quantizer, codes)`` triple.

        :meth:`compact` swaps store then quantizer then snapshot (all
        under the write lock), and this reads them in the *opposite*
        order, so observing the new quantizer implies the view is also
        new — which the length check then flags against the old snapshot
        (a compaction strictly shrinks the store).  Appends never
        invalidate the triple — the view is prefix-stable.
        """
        if snapshot is not None:
            return snapshot, self.pq, self._store.view
        for _ in range(3):
            snap = self._snap
            pq = self.pq
            view = self._store.view
            if self._snap is snap and len(view) >= snap.rows:
                return snap, pq, view
        with self._write_lock:
            return self._snap, self.pq, self._store.view

    @array_contract("vectors: (..., d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        self.pq.train(self._check_vectors(vectors, "training vectors"))

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        if not self.is_trained:
            raise RuntimeError("PQIndex.add called before train()")
        vectors = self._check_vectors(vectors, "vectors")
        with self._write_lock:
            self._store.append(self.pq.encode(vectors))
            self._publish(
                extend_tombstones(self._snap.tombstones, len(vectors))
            )

    @array_contract("ids: any -> None")
    def remove(self, ids) -> None:
        """Tombstone the given row ids (all-or-nothing; ids stay stable)."""
        with self._write_lock:
            row_ids = check_row_ids(ids, len(self._store))
            self._publish(bury(self._snap.tombstones, len(self._store), row_ids))

    @array_contract("ids: any, vectors: (..., d) num::any -> (_,) i64")
    def update(self, ids, vectors: np.ndarray) -> np.ndarray:
        """Atomically replace rows: tombstone ``ids``, append ``vectors``.

        One snapshot publish covers both halves (old-or-new, never a
        mixture).  Returns the new rows' ids.
        """
        if not self.is_trained:
            raise RuntimeError("PQIndex.update called before train()")
        vectors = self._check_vectors(vectors, "vectors")
        with self._write_lock:
            row_ids = check_row_ids(ids, len(self._store))
            base = len(self._store)
            self._store.append(self.pq.encode(vectors))
            tombstones = bury(
                extend_tombstones(self._snap.tombstones, len(vectors)),
                len(self._store),
                row_ids,
            )
            self._publish(tombstones)
            return base + np.arange(len(vectors), dtype=np.int64)

    @array_contract("-> any")
    def compact(self) -> np.ndarray | None:
        """Drop tombstoned codes and re-train the codebooks on the rest.

        Decodes the live codes with the current quantizer, fits a fresh
        :class:`ProductQuantizer` on them (the k-means runs while the
        write lock is held, blocking other *mutators* — searches stay
        lock-free on the old pinned state), re-encodes, and swaps store
        + quantizer + snapshot atomically.  Returns the old-to-new id
        remap (``-1`` for removed rows) or ``None`` when there was
        nothing to reclaim.
        """
        with self._write_lock:
            snap = self._snap
            if snap.tombstones is None or not snap.tombstones.any():
                return None
            alive = ~snap.tombstones
            remap = np.where(
                alive, np.cumsum(alive) - 1, np.int64(-1)
            ).astype(np.int64)
            new_store = GrowBuffer(self.pq.m, np.uint8)
            live_codes = self._store.view[: snap.rows][alive]
            if len(live_codes):
                vectors = self.pq.decode(live_codes)
                new_pq = ProductQuantizer(
                    self.dim,
                    m=self.pq.m,
                    nbits=self.pq.nbits,
                    seed=self.pq.rng,
                    kmeans_iters=self.pq.kmeans_iters,
                )
                new_pq.train(vectors)
                new_store.append(new_pq.encode(vectors))
            else:
                new_pq = self.pq  # nothing left to train on; keep codebooks
            # Swap order matters: store, then quantizer, then snapshot —
            # the mirror of the read order in _capture.
            self._store = new_store
            self.pq = new_pq
            self._publish(None)
            return remap

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self,
        queries: np.ndarray,
        k: int,
        block_size: int | None = None,
        snapshot: IndexSnapshot | None = None,
    ) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        block = block_size if block_size is not None else self.block_size
        if block is None:
            # The ADC fold keeps an output tile plus a same-shape gathered
            # LUT tile alive per block: 16 working-set bytes per score.
            block = auto_block_size(len(queries), bytes_per_score=16)
        snap, pq, codes = self._capture(snapshot)
        tables_t = (
            pq.scan_tables(queries) if snap.rows else None
        )  # (m, ksub, nq), built once per batch
        ids, distances = blockwise_topk(
            lambda start, stop: pq.scan_codes(tables_t, codes[start:stop]),
            snap.rows,
            k,
            num_queries=len(queries),
            block_size=block,
            exclude=snap.tombstones,
        )
        return SearchResult(ids=ids, distances=distances)

    @array_contract("idx: int -> (d,) f32")
    def reconstruct(self, idx: int) -> np.ndarray:
        """Approximate stored vector for row ``idx`` (decoded from codes)."""
        return self.pq.decode(self._store.view[idx : idx + 1])[0]

    def memory_bytes(self) -> int:
        codebook_bytes = (
            self.pq.codebooks.nbytes if self.pq.codebooks is not None else 0
        )
        snap = self._snap
        tomb_bytes = (
            snap.tombstones.nbytes if snap.tombstones is not None else 0
        )
        return self._store.nbytes() + codebook_bytes + tomb_bytes


def _nearest_codes(sub_vectors: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Nearest centroid id in ``codebook`` for each sub-vector row."""
    # Same cancellation-prone expansion as distance_tables: float64 keeps
    # argmin ties deterministic across platforms.
    a = sub_vectors.astype(np.float64)  # repro: noqa[REP102]
    b = codebook.astype(np.float64)  # repro: noqa[REP102]
    d = (
        (a * a).sum(axis=1)[:, None]
        + (b * b).sum(axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return d.argmin(axis=1).astype(np.uint8)
