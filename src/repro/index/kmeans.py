"""Lloyd's k-means with k-means++ seeding.

Used as the codebook learner for product quantization and as the coarse
quantizer of the IVF indexes.  Empty clusters are re-seeded from the points
farthest from their assigned centroid, matching FAISS's behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.utils.contracts import array_contract
from repro.utils.rng import as_rng

__all__ = ["KMeans"]


class KMeans:
    """Lloyd iteration k-means.

    Parameters
    ----------
    n_clusters:
        Number of centroids ``k``.
    max_iters:
        Upper bound on Lloyd iterations.
    tol:
        Relative improvement threshold for early stopping.
    seed:
        Seed or generator for k-means++ initialisation.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iters: int = 25,
        tol: float = 1e-4,
        seed: int | np.random.Generator | None = None,
    ):
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        self.max_iters = max_iters
        self.tol = tol
        self.rng = as_rng(seed)
        self.centroids: np.ndarray | None = None
        self.inertia: float = float("inf")

    @array_contract("points: (n, d) num::any -> any")
    def fit(self, points: np.ndarray) -> "KMeans":
        """Fit centroids to ``points`` of shape ``(n, d)``."""
        points = np.asarray(points, dtype=np.float32)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = len(points)
        if n == 0:
            raise ValueError("cannot fit k-means on zero points")
        if n <= self.n_clusters:
            # Degenerate case: every point is its own centroid; pad by
            # repeating points so downstream code always sees k centroids.
            reps = int(np.ceil(self.n_clusters / n))
            self.centroids = np.tile(points, (reps, 1))[: self.n_clusters].copy()
            self.inertia = 0.0
            return self

        centroids = self._init_plus_plus(points)
        previous_inertia = float("inf")
        for _ in range(self.max_iters):
            assignments, distances = self._assign(points, centroids)
            inertia = float(distances.sum())
            centroids = self._update(points, assignments, centroids)
            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1e-12):
                previous_inertia = inertia
                break
            previous_inertia = inertia
        self.centroids = centroids
        self.inertia = previous_inertia
        return self

    @array_contract("points: (n, d) num::any -> (n,) i64")
    def predict(self, points: np.ndarray) -> np.ndarray:
        """Nearest-centroid id for each point."""
        if self.centroids is None:
            raise RuntimeError("KMeans.predict called before fit")
        assignments, _ = self._assign(
            np.asarray(points, dtype=np.float32), self.centroids
        )
        return assignments

    @array_contract("points: (n, d) num::any -> (n, nlist) f64")
    def transform(self, points: np.ndarray) -> np.ndarray:
        """Squared distance from each point to every centroid, ``(n, k)``."""
        if self.centroids is None:
            raise RuntimeError("KMeans.transform called before fit")
        return _squared_distances(
            np.asarray(points, dtype=np.float32), self.centroids
        )

    # -- internals ----------------------------------------------------------------

    def _init_plus_plus(self, points: np.ndarray) -> np.ndarray:
        n = len(points)
        centroids = np.empty((self.n_clusters, points.shape[1]), dtype=np.float32)
        first = int(self.rng.integers(0, n))
        centroids[0] = points[first]
        closest = _squared_distances(points, centroids[:1]).ravel()
        for c in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                # All points coincide with chosen centroids; sample uniformly.
                pick = int(self.rng.integers(0, n))
            else:
                probs = closest / total
                pick = int(self.rng.choice(n, p=probs))
            centroids[c] = points[pick]
            new_d = _squared_distances(points, centroids[c : c + 1]).ravel()
            np.minimum(closest, new_d, out=closest)
        return centroids

    @staticmethod
    def _assign(
        points: np.ndarray, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        d = _squared_distances(points, centroids)
        assignments = d.argmin(axis=1)
        return assignments, d[np.arange(len(points), dtype=np.int64), assignments]

    def _update(
        self, points: np.ndarray, assignments: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        k, d = centroids.shape
        # Centroid updates accumulate n float32 terms; f64 keeps them exact.
        sums = np.zeros((k, d), dtype=np.float64)  # repro: noqa[REP102]
        counts = np.bincount(assignments, minlength=k).astype(np.float64)  # repro: noqa[REP102] f64 accumulation
        np.add.at(sums, assignments, points)
        new_centroids = centroids.astype(np.float64).copy()  # repro: noqa[REP102] f64 accumulation
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        # Re-seed empty clusters from the farthest points.
        empties = np.flatnonzero(~nonempty)
        if empties.size:
            distances = _squared_distances(points, new_centroids.astype(np.float32))
            farthest = distances.min(axis=1).argsort()[::-1]
            for slot, point_idx in zip(empties, farthest):
                new_centroids[slot] = points[point_idx]
        return new_centroids.astype(np.float32)


def _squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared L2 distances, ``(len(a), len(b))``, clipped at 0."""
    # ||a||^2+||b||^2-2ab cancels catastrophically in f32; storage stays f32.
    a64 = a.astype(np.float64, copy=False)  # repro: noqa[REP102]
    b64 = b.astype(np.float64, copy=False)  # repro: noqa[REP102]
    cross = a64 @ b64.T
    a_norms = (a64 * a64).sum(axis=1)[:, None]
    b_norms = (b64 * b64).sum(axis=1)[None, :]
    d = a_norms + b_norms - 2.0 * cross
    np.maximum(d, 0.0, out=d)
    return d
