"""Blockwise top-k selection kernel shared by the scanning indexes.

The serving-scale problem with the original ``FlatIndex`` / ``PQIndex``
scans is peak memory: both materialised the full ``(n_queries, ntotal)``
distance matrix before selecting ``k`` winners — 100+ MB for a 256-query
batch over 50 k vectors, and O(ntotal) per query regardless of ``k``.

This module provides the streaming alternative: score one block of vectors
at a time, select the block's top-k, and fold it into a running top-k with
:func:`merge_topk`.  Peak memory drops to O(n_queries x block_size) and the
blocked distance computations are far kinder to the cache (on a single
core the 4096-row blocked flat scan runs ~3x faster than the full
materialisation; see ``BENCH_serving.json``).

Ordering convention: candidates are ranked by ``(distance, id)`` — ties
broken toward the smaller row id — so the selection/merge machinery
itself is exactly partition-invariant: feeding it the same per-candidate
scores in any block or shard grouping returns identical results.
Caveat discovered by the ``repro.testing`` differential harness: for the
*flat* scan the scores themselves are BLAS matmuls whose rounding can
differ by ~1 ulp with block width (gemv vs gemm kernels), so cross-
partition results are bit-identical only up to ulp-level distance ties;
the PQ ADC path sums its tables in fixed order and is bit-exact across
any partitioning.  (That fixed-order constraint is why
``ProductQuantizer.scan_codes`` accumulates its per-subquantizer LUT
gathers with elementwise adds instead of a GEMM reduction: a BLAS dot
over the ``m`` axis may re-associate the sum per tile width, which would
quietly re-introduce the flat scan's caveat into the one path the
differential suite pins bit-exactly.)  Padding follows
:class:`repro.index.base.SearchResult`: id ``-1`` with ``inf`` distance,
always sorted last.

The same partition invariance is what lets the sharded fan-in run on
any executor: :func:`merge_topk` consumes per-shard ``(ids, distances)``
pairs identically whether a shard scanned on the calling thread, a pool
thread, or a worker process that shipped its top-k back over a pipe
(:mod:`repro.index.sharded`) — only the tiny ``(n_queries, k)`` winners
ever cross the process boundary, never block scores.

Two refinements keep that invariant total even on degenerate scores
(surfaced by the ``repro.testing`` oracle harness over ±inf-magnitude
stores): padding ranks *strictly* after every real candidate — including
reals whose distance is ``inf`` — and ``NaN`` distances rank last among
the reals, so a corrupted score can never evict a healthy neighbour nor
leapfrog the padding.
"""

from __future__ import annotations

import numpy as np

from repro.utils.contracts import array_contract

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BLOCK_BUDGET_BYTES",
    "auto_block_size",
    "block_topk",
    "blockwise_topk",
    "mask_tombstoned",
    "merge_topk",
]

#: Default scan granularity: 4096 rows/block keeps a 256-query float64
#: block under 8 MB and measured fastest of {1k, 4k, 8k} on one core.
DEFAULT_BLOCK_SIZE = 4096

#: Per-block score-tile budget for :func:`auto_block_size`.  8 MiB is the
#: sweet spot measured in BENCH_serving.json: at 256 queries x float64 it
#: yields the winning 4096-row block, while the 8192-row block's 16 MiB
#: tile overflows the last-level cache and scans *slower* than the full
#: materialisation trend (0.263s vs 0.146s at 50k x 64).
DEFAULT_BLOCK_BUDGET_BYTES = 8 << 20


def auto_block_size(
    num_queries: int,
    bytes_per_score: int = 8,
    budget_bytes: int | None = None,
    floor: int = 256,
    cap: int = 8192,
) -> int:
    """Cache-budget-derived block size for a blockwise scan.

    Picks the largest power-of-two block whose ``(num_queries, block)``
    score tile fits ``budget_bytes``, clamped to ``[floor, cap]``.  A
    fixed block size cannot be right for every batch shape: 4096 rows is
    optimal for 256-query batches but leaves single-query scans doing 13x
    more merge folds than necessary, and 8192 rows regresses large
    batches (see :data:`DEFAULT_BLOCK_BUDGET_BYTES`).  Because the
    selection/merge machinery is partition-invariant, changing the block
    size never changes results — only the tile's cache behaviour.

    Parameters
    ----------
    num_queries:
        Rows of the score tile (the batch size of the scan).
    bytes_per_score:
        Bytes of per-candidate working set per query; 8 for the flat
        scan's float64 tile, larger for scans that materialise extra
        per-candidate temporaries (the PQ ADC gather uses 16).
    budget_bytes:
        Working-set budget (default :data:`DEFAULT_BLOCK_BUDGET_BYTES`).
    floor / cap:
        Clamp bounds; the cap keeps tiny batches from degenerating into
        a full materialisation, the floor keeps huge batches from
        thrashing the merge fold.
    """
    if num_queries < 0:
        raise ValueError(f"num_queries must be >= 0, got {num_queries}")
    if bytes_per_score < 1:
        raise ValueError(
            f"bytes_per_score must be >= 1, got {bytes_per_score}"
        )
    if floor < 1 or cap < floor:
        raise ValueError(f"need 1 <= floor <= cap, got [{floor}, {cap}]")
    budget = (
        DEFAULT_BLOCK_BUDGET_BYTES if budget_bytes is None else budget_bytes
    )
    if budget < 1:
        raise ValueError(f"budget_bytes must be >= 1, got {budget}")
    rows = budget // (max(1, num_queries) * bytes_per_score)
    rows = max(1, rows)
    block = 1 << (rows.bit_length() - 1)  # round down to a power of two
    return max(floor, min(cap, block))


def _rank_topk(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Order candidate columns by ``(pad-last, distance, id)`` and keep ``k``.

    The primary key is the padding flag (``id < 0``), so ``-1``/``inf``
    pad entries sort after *every* real candidate, even ones whose
    distance is ``inf`` or ``NaN`` — without it a real neighbour with a
    non-finite score would lose its slot to padding during a merge
    (observed when ``k > ntotal`` on one shard while another shard holds
    an inf-magnitude vector).  Among real entries ``NaN`` sorts last, as
    in ``np.sort``.
    """
    order = np.lexsort((ids, distances, ids < 0), axis=1)[:, :k]
    return (
        np.take_along_axis(ids, order, axis=1),
        np.take_along_axis(distances, order, axis=1),
    )


@array_contract(
    "distances: (nq, b) num::any, k: int, id_offset: int, exclude: any"
    " -> (nq, k) i64, (nq, k) num"
)
def block_topk(
    distances: np.ndarray,
    k: int,
    id_offset: int = 0,
    exclude: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k of one scored block, as ``(ids, distances)`` of width ``k``.

    Parameters
    ----------
    distances:
        ``(n_queries, block)`` scores for one contiguous block of rows.
    k:
        Number of winners to keep per query.
    id_offset:
        Global id of the block's first row; returned ids are global.
    exclude:
        Optional ``(block,)`` boolean tombstone bitmap: excluded rows are
        converted to ``-1`` / ``inf`` padding *before* ranking, so they
        rank strictly after every live candidate — including live rows
        with ``inf`` or ``NaN`` scores.  (Masking only the distances to
        ``inf`` would be wrong: a real id with an ``inf`` distance still
        ranks before padding, so a removed row would be returned whenever
        ``k`` exceeds the live count.)

    Blocks narrower than ``k`` are padded with ``-1`` / ``inf`` so every
    result is exactly ``(n_queries, k)`` and directly mergeable.
    """
    nq, width = distances.shape
    take = min(k, width)
    if exclude is not None and exclude.any():
        # Tombstoned block: exact full-block rank with the excluded rows
        # pre-converted to padding.  The argpartition fast path cannot be
        # used here — its boundary-tie handling would have to arbitrate
        # excluded-inf against live-inf/NaN rows, exactly the ordering
        # the pad-last primary key exists to make unambiguous.
        ids_full = np.tile(np.arange(width, dtype=np.int64), (nq, 1))
        ids_full[:, exclude] = -1
        masked = distances.copy()
        masked[:, exclude] = np.inf
        ids, ranked_d = _rank_topk(ids_full, masked, take)
        ids = np.where(ids >= 0, ids + id_offset, ids)
        return _pad_topk(ids, ranked_d, k)
    if take < width:
        # Cheap O(width) pre-selection before the exact (distance, id) rank.
        part = np.argpartition(distances, take - 1, axis=1)[:, :take]
        part_d = np.take_along_axis(distances, part, axis=1)
        # argpartition picks arbitrarily among candidates tied at the cut,
        # which would make the id tie-break selection-order dependent (and
        # partition-variant).  When any row has more boundary-tied
        # candidates than slots — including an all-NaN boundary — fall
        # back to exact-ranking the full block for this (rare) block.
        thresh = part_d.max(axis=1, keepdims=True)
        with np.errstate(invalid="ignore"):
            at_cut = (distances <= thresh) | (
                np.isnan(distances) & np.isnan(thresh)
            )
        if (at_cut.sum(axis=1) > take).any():
            part = np.tile(np.arange(width, dtype=np.int64), (nq, 1))
            part_d = distances
    else:
        part = np.tile(np.arange(width, dtype=np.int64), (nq, 1))
        part_d = distances
    ids, ranked_d = _rank_topk(part.astype(np.int64, copy=False), part_d, take)
    ids += id_offset
    return _pad_topk(ids, ranked_d, k)


def _pad_topk(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad a ranked ``(nq, take <= k)`` result to width ``k``."""
    nq, take = ids.shape
    if take == k:
        return ids, distances
    pad_ids = np.full((nq, k), -1, dtype=np.int64)
    # Padding distances follow the SearchResult accumulator contract
    # (float64 inf sentinels), not vector storage.
    pad_d = np.full((nq, k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
    pad_ids[:, :take] = ids
    pad_d[:, :take] = distances
    return pad_ids, pad_d


@array_contract(
    "ids_a: (nq, ka) i64::any, d_a: (nq, ka) num::any,"
    " ids_b: (nq, kb) i64::any, d_b: (nq, kb) num::any, k: int"
    " -> (nq, _) i64, (nq, _) num"
)
def merge_topk(
    ids_a: np.ndarray,
    d_a: np.ndarray,
    ids_b: np.ndarray,
    d_b: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two per-query top-k sets into the overall top-k.

    Both inputs are ``(n_queries, k_x)`` id/distance pairs following the
    ``-1`` / ``inf`` padding convention; the result is ``(n_queries, k)``
    ranked by ``(distance, id)``.  This is the reduction primitive of both
    the streaming block scan and the sharded fan-in (where ids are already
    remapped to the global space and may interleave arbitrarily).
    """
    if ids_a.shape != d_a.shape or ids_b.shape != d_b.shape:
        raise ValueError("ids/distances shapes must match pairwise")
    if ids_a.shape[0] != ids_b.shape[0]:
        raise ValueError(
            f"query counts differ: {ids_a.shape[0]} != {ids_b.shape[0]}"
        )
    ids = np.concatenate([ids_a, ids_b], axis=1)
    distances = np.concatenate([d_a, d_b], axis=1)
    return _rank_topk(ids, distances, k)


@array_contract(
    "ids: (nq, k) i64::any, distances: (nq, k) num::any, tombstones: any"
    " -> (nq, k) i64, (nq, k) num"
)
def mask_tombstoned(
    ids: np.ndarray,
    distances: np.ndarray,
    tombstones: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Drop tombstoned candidates from a ranked top-k result.

    ``tombstones`` is a boolean bitmap over the id space of ``ids``
    (``None`` = nothing tombstoned).  Hit candidates are converted to the
    ``-1`` / ``inf`` padding convention and the rows re-ranked, so the
    result stays a valid :class:`~repro.index.base.SearchResult` payload.
    This is the fan-in's defense-in-depth filter: shard scans already
    exclude tombstones against their pinned snapshot, so this pass only
    fires on results produced against an older visibility state.
    """
    if tombstones is None:
        return ids, distances
    in_range = (ids >= 0) & (ids < len(tombstones))
    hit = np.zeros(ids.shape, dtype=bool)
    hit[in_range] = tombstones[ids[in_range]]
    if not hit.any():
        return ids, distances
    out_ids = np.where(hit, np.int64(-1), ids)
    out_d = distances.copy()
    out_d[hit] = np.inf
    return _rank_topk(out_ids, out_d, ids.shape[1])


@array_contract(
    "score_block: callable, ntotal: int, k: int, num_queries: int"
    " -> (num_queries, k) i64, (num_queries, k) num"
)
def blockwise_topk(
    score_block,
    ntotal: int,
    k: int,
    num_queries: int,
    block_size: int | None = None,
    id_offset: int = 0,
    exclude: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Streaming scan: score blocks, keep a running top-k.

    Parameters
    ----------
    score_block:
        ``score_block(start, stop) -> (n_queries, stop - start)`` distance
        callback for rows ``[start, stop)`` of the scanned store.  Only one
        block of scores is alive at a time.
    ntotal:
        Number of stored rows to scan.
    k:
        Winners per query.
    num_queries:
        Rows of every ``score_block`` result (fixes the output shape even
        when ``ntotal`` is 0 and the callback is never invoked).
    block_size:
        Scan granularity (defaults to :data:`DEFAULT_BLOCK_SIZE`).
    id_offset:
        Added to every returned id (used by sharded scans to map a shard's
        local row space into the global id space).
    exclude:
        Optional ``(ntotal,)`` tombstone bitmap; each block receives its
        slice (see :func:`block_topk`), so removed rows never enter the
        running top-k.

    Returns the ``(ids, distances)`` pair in :class:`SearchResult` layout.
    """
    block = block_size if block_size is not None else DEFAULT_BLOCK_SIZE
    if block < 1:
        raise ValueError(f"block_size must be >= 1, got {block}")
    run_ids: np.ndarray | None = None
    run_d: np.ndarray | None = None
    for start in range(0, ntotal, block):
        stop = min(start + block, ntotal)
        blk_ids, blk_d = block_topk(
            score_block(start, stop),
            k,
            id_offset + start,
            exclude=exclude[start:stop] if exclude is not None else None,
        )
        if run_ids is None or run_d is None:
            run_ids, run_d = blk_ids, blk_d
        else:
            run_ids, run_d = merge_topk(run_ids, run_d, blk_ids, blk_d, k)
    if run_ids is None or run_d is None:
        run_ids = np.full((num_queries, k), -1, dtype=np.int64)
        run_d = np.full((num_queries, k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
    return run_ids, run_d
