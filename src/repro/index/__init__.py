"""Vector similarity-search library (the reproduction's FAISS substitute).

Implements the index families the paper relies on:

- :class:`FlatIndex` — exact brute-force L2 / inner-product search
  (``IndexFlatL2`` in FAISS); the ground truth for recall experiments.
- :class:`PQIndex` — product quantization (Jégou et al.), the paper's
  default 256 B -> 8 B compression (Section III-D).
- :class:`IVFFlatIndex` / :class:`IVFPQIndex` — inverted-file coarse
  quantization with optional PQ-compressed residual codes.
- :class:`LSHIndex` — random-hyperplane signed LSH, used as the Table V
  baseline family.
- :class:`HNSWIndex` — hierarchical navigable small-world graphs (the
  algorithm behind nmslib, the paper's runner-up library).
- :class:`PCATransform` — the dimensionality-reduction alternative the
  paper compares against PQ in Figure 5.
"""

from repro.index.base import SearchResult, VectorIndex
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.ivfpq import IVFPQIndex
from repro.index.kmeans import KMeans
from repro.index.lsh import LSHIndex
from repro.index.pca import PCATransform
from repro.index.pq import PQIndex, ProductQuantizer

__all__ = [
    "FlatIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "KMeans",
    "LSHIndex",
    "PCATransform",
    "PQIndex",
    "ProductQuantizer",
    "SearchResult",
    "VectorIndex",
]
