"""Vector similarity-search library (the reproduction's FAISS substitute).

Implements the index families the paper relies on:

- :class:`FlatIndex` — exact brute-force L2 / inner-product search
  (``IndexFlatL2`` in FAISS); the ground truth for recall experiments.
- :class:`PQIndex` — product quantization (Jégou et al.), the paper's
  default 256 B -> 8 B compression (Section III-D).
- :class:`IVFFlatIndex` / :class:`IVFPQIndex` — inverted-file coarse
  quantization with optional PQ-compressed residual codes.
- :class:`LSHIndex` — random-hyperplane signed LSH, used as the Table V
  baseline family.
- :class:`HNSWIndex` — hierarchical navigable small-world graphs (the
  algorithm behind nmslib, the paper's runner-up library).
- :class:`PCATransform` — the dimensionality-reduction alternative the
  paper compares against PQ in Figure 5.
- :class:`ShardedIndex` — serving-scale fan-out wrapper striping any of
  the families above across N thread-parallel shards.
- :class:`TypePartitionedIndex` — one sub-index per string partition key
  (per entity type in serving), so type-constrained lookups scan only
  the selected partitions' rows.

The scanning families (flat, PQ) stream their stores through the blockwise
top-k kernel in :mod:`repro.index.topk` (``merge_topk`` and friends), so
peak search memory is bounded by the block size rather than ``ntotal``.
"""

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.ivfpq import IVFPQIndex
from repro.index.kmeans import KMeans
from repro.index.lsh import LSHIndex
from repro.index.partitioned import DEFAULT_PARTITION, TypePartitionedIndex
from repro.index.pca import PCATransform
from repro.index.pq import PQIndex, ProductQuantizer
from repro.index.sharded import ShardedIndex
from repro.index.topk import (
    DEFAULT_BLOCK_SIZE,
    auto_block_size,
    block_topk,
    blockwise_topk,
    merge_topk,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_PARTITION",
    "FlatIndex",
    "GrowBuffer",
    "HNSWIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "KMeans",
    "LSHIndex",
    "PCATransform",
    "PQIndex",
    "ProductQuantizer",
    "SearchResult",
    "ShardedIndex",
    "TypePartitionedIndex",
    "VectorIndex",
    "auto_block_size",
    "block_topk",
    "blockwise_topk",
    "merge_topk",
]
