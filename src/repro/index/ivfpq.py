"""Inverted-file index over PQ-compressed residuals (FAISS ``IndexIVFPQ``).

Vectors are assigned to a coarse cell; the residual (vector minus cell
centroid) is PQ-encoded.  Search probes ``nprobe`` cells and ranks with
asymmetric distances computed on the query residual per probed cell.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.kmeans import KMeans
from repro.index.pq import ProductQuantizer
from repro.utils.contracts import array_contract
from repro.utils.rng import as_rng

__all__ = ["IVFPQIndex"]


class IVFPQIndex(VectorIndex):
    """Coarse quantizer + PQ-compressed residual codes."""

    def __init__(
        self,
        dim: int,
        nlist: int = 64,
        m: int = 8,
        nbits: int = 8,
        nprobe: int = 8,
        seed: int | np.random.Generator | None = None,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= nprobe <= nlist:
            raise ValueError(f"nprobe must be in [1, {nlist}], got {nprobe}")
        self.dim = dim
        self.nlist = nlist
        self.nprobe = nprobe
        self.rng = as_rng(seed)
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, seed=self.rng)
        self._quantizer: KMeans | None = None
        self._list_ids: list[list[int]] = [[] for _ in range(nlist)]
        self._list_codes: list[list[np.ndarray]] = [[] for _ in range(nlist)]
        self._ntotal = 0

    @property
    def is_trained(self) -> bool:
        return self._quantizer is not None and self.pq.is_trained

    @property
    def ntotal(self) -> int:
        return self._ntotal

    @array_contract("vectors: (..., d) num::any -> None")
    def train(self, vectors: np.ndarray) -> None:
        vectors = self._check_vectors(vectors, "training vectors")
        self._quantizer = KMeans(self.nlist, seed=self.rng).fit(vectors)
        cells = self._quantizer.predict(vectors)
        residuals = vectors - self._quantizer.centroids[cells]
        self.pq.train(residuals)

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        if not self.is_trained:
            raise RuntimeError("IVFPQIndex.add called before train()")
        vectors = self._check_vectors(vectors, "vectors")
        assert self._quantizer is not None
        cells = self._quantizer.predict(vectors)
        residuals = vectors - self._quantizer.centroids[cells]
        codes = self.pq.encode(residuals)
        for offset, cell in enumerate(cells):
            cell = int(cell)
            self._list_ids[cell].append(self._ntotal + offset)
            self._list_codes[cell].append(codes[offset])
        self._ntotal += len(vectors)

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> SearchResult:
        if not self.is_trained:
            raise RuntimeError("IVFPQIndex.search called before train()")
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        nprobe = nprobe if nprobe is not None else self.nprobe
        assert self._quantizer is not None

        ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Distance accumulator in the SearchResult contract, not storage.
        distances = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        if self._ntotal == 0:
            return SearchResult(ids=ids, distances=distances)

        cell_d = self._quantizer.transform(queries)
        probe_cells = np.argsort(cell_d, axis=1)[:, :nprobe]
        centroids = self._quantizer.centroids
        for qi in range(len(queries)):
            all_ids: list[int] = []
            all_d: list[np.ndarray] = []
            for cell in probe_cells[qi].tolist():
                if not self._list_ids[cell]:
                    continue
                # Cells hold ragged per-vector code rows; one stack per
                # probed cell is the gather, not iterative growth.
                codes = np.stack(self._list_codes[cell])  # repro: noqa[REP501]
                residual_q = (queries[qi] - centroids[cell])[None, :]
                d = self.pq.adc_distances(residual_q, codes).ravel()
                all_ids.extend(self._list_ids[cell])
                all_d.append(d)
            if not all_ids:
                continue
            cand_ids = np.asarray(all_ids, dtype=np.int64)
            # One concatenate per query over the ragged probe results.
            cand_d = np.concatenate(all_d)  # repro: noqa[REP501]
            take = min(k, len(cand_ids))
            order = np.argsort(cand_d, kind="stable")[:take]
            ids[qi, :take] = cand_ids[order]
            distances[qi, :take] = cand_d[order]
        return SearchResult(ids=ids, distances=distances)

    def memory_bytes(self) -> int:
        code_bytes = self._ntotal * self.pq.m
        centroid_bytes = self._quantizer.centroids.nbytes if self._quantizer else 0
        codebook_bytes = (
            self.pq.codebooks.nbytes if self.pq.codebooks is not None else 0
        )
        return code_bytes + centroid_bytes + codebook_bytes + self._ntotal * 8
