"""Exact brute-force index (FAISS ``IndexFlatL2`` equivalent).

This is the "EmbLookup without compression" (EL-NC) index of the paper and
the ground truth for the Figure 4 recall experiments.  Since the serving
PR the scan is *blockwise*: distances are computed one
:data:`~repro.index.topk.DEFAULT_BLOCK_SIZE`-row block at a time and folded
into a running top-k, so peak memory is O(n_queries x block) instead of the
full O(n_queries x ntotal) matrix, and storage grows through an amortized
doubling buffer instead of a per-``add`` ``np.concatenate``.

Since the online-mutation PR the index is also *mutable under live
traffic*: :meth:`FlatIndex.remove` and :meth:`FlatIndex.update` tombstone
rows through the copy-on-write snapshot protocol of
:mod:`repro.index.mutation`, searches pin one published
:class:`~repro.index.mutation.IndexSnapshot` for their whole scan, and
:meth:`FlatIndex.compact` rebuilds the store without the dead rows.  Row
ids are stable until a compaction, which returns an old-to-new id remap.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.kmeans import _squared_distances
from repro.index.mutation import (
    IndexSnapshot,
    bury,
    check_row_ids,
    extend_tombstones,
)
from repro.index.topk import auto_block_size, blockwise_topk
from repro.utils.contracts import array_contract

__all__ = ["FlatIndex"]


class FlatIndex(VectorIndex):
    """Stores vectors verbatim; search is an exact blockwise distance scan.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    metric:
        ``"l2"`` (squared Euclidean) or ``"ip"`` (inner product, returned as
        a *distance*, i.e. negated similarity).
    block_size:
        Default scan granularity (rows scored per block); overridable per
        :meth:`search` call.  ``None`` (the default) derives the block
        from the batch size via :func:`repro.index.topk.auto_block_size`
        so one-query probes and 256-query benches each get a
        cache-friendly tile.

    Concurrency: mutators (:meth:`add` / :meth:`remove` / :meth:`update` /
    :meth:`compact`) serialize on one write lock and publish immutable
    snapshots; searches are lock-free readers pinned on one snapshot (see
    :mod:`repro.index.mutation` for the protocol and its invariant).
    """

    def __init__(self, dim: int, metric: str = "l2", block_size: int | None = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if metric not in ("l2", "ip"):
            raise ValueError(f"metric must be 'l2' or 'ip', got {metric!r}")
        self.dim = dim
        self.metric = metric
        self.block_size = block_size
        self._store = GrowBuffer(dim, np.float32)
        self._write_lock = threading.Lock()
        self._snap = IndexSnapshot(0, None, 0)

    @property
    def ntotal(self) -> int:
        """Stored rows, including tombstoned ones (the row-id space)."""
        return self._snap.rows

    @property
    def nlive(self) -> int:
        """Rows visible to a search (stored minus tombstoned)."""
        return self._snap.nlive

    @property
    def tombstone_count(self) -> int:
        """Removed rows awaiting :meth:`compact`."""
        return self._snap.tombstone_count

    @property
    def mutation_epoch(self) -> int:
        """Published mutation count; changes iff the visible set changed."""
        return self._snap.epoch

    @property
    def vectors(self) -> np.ndarray:
        """The stored matrix (read-only view; re-fetch after ``add``)."""
        return self._store.view

    def snapshot(self) -> IndexSnapshot:
        """The currently published visibility snapshot (atomic read)."""
        return self._snap

    def _publish(self, tombstones: np.ndarray | None) -> None:
        """Publish a new snapshot; caller must hold ``_write_lock``."""
        self._snap = IndexSnapshot(
            len(self._store), tombstones, self._snap.epoch + 1
        )

    def _capture(
        self, snapshot: IndexSnapshot | None
    ) -> tuple[IndexSnapshot, np.ndarray]:
        """Pin a consistent ``(snapshot, store view)`` pair for one scan.

        The optimistic path re-reads ``_snap`` after fetching the view: a
        compaction swapping the store in between strictly shrinks it (a
        no-shrink compaction is a no-op), so either the identity check or
        the length check detects the swap and the read retries.  Appends
        never invalidate the pair — the view is prefix-stable.
        """
        if snapshot is not None:
            return snapshot, self._store.view
        for _ in range(3):
            snap = self._snap
            view = self._store.view
            if self._snap is snap and len(view) >= snap.rows:
                return snap, view
        with self._write_lock:
            return self._snap, self._store.view

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        """Append rows (new row ids are ``[ntotal, ntotal + n)``)."""
        vectors = self._check_vectors(vectors, "vectors")
        with self._write_lock:
            self._store.append(vectors)
            self._publish(
                extend_tombstones(self._snap.tombstones, len(vectors))
            )

    @array_contract("ids: any -> None")
    def remove(self, ids) -> None:
        """Tombstone the given row ids (all-or-nothing; ids stay stable).

        Raises ``ValueError`` on out-of-range, duplicate, or
        already-removed ids — before any visibility change is published.
        """
        with self._write_lock:
            row_ids = check_row_ids(ids, len(self._store))
            self._publish(bury(self._snap.tombstones, len(self._store), row_ids))

    @array_contract("ids: any, vectors: (..., d) num::any -> (_,) i64")
    def update(self, ids, vectors: np.ndarray) -> np.ndarray:
        """Atomically replace rows: tombstone ``ids``, append ``vectors``.

        One snapshot publish covers both halves, so a concurrent search
        sees either the old rows or the new ones — never neither, never
        both.  Returns the new rows' ids (the id and vector counts may
        differ; an entity may gain or lose surface forms).
        """
        vectors = self._check_vectors(vectors, "vectors")
        with self._write_lock:
            row_ids = check_row_ids(ids, len(self._store))
            base = len(self._store)
            self._store.append(vectors)
            tombstones = bury(
                extend_tombstones(self._snap.tombstones, len(vectors)),
                len(self._store),
                row_ids,
            )
            self._publish(tombstones)
            return base + np.arange(len(vectors), dtype=np.int64)

    @array_contract("-> any")
    def compact(self) -> np.ndarray | None:
        """Rebuild the store without tombstoned rows; reset the bitmap.

        Returns the ``(old_rows,)`` int64 remap — new id per old row,
        ``-1`` for removed rows — or ``None`` when there was nothing to
        reclaim (no swap happened).  Atomic: searches pinned on the old
        snapshot keep scanning the old store object untouched.
        """
        with self._write_lock:
            snap = self._snap
            if snap.tombstones is None or not snap.tombstones.any():
                return None
            alive = ~snap.tombstones
            remap = np.where(
                alive, np.cumsum(alive) - 1, np.int64(-1)
            ).astype(np.int64)
            new_store = GrowBuffer(self.dim, np.float32)
            live_rows = self._store.view[: snap.rows][alive]
            if len(live_rows):
                new_store.append(live_rows)
            self._store = new_store
            self._publish(None)
            return remap

    def _score_block(
        self, queries: np.ndarray, store: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Distances of all queries against stored rows ``[start, stop)``."""
        block = store[start:stop]
        if self.metric == "l2":
            return _squared_distances(queries, block)
        # Inner products accumulate over dim float32 terms; float64
        # accumulation keeps ties stable (storage stays float32).
        return -(queries.astype(np.float64) @ block.astype(np.float64).T)  # repro: noqa[REP102]

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self,
        queries: np.ndarray,
        k: int,
        block_size: int | None = None,
        snapshot: IndexSnapshot | None = None,
    ) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        block = block_size if block_size is not None else self.block_size
        if block is None:
            block = auto_block_size(len(queries))
        snap, store = self._capture(snapshot)
        ids, distances = blockwise_topk(
            lambda start, stop: self._score_block(queries, store, start, stop),
            snap.rows,
            k,
            num_queries=len(queries),
            block_size=block,
            exclude=snap.tombstones,
        )
        return SearchResult(ids=ids, distances=distances)

    @array_contract("idx: int -> (d,) f32")
    def reconstruct(self, idx: int) -> np.ndarray:
        """Return the stored vector for row ``idx``."""
        return self._store.view[idx].copy()

    def memory_bytes(self) -> int:
        snap = self._snap
        tomb_bytes = (
            snap.tombstones.nbytes if snap.tombstones is not None else 0
        )
        return self._store.nbytes() + tomb_bytes
