"""Exact brute-force index (FAISS ``IndexFlatL2`` equivalent).

This is the "EmbLookup without compression" (EL-NC) index of the paper and
the ground truth for the Figure 4 recall experiments.  Since the serving
PR the scan is *blockwise*: distances are computed one
:data:`~repro.index.topk.DEFAULT_BLOCK_SIZE`-row block at a time and folded
into a running top-k, so peak memory is O(n_queries x block) instead of the
full O(n_queries x ntotal) matrix, and storage grows through an amortized
doubling buffer instead of a per-``add`` ``np.concatenate``.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.buffer import GrowBuffer
from repro.index.kmeans import _squared_distances
from repro.index.topk import auto_block_size, blockwise_topk
from repro.utils.contracts import array_contract

__all__ = ["FlatIndex"]


class FlatIndex(VectorIndex):
    """Stores vectors verbatim; search is an exact blockwise distance scan.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    metric:
        ``"l2"`` (squared Euclidean) or ``"ip"`` (inner product, returned as
        a *distance*, i.e. negated similarity).
    block_size:
        Default scan granularity (rows scored per block); overridable per
        :meth:`search` call.  ``None`` (the default) derives the block
        from the batch size via :func:`repro.index.topk.auto_block_size`
        so one-query probes and 256-query benches each get a
        cache-friendly tile.
    """

    def __init__(self, dim: int, metric: str = "l2", block_size: int | None = None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if metric not in ("l2", "ip"):
            raise ValueError(f"metric must be 'l2' or 'ip', got {metric!r}")
        self.dim = dim
        self.metric = metric
        self.block_size = block_size
        self._store = GrowBuffer(dim, np.float32)

    @property
    def ntotal(self) -> int:
        return len(self._store)

    @property
    def vectors(self) -> np.ndarray:
        """The stored matrix (read-only view; re-fetch after ``add``)."""
        return self._store.view

    @array_contract("vectors: (..., d) num::any -> None")
    def add(self, vectors: np.ndarray) -> None:
        vectors = self._check_vectors(vectors, "vectors")
        self._store.append(vectors)

    def _score_block(self, queries: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Distances of all queries against stored rows ``[start, stop)``."""
        block = self._store.view[start:stop]
        if self.metric == "l2":
            return _squared_distances(queries, block)
        # Inner products accumulate over dim float32 terms; float64
        # accumulation keeps ties stable (storage stays float32).
        return -(queries.astype(np.float64) @ block.astype(np.float64).T)  # repro: noqa[REP102]

    @array_contract("queries: (..., d) num::any, k: int -> SearchResult")
    def search(
        self, queries: np.ndarray, k: int, block_size: int | None = None
    ) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        block = block_size if block_size is not None else self.block_size
        if block is None:
            block = auto_block_size(len(queries))
        ids, distances = blockwise_topk(
            lambda start, stop: self._score_block(queries, start, stop),
            self.ntotal,
            k,
            num_queries=len(queries),
            block_size=block,
        )
        return SearchResult(ids=ids, distances=distances)

    @array_contract("idx: int -> (d,) f32")
    def reconstruct(self, idx: int) -> np.ndarray:
        """Return the stored vector for row ``idx``."""
        return self._store.view[idx].copy()

    def memory_bytes(self) -> int:
        return self._store.nbytes()
