"""Exact brute-force index (FAISS ``IndexFlatL2`` equivalent).

This is the "EmbLookup without compression" (EL-NC) index of the paper and
the ground truth for the Figure 4 recall experiments.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.kmeans import _squared_distances

__all__ = ["FlatIndex"]


class FlatIndex(VectorIndex):
    """Stores vectors verbatim; search is an exact distance scan.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    metric:
        ``"l2"`` (squared Euclidean) or ``"ip"`` (inner product, returned as
        a *distance*, i.e. negated similarity).
    """

    def __init__(self, dim: int, metric: str = "l2"):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if metric not in ("l2", "ip"):
            raise ValueError(f"metric must be 'l2' or 'ip', got {metric!r}")
        self.dim = dim
        self.metric = metric
        self._vectors = np.empty((0, dim), dtype=np.float32)

    @property
    def ntotal(self) -> int:
        return len(self._vectors)

    @property
    def vectors(self) -> np.ndarray:
        """The stored matrix (read-only view for callers)."""
        return self._vectors

    def add(self, vectors: np.ndarray) -> None:
        vectors = self._check_vectors(vectors, "vectors")
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)

    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        queries = self._check_vectors(queries, "queries")
        self._check_k(k)
        n = self.ntotal
        ids = np.full((len(queries), k), -1, dtype=np.int64)
        # Distances are a per-query accumulator in the SearchResult
        # contract, not stored vectors; float64 here costs O(nq * k).
        distances = np.full((len(queries), k), np.inf, dtype=np.float64)  # repro: noqa[REP102]
        if n == 0:
            return SearchResult(ids=ids, distances=distances)

        if self.metric == "l2":
            d = _squared_distances(queries, self._vectors)
        else:
            # Inner products accumulate over dim float32 terms; float64
            # accumulation keeps ties stable (storage stays float32).
            d = -(queries.astype(np.float64) @ self._vectors.astype(np.float64).T)  # repro: noqa[REP102]

        take = min(k, n)
        if take < n:
            part = np.argpartition(d, take - 1, axis=1)[:, :take]
        else:
            part = np.tile(np.arange(n, dtype=np.int64), (len(queries), 1))
        part_d = np.take_along_axis(d, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        ids[:, :take] = np.take_along_axis(part, order, axis=1)
        distances[:, :take] = np.take_along_axis(part_d, order, axis=1)
        return SearchResult(ids=ids, distances=distances)

    def reconstruct(self, idx: int) -> np.ndarray:
        """Return the stored vector for row ``idx``."""
        return self._vectors[idx].copy()

    def memory_bytes(self) -> int:
        return self._vectors.nbytes
