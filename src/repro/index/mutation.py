"""Snapshot and tombstone primitives for online index mutation.

The index family supports ``add`` / ``remove`` / ``update`` under live
search traffic.  The mechanism that makes a concurrent search safe is
*snapshot publication*:

- every mutable index keeps its current visibility state in a single
  :class:`IndexSnapshot` attribute (``rows`` visible, a tombstone bitmap
  over them, a monotonically increasing ``epoch``);
- mutators serialize on the index's write lock, build a **new** snapshot
  (tombstone arrays are copy-on-write — never mutated in place) and
  publish it with one attribute assignment, which is atomic under the
  GIL;
- a search reads the attribute **once** and scans against that pinned
  snapshot.  Because the row stores (:class:`~repro.index.buffer.
  GrowBuffer`) are prefix-stable — appends only write beyond the
  published length, and reallocation copies the prefix verbatim — the
  pinned ``(rows, tombstones)`` pair always describes a complete,
  internally consistent entity set.

The result is the *old-or-new* invariant the property suite in
``tests/property/test_mutation.py`` enforces: a lookup concurrent with a
mutation equals the brute-force oracle over either the pre-mutation or
the post-mutation entity set, never a torn mixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.contracts import array_contract

__all__ = [
    "IndexSnapshot",
    "bury",
    "check_row_ids",
    "extend_tombstones",
    "validate_removable",
]


@dataclass(frozen=True)
class IndexSnapshot:
    """One immutable visibility state of a mutable index.

    ``rows`` is the number of stored rows visible to a search pinned on
    this snapshot; ``tombstones`` is a read-only boolean bitmap over
    those rows (``None`` means every row is live); ``epoch`` increases
    by one per published mutation, so equality of epochs identifies a
    state and callers (compaction, the serving engine's retry guard)
    can detect that the index moved underneath them.
    """

    rows: int
    tombstones: np.ndarray | None
    epoch: int

    @property
    def tombstone_count(self) -> int:
        """Number of removed (but not yet compacted) rows."""
        if self.tombstones is None:
            return 0
        return int(self.tombstones.sum())

    @property
    def nlive(self) -> int:
        """Rows visible to a search pinned on this snapshot."""
        return self.rows - self.tombstone_count


@array_contract("ids: any, rows: int -> (_,) i64")
def check_row_ids(ids, rows: int) -> np.ndarray:
    """Validate a caller-supplied row-id batch against ``rows`` stored rows.

    Returns the ids as a 1-D int64 array.  Raises ``ValueError`` for
    non-integer input, out-of-range ids, or duplicates (a duplicate in a
    ``remove`` batch is a double-free).
    """
    out = np.asarray(ids)  # repro: noqa[REP101] -- dtype validated below
    if out.size == 0:
        return np.empty(0, dtype=np.int64)
    if out.dtype.kind not in "iu":
        raise ValueError(f"row ids must be integers, got dtype {out.dtype}")
    out = out.astype(np.int64, copy=False).ravel()
    if out.min() < 0 or out.max() >= rows:
        raise ValueError(
            f"row ids must be in [0, {rows}), got range "
            f"[{out.min()}, {out.max()}]"
        )
    if len(np.unique(out)) != len(out):
        raise ValueError("duplicate row ids in one mutation batch")
    return out


@array_contract("tombstones: any, extra: int -> any")
def extend_tombstones(
    tombstones: np.ndarray | None, extra: int
) -> np.ndarray | None:
    """Copy-on-write extension of a bitmap by ``extra`` live rows."""
    if tombstones is None:
        return None
    return np.concatenate([tombstones, np.zeros(extra, dtype=bool)])


@array_contract("tombstones: any, ids: (_,) i64::any -> None")
def validate_removable(tombstones: np.ndarray | None, ids: np.ndarray) -> None:
    """Raise ``ValueError`` when any id is already tombstoned.

    Used for all-or-nothing pre-validation before a multi-shard remove
    touches any shard.
    """
    if tombstones is None or ids.size == 0:
        return
    dead = ids[tombstones[ids]]
    if dead.size:
        raise ValueError(f"row ids already removed: {dead.tolist()}")


@array_contract("tombstones: any, rows: int, ids: (_,) i64::any -> (rows,) bool")
def bury(
    tombstones: np.ndarray | None, rows: int, ids: np.ndarray
) -> np.ndarray:
    """New bitmap over ``rows`` with ``ids`` tombstoned (copy-on-write).

    ``ids`` must already be validated by :func:`check_row_ids`; a
    double-remove raises ``ValueError`` before anything is written.
    """
    validate_removable(tombstones, ids)
    if tombstones is None:
        out = np.zeros(rows, dtype=bool)
    else:
        out = np.concatenate(
            [tombstones, np.zeros(rows - len(tombstones), dtype=bool)]
        )
    out[ids] = True
    return out
