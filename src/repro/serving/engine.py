"""Micro-batching query engine over an EmbLookup pipeline.

The engine answers the serving-path question the offline benchmark tables
ignore: queries arrive one at a time, but the embedding model and the
vector index are both far cheaper per query when driven in batches.
:meth:`LookupEngine.submit` therefore enqueues single queries and returns
a :class:`PendingLookup` handle; the queue is flushed into one batched
lookup when it reaches ``max_batch_size``, when the oldest entry exceeds
``max_batch_age`` seconds, or when :meth:`LookupEngine.flush` is called
explicitly.

Each flush runs the full serving pipeline -- LRU cache probe, embedding
of the misses, (sharded) blockwise index scan, duplicate-row ranking --
with a dedicated :class:`~repro.utils.timing.Stopwatch` per stage, on top
of the whole-call ``query_time`` every :class:`LookupService` keeps.

Failure semantics (the fault-injection suite in ``tests/property``
exercises every branch):

- **Error isolation** -- when a batched lookup raises, the engine retries
  each of the batch's queries individually, so a poisoned query fails
  alone (its handle raises from :attr:`PendingLookup.result`) while its
  batch-mates still resolve normally.
- **Deadlines** -- ``batch_deadline`` bounds one batch's wall time; the
  embed and search stages check it and raise
  :class:`LookupDeadlineExceeded` rather than starting work they cannot
  finish in time.
- **Degradation** -- a sharded index may return ``partial=True`` results
  when shards fail; the engine serves them (and counts them in
  :meth:`LookupEngine.serving_stats`) instead of erroring.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

import numpy as np

from repro.core.pipeline import EmbLookup
from repro.index.base import SearchResult, VectorIndex
from repro.index.flat import FlatIndex
from repro.index.partitioned import TypePartitionedIndex
from repro.index.sharded import ShardedIndex
from repro.lookup.base import Candidate, LookupService
from repro.lookup.cache import QueryCache
from repro.lookup.normalize import normalize
from repro.lookup.router import LookupRouter, TypeFilterMap
from repro.utils.contracts import array_contract
from repro.utils.timing import Stopwatch

__all__ = ["LookupDeadlineExceeded", "LookupEngine", "PendingLookup"]

#: Stage names, in pipeline order, that the engine times per flush.
#: ``route`` is the router's exact/fuzzy short-circuit pass (0 when no
#: router is attached); the router additionally times each tier in its
#: own ``tier_times``.
_STAGES = ("cache", "route", "embed", "search", "rank")


class LookupDeadlineExceeded(TimeoutError):
    """A micro-batch blew its ``batch_deadline`` before finishing."""


class PendingLookup:
    """Handle for a query submitted to a :class:`LookupEngine`.

    The result materialises when the engine flushes the micro-batch the
    query rides in; reading :attr:`result` before that forces a flush.
    A query that failed during its flush (poisoned input, deadline, dead
    index) stores the exception instead: :attr:`done` is still True,
    :attr:`exception` holds the error, and :attr:`result` re-raises it.
    Every submitted handle resolves one way or the other — flush never
    strands a handle, even when the whole batch errors.
    """

    __slots__ = ("_engine", "_row", "_done", "_error")

    def __init__(self, engine: "LookupEngine"):
        self._engine = engine
        self._row: list[Candidate] = []
        self._done = False
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """Whether the micro-batch holding this query has been flushed."""
        return self._done

    @property
    def exception(self) -> BaseException | None:
        """The error this query failed with, or ``None`` (does not flush)."""
        return self._error

    @property
    def result(self) -> list[Candidate]:
        """The candidate list, flushing the engine's queue if needed.

        Raises the stored exception when this query's serve failed.
        """
        if not self._done:
            self._engine.flush()
        if not self._done:
            raise RuntimeError("pending lookup was not resolved by flush()")
        if self._error is not None:
            raise self._error
        return self._row

    def _resolve(self, row: list[Candidate]) -> None:
        self._row = row
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True


class LookupEngine(LookupService):
    """Micro-batched entity lookup over a fitted EmbLookup pipeline.

    The engine owns its vector index (typically a
    :class:`~repro.index.sharded.ShardedIndex` built by
    :meth:`from_pipeline`) and an optional :class:`QueryCache`; the
    pipeline contributes only the trained embedding model and the
    row -> entity mapping.  It is also a regular :class:`LookupService`,
    so ``lookup_batch`` works synchronously and the evaluation harness
    can benchmark it like any other service.

    Parameters
    ----------
    batch_deadline:
        Wall-clock budget in seconds for serving one batch (``None``
        disables it).  Checked before the embed and search stages; a
        batch that is already over budget raises
        :class:`LookupDeadlineExceeded` for its remaining queries instead
        of starting more work.  During the per-query isolation retry each
        query gets its own fresh budget.
    fault_hook:
        Test-only callable invoked with every serve attempt's normalized
        query list (see :class:`repro.testing.faults.QueryPoison`); the
        production value is ``None``.  Duck-typed so this layer never
        imports ``repro.testing``.
    router:
        Optional :class:`~repro.lookup.router.LookupRouter` whose exact
        and fuzzy tiers short-circuit queries *before* the embed stage
        (its ``ann`` tier should be ``None`` — this engine is the ANN
        path).  Tier counters surface in :meth:`serving_stats`.
    type_map:
        :class:`~repro.lookup.router.TypeFilterMap` enabling
        ``type_filter=`` lookups; defaults to the router's map.  With a
        :class:`~repro.index.partitioned.TypePartitionedIndex` a typed
        search scans only the matching partitions; with any other index
        it over-fetches the full scan and filters at rank time (same
        results, no scan savings).
    """

    name = "serving_engine"

    def __init__(
        self,
        pipeline: EmbLookup,
        index: VectorIndex,
        row_to_entity: Sequence[str],
        cache: QueryCache | None = None,
        max_batch_size: int = 32,
        max_batch_age: float = 0.005,
        batch_deadline: float | None = None,
        fault_hook=None,
        router: LookupRouter | None = None,
        type_map: TypeFilterMap | None = None,
    ):
        super().__init__()
        if pipeline.model is None:
            raise ValueError("LookupEngine requires a fitted pipeline")
        if index.ntotal != len(row_to_entity):
            raise ValueError(
                f"index has {index.ntotal} rows but row_to_entity maps "
                f"{len(row_to_entity)}"
            )
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_batch_age < 0:
            raise ValueError("max_batch_age must be >= 0")
        if batch_deadline is not None and batch_deadline <= 0:
            raise ValueError("batch_deadline must be positive or None")
        self.pipeline = pipeline
        self._index = index
        self._row_to_entity = list(row_to_entity)
        # Alias rows make several index rows resolve to one entity, so the
        # search must over-fetch before dedup (same policy as the core
        # pipeline's lookup_batch).
        self._has_alias_rows = len(set(self._row_to_entity)) < len(
            self._row_to_entity
        )
        self.cache = cache
        self.max_batch_size = max_batch_size
        self.max_batch_age = max_batch_age
        self.batch_deadline = batch_deadline
        self.fault_hook = fault_hook
        self.router = router
        self._type_map = (
            type_map
            if type_map is not None
            else (router.type_map if router is not None else None)
        )
        self.stage_times: dict[str, Stopwatch] = {
            stage: Stopwatch() for stage in _STAGES
        }
        self._pending: list[tuple[str, int, PendingLookup]] = []
        self._batch_started = 0.0
        self._lock = threading.Lock()
        # Deadline is per serving thread: concurrent lookup_batch calls
        # each get their own budget instead of racing on a shared one.
        self._deadline = threading.local()
        self._stats_lock = threading.Lock()
        self._partial_results = 0
        self._failed_queries = 0
        self._deadline_hits = 0
        self._isolation_retries = 0
        self._type_rows_scanned = 0
        # type_filter -> count of rows in its scanned row set whose entity
        # is NOT admissible (the exact over-fetch needed for bit-identical
        # filtered results).  Memoized; guarded by _stats_lock.
        self._impure_rows: dict[str, int] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_pipeline(
        cls,
        pipeline: EmbLookup,
        num_shards: int = 1,
        cache_size: int | None = None,
        block_size: int | None = None,
        executor: str = "auto",
        num_workers: int | None = None,
        shard_timeout: float | None = None,
        partition_by_type: bool = False,
        router: "LookupRouter | bool | None" = None,
        **engine_kwargs,
    ) -> "LookupEngine":
        """Build an engine (and its flat/sharded index) from a fitted pipeline.

        Re-embeds the pipeline's index rows into a fresh uncompressed
        index: a :class:`FlatIndex` for ``num_shards == 1``, a
        :class:`ShardedIndex` of flat shards otherwise.  ``cache_size``
        defaults to the pipeline config's ``query_cache_size``; pass an
        explicit value to override.  ``block_size`` tunes the blockwise
        scan (``None`` derives it from the batch size).  ``executor`` /
        ``num_workers`` / ``shard_timeout`` select the sharded execution
        model — ``executor="process"`` with ``num_workers`` worker
        processes over shared-memory shards is the multi-core serving
        configuration, ``"auto"`` picks it only when the host has cores
        to use (see :mod:`repro.index.sharded`).

        ``partition_by_type=True`` builds a
        :class:`~repro.index.partitioned.TypePartitionedIndex` keyed by
        each entity's primary type (``num_shards > 1`` shards every
        partition), so ``type_filter=`` lookups scan only matching
        partitions.  ``router=True`` attaches a
        :class:`~repro.lookup.router.LookupRouter` built from the
        pipeline's KG (exact label-hash tier plus a q-gram fuzzy tier);
        pass a ready router for custom tiers.  ``engine_kwargs`` forward
        to the constructor.
        """
        if pipeline.model is None:
            raise ValueError("from_pipeline requires a fitted pipeline")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        mentions, row_to_entity = pipeline.index_rows()
        vectors = pipeline.embed_queries(mentions)
        dim = pipeline.config.embedding_dim

        def flat(d: int) -> FlatIndex:
            return FlatIndex(d, block_size=block_size)

        def sharded(d: int) -> ShardedIndex:
            return ShardedIndex(
                d,
                num_shards,
                factory=flat,
                executor=executor,
                num_workers=num_workers,
                shard_timeout=shard_timeout,
            )

        index: VectorIndex
        if partition_by_type:
            index = TypePartitionedIndex(
                dim, factory=flat if num_shards == 1 else sharded
            )
            index.train(vectors)
            index.add(vectors, pipeline.index_row_types())
        else:
            index = flat(dim) if num_shards == 1 else sharded(dim)
            index.train(vectors)
            index.add(vectors)
        if router is True:
            if pipeline.kg is None:
                raise ValueError("router=True requires the pipeline's KG")
            router = LookupRouter.build(pipeline.kg, ann=None, fuzzy="qgram")
        elif router is False:
            router = None
        type_map = engine_kwargs.pop("type_map", None)
        if type_map is None:
            if router is not None:
                type_map = router.type_map
            elif partition_by_type and pipeline.kg is not None:
                type_map = TypeFilterMap.from_kg(pipeline.kg)
        if cache_size is None:
            cache_size = pipeline.config.query_cache_size
        cache = (
            QueryCache(cache_size, cache_results=True)
            if cache_size > 0
            else None
        )
        return cls(
            pipeline,
            index,
            row_to_entity,
            cache=cache,
            router=router,
            type_map=type_map,
            **engine_kwargs,
        )

    # -- micro-batching --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of submitted queries waiting for the next flush."""
        with self._lock:
            return len(self._pending)

    def submit(self, query: str, k: int = 10) -> PendingLookup:
        """Enqueue one query; auto-flushes on size or age thresholds."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        handle = PendingLookup(self)
        with self._lock:
            if not self._pending:
                self._batch_started = time.monotonic()
            self._pending.append((query, k, handle))
            should_flush = len(self._pending) >= self.max_batch_size or (
                time.monotonic() - self._batch_started >= self.max_batch_age
            )
        if should_flush:
            self.flush()
        return handle

    def flush(self) -> int:
        """Resolve every pending query in batched lookups; returns the count.

        Every handle taken from the queue resolves before this returns:
        with its candidate row on success, or with a stored exception on
        failure.  A failed batch is retried query-by-query so one bad
        query cannot reject its batch-mates (error isolation); queries
        that still fail alone carry their own exception.
        """
        with self._lock:
            pending, self._pending = self._pending, []
        if not pending:
            return 0
        # One batched lookup per distinct k, preserving submission order
        # within each group.
        groups: dict[int, list[tuple[str, PendingLookup]]] = {}
        for query, k, handle in pending:
            groups.setdefault(k, []).append((query, handle))
        try:
            for k, items in groups.items():
                try:
                    rows = self.lookup_batch([query for query, _ in items], k)
                except Exception:
                    self._flush_isolated(items, k)
                    continue
                for (_, handle), row in zip(items, rows):
                    handle._resolve(row)
        finally:
            # Safety net: a bug above must not strand a handle forever.
            for _, _, handle in pending:
                if not handle.done:
                    handle._fail(
                        RuntimeError("pending lookup dropped by flush()")
                    )
        return len(pending)

    def _flush_isolated(
        self, items: list[tuple[str, "PendingLookup"]], k: int
    ) -> None:
        """Per-query retry of a failed batch: each query fails alone."""
        with self._stats_lock:
            self._isolation_retries += 1
        for query, handle in items:
            try:
                handle._resolve(self.lookup_batch([query], k)[0])
            except Exception as exc:
                with self._stats_lock:
                    self._failed_queries += 1
                handle._fail(exc)

    # -- the serving pipeline --------------------------------------------------

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return self._lookup(queries, k, None)

    def _lookup_batch_typed(
        self, queries: list[str], k: int, type_filter: str
    ) -> list[list[Candidate]]:
        if self._type_map is None:
            raise RuntimeError(
                "engine has no TypeFilterMap; build it with router=True or "
                "partition_by_type=True (or pass type_map=) to use "
                "type_filter"
            )
        return self._lookup(queries, k, type_filter)

    def _lookup(
        self, queries: list[str], k: int, type_filter: str | None
    ) -> list[list[Candidate]]:
        deadline_owner = self._start_deadline()
        try:
            normalized = [normalize(q) for q in queries]
            out: list[list[Candidate] | None] = [None] * len(queries)
            with self.stage_times["cache"]:
                if self.cache is not None:
                    # type_filter scopes the result keys: a filtered
                    # answer must never serve an unfiltered lookup.
                    cached = self.cache.get_results(
                        normalized, k, scope=type_filter
                    )
                    for qi, row in enumerate(cached):
                        out[qi] = row
            miss_positions = [qi for qi, row in enumerate(out) if row is None]
            if miss_positions:
                fresh = self._serve(
                    [normalized[qi] for qi in miss_positions], k, type_filter
                )
                for qi, row in zip(miss_positions, fresh):
                    out[qi] = row
                if self.cache is not None:
                    self.cache.put_results(
                        [normalized[qi] for qi in miss_positions],
                        k,
                        fresh,
                        scope=type_filter,
                    )
            return [row if row is not None else [] for row in out]
        finally:
            if deadline_owner:
                self._deadline.value = None

    def _start_deadline(self) -> bool:
        """Arm this thread's batch deadline; True when this call owns it."""
        if self.batch_deadline is None:
            return False
        if getattr(self._deadline, "value", None) is not None:
            return False  # nested call (isolation retry) keeps the outer budget
        self._deadline.value = time.monotonic() + self.batch_deadline
        return True

    def _check_deadline(self, stage: str) -> None:
        deadline = getattr(self._deadline, "value", None)
        if deadline is not None and time.monotonic() > deadline:
            with self._stats_lock:
                self._deadline_hits += 1
            raise LookupDeadlineExceeded(
                f"batch exceeded {self.batch_deadline}s deadline "
                f"before the {stage} stage"
            )

    def _serve(
        self, normalized: list[str], k: int, type_filter: str | None = None
    ) -> list[list[Candidate]]:
        """Route -> embed -> search -> rank for result-cache misses.

        With a router attached, the exact/fuzzy tiers answer what they
        can *before* the embed stage; only the remainder pays for the
        model forward pass and the index scan.
        """
        if self.fault_hook is not None:
            self.fault_hook(normalized)
        out: list[list[Candidate] | None] = [None] * len(normalized)
        if self.router is not None:
            with self.stage_times["route"]:
                out = self.router.serve_local(normalized, k, type_filter)
        ann_positions = [qi for qi, row in enumerate(out) if row is None]
        if ann_positions:
            rows = self._serve_ann(
                [normalized[qi] for qi in ann_positions], k, type_filter
            )
            for qi, row in zip(ann_positions, rows):
                out[qi] = row
        return [row if row is not None else [] for row in out]

    def _serve_ann(
        self, normalized: list[str], k: int, type_filter: str | None
    ) -> list[list[Candidate]]:
        """The embedding path: model forward pass + index scan + dedup."""
        self._check_deadline("embed")
        with self.stage_times["embed"]:
            vectors = self._embed(normalized)
        self._check_deadline("search")
        allowed: frozenset[str] | None = None
        with self.stage_times["search"]:
            if type_filter is None:
                fetch = k * 3 if self._has_alias_rows else k
                fetch = min(fetch, self._index.ntotal) or k
                result = self._index.search(vectors, fetch)
            else:
                allowed = self._type_map.allowed(type_filter)
                result = self._search_typed(vectors, k, type_filter, allowed)
        if getattr(result, "partial", False):
            with self._stats_lock:
                self._partial_results += 1
        with self.stage_times["rank"]:
            return self._rank(result.ids, result.distances, k, allowed)

    def _search_typed(
        self,
        vectors: np.ndarray,
        k: int,
        type_filter: str,
        allowed: frozenset[str],
    ) -> SearchResult:
        """Type-constrained scan, exact by construction.

        Over-fetching by the scanned set's *impure row count* (rows whose
        entity is not admissible) guarantees the top-``fetch`` winners
        contain every admissible row the post-filtered full scan would
        return, so rank-stage filtering yields bit-identical results.  On
        a :class:`TypePartitionedIndex` only the partitions that can hold
        admissible entities are scanned; any other index scans everything
        and only the rank filter applies.
        """
        base = k * 3 if self._has_alias_rows else k
        index = self._index
        if isinstance(index, TypePartitionedIndex):
            partitions = self._type_map.partitions_for(type_filter)
            scanned = index.rows_in(partitions)
            with self._stats_lock:
                self._type_rows_scanned += scanned
            if scanned == 0:
                nq = len(vectors)
                return SearchResult(
                    ids=np.full((nq, k), -1, dtype=np.int64),
                    distances=np.full((nq, k), np.inf, dtype=np.float64),  # repro: noqa[REP102]
                )
            fetch = min(base + self._impure_row_count(type_filter), scanned)
            return index.search(vectors, fetch, partitions=partitions)
        scanned = index.ntotal
        with self._stats_lock:
            self._type_rows_scanned += scanned
        fetch = min(base + self._impure_row_count(type_filter), scanned) or k
        return index.search(vectors, fetch)

    def _impure_row_count(self, type_filter: str) -> int:
        """Rows in ``type_filter``'s scanned set resolving to other types.

        Memoized per filter (the index is static while serving).  The
        count is computed outside the stats lock — it is a pure read of
        immutable structures, so a racing duplicate computation is
        harmless — and published under it.
        """
        with self._stats_lock:
            cached = self._impure_rows.get(type_filter)
        if cached is not None:
            return cached
        allowed = self._type_map.allowed(type_filter)
        index = self._index
        if isinstance(index, TypePartitionedIndex):
            rows: list[int] = []
            for key in self._type_map.partitions_for(type_filter):
                rows.extend(
                    int(r) for r in index.partition_global_ids(key)
                )
        else:
            rows = range(len(self._row_to_entity))
        count = sum(
            1 for row in rows if self._row_to_entity[row] not in allowed
        )
        with self._stats_lock:
            self._impure_rows[type_filter] = count
        return count

    @array_contract("normalized: any -> (n, d) f32::any")
    def _embed(self, normalized: list[str]) -> np.ndarray:
        """Embed normalized queries, memoizing repeats when cache enabled."""
        if self.cache is None:
            return self.pipeline.embed_queries(normalized)
        return self.cache.get_embeddings(
            normalized, self.pipeline.embed_queries
        )

    @array_contract(
        "ids: (nq, kr) i64::any, distances: (nq, kr) num::any, k: int -> any"
    )
    def _rank(
        self,
        ids: np.ndarray,
        distances: np.ndarray,
        k: int,
        allowed: frozenset[str] | None = None,
    ) -> list[list[Candidate]]:
        """Dedup alias rows to entities (closest wins) and score candidates.

        ``allowed`` drops entities outside a type filter's admissible set
        (partitions may mix types when entities declare several).
        """
        out: list[list[Candidate]] = []
        for row_ids, row_d in zip(ids, distances):
            seen: set[str] = set()
            candidates: list[Candidate] = []
            for idx, dist in zip(row_ids, row_d):
                if idx < 0:
                    continue
                entity_id = self._row_to_entity[int(idx)]
                if entity_id in seen:
                    continue
                if allowed is not None and entity_id not in allowed:
                    continue
                seen.add(entity_id)
                candidates.append(Candidate(entity_id, -float(dist)))
                if len(candidates) == k:
                    break
            out.append(candidates)
        return out

    # -- introspection ---------------------------------------------------------

    @property
    def index(self) -> VectorIndex:
        """The vector index the engine scans (flat or sharded)."""
        return self._index

    def stage_seconds(self) -> dict[str, float]:
        """Cumulative seconds per serving stage (cache/embed/search/rank)."""
        return {
            stage: watch.total for stage, watch in self.stage_times.items()
        }

    def serving_stats(self) -> dict[str, int]:
        """Degradation counters for dashboards and the fault-injection suite.

        ``partial_results`` counts searches served from surviving shards
        only; ``isolation_retries`` counts batches that fell back to
        query-by-query serving; ``failed_queries`` counts queries whose
        handle resolved with an exception; ``deadline_hits`` counts
        :class:`LookupDeadlineExceeded` raises; ``worker_respawns``
        counts shard worker processes the index replaced after a crash
        or a timed-out request (0 for non-process executors).

        Router tiers add ``exact_hits`` / ``fuzzy_routed`` /
        ``ann_routed`` (all 0 without a router) and type-constrained
        scans add ``type_filtered_rows_scanned`` — the total rows the
        search stage scanned under a ``type_filter`` (partition sums for
        a :class:`TypePartitionedIndex`, ``ntotal`` per scan otherwise).

        The engine counters are copied in one ``_stats_lock`` hold, so
        the snapshot is atomic with respect to concurrent serving
        threads.  The index's ``health_stats()`` and the router's
        ``router_stats()`` are read *before* the engine lock (each takes
        its own stats lock internally), so no two locks ever nest.
        """
        respawns = 0
        health = getattr(self._index, "health_stats", None)
        if callable(health):
            respawns = int(health().get("worker_respawns", 0))
        if self.router is not None:
            router_stats = self.router.router_stats()
        else:
            router_stats = {
                "exact_hits": 0,
                "fuzzy_routed": 0,
                "ann_routed": 0,
            }
        with self._stats_lock:
            return {
                "partial_results": self._partial_results,
                "isolation_retries": self._isolation_retries,
                "failed_queries": self._failed_queries,
                "deadline_hits": self._deadline_hits,
                "worker_respawns": respawns,
                "type_filtered_rows_scanned": self._type_rows_scanned,
                **router_stats,
            }

    def reset_timers(self) -> None:
        """Zero the whole-call timer, stage stopwatches, and router tiers."""
        super().reset_timers()
        for watch in self.stage_times.values():
            watch.reset()
        if self.router is not None:
            self.router.reset_timers()

    def index_bytes(self) -> int:
        """Storage of the engine's own index."""
        return self._index.memory_bytes()

    def close(self) -> None:
        """Flush outstanding queries and release the index's workers.

        Idempotent; for a process-executor :class:`ShardedIndex` this
        stops the worker processes and unlinks their shared-memory
        segments, so an engine teardown never leaks either.
        """
        self.flush()
        close = getattr(self._index, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "LookupEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
