"""Micro-batching query engine over an EmbLookup pipeline.

The engine answers the serving-path question the offline benchmark tables
ignore: queries arrive one at a time, but the embedding model and the
vector index are both far cheaper per query when driven in batches.
:meth:`LookupEngine.submit` therefore enqueues single queries and returns
a :class:`PendingLookup` handle; the queue is flushed into one batched
lookup when it reaches ``max_batch_size``, when the oldest entry exceeds
``max_batch_age`` seconds, or when :meth:`LookupEngine.flush` is called
explicitly.

Each flush runs the full serving pipeline -- LRU cache probe, embedding
of the misses, (sharded) blockwise index scan, duplicate-row ranking --
with a dedicated :class:`~repro.utils.timing.Stopwatch` per stage, on top
of the whole-call ``query_time`` every :class:`LookupService` keeps.

Failure semantics (the fault-injection suite in ``tests/property``
exercises every branch):

- **Error isolation** -- when a batched lookup raises, the engine retries
  each of the batch's queries individually, so a poisoned query fails
  alone (its handle raises from :attr:`PendingLookup.result`) while its
  batch-mates still resolve normally.
- **Deadlines** -- ``batch_deadline`` bounds one batch's wall time; the
  embed and search stages check it and raise
  :class:`LookupDeadlineExceeded` rather than starting work they cannot
  finish in time.
- **Degradation** -- a sharded index may return ``partial=True`` results
  when shards fail; the engine serves them (and counts them in
  :meth:`LookupEngine.serving_stats`) instead of erroring.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

import numpy as np

from repro.core.pipeline import EmbLookup
from repro.index.base import VectorIndex
from repro.index.flat import FlatIndex
from repro.index.sharded import ShardedIndex
from repro.lookup.base import Candidate, LookupService
from repro.lookup.cache import QueryCache
from repro.text.tokenize import normalize
from repro.utils.contracts import array_contract
from repro.utils.timing import Stopwatch

__all__ = ["LookupDeadlineExceeded", "LookupEngine", "PendingLookup"]

#: Stage names, in pipeline order, that the engine times per flush.
_STAGES = ("cache", "embed", "search", "rank")


class LookupDeadlineExceeded(TimeoutError):
    """A micro-batch blew its ``batch_deadline`` before finishing."""


class PendingLookup:
    """Handle for a query submitted to a :class:`LookupEngine`.

    The result materialises when the engine flushes the micro-batch the
    query rides in; reading :attr:`result` before that forces a flush.
    A query that failed during its flush (poisoned input, deadline, dead
    index) stores the exception instead: :attr:`done` is still True,
    :attr:`exception` holds the error, and :attr:`result` re-raises it.
    Every submitted handle resolves one way or the other — flush never
    strands a handle, even when the whole batch errors.
    """

    __slots__ = ("_engine", "_row", "_done", "_error")

    def __init__(self, engine: "LookupEngine"):
        self._engine = engine
        self._row: list[Candidate] = []
        self._done = False
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """Whether the micro-batch holding this query has been flushed."""
        return self._done

    @property
    def exception(self) -> BaseException | None:
        """The error this query failed with, or ``None`` (does not flush)."""
        return self._error

    @property
    def result(self) -> list[Candidate]:
        """The candidate list, flushing the engine's queue if needed.

        Raises the stored exception when this query's serve failed.
        """
        if not self._done:
            self._engine.flush()
        if not self._done:
            raise RuntimeError("pending lookup was not resolved by flush()")
        if self._error is not None:
            raise self._error
        return self._row

    def _resolve(self, row: list[Candidate]) -> None:
        self._row = row
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True


class LookupEngine(LookupService):
    """Micro-batched entity lookup over a fitted EmbLookup pipeline.

    The engine owns its vector index (typically a
    :class:`~repro.index.sharded.ShardedIndex` built by
    :meth:`from_pipeline`) and an optional :class:`QueryCache`; the
    pipeline contributes only the trained embedding model and the
    row -> entity mapping.  It is also a regular :class:`LookupService`,
    so ``lookup_batch`` works synchronously and the evaluation harness
    can benchmark it like any other service.

    Parameters
    ----------
    batch_deadline:
        Wall-clock budget in seconds for serving one batch (``None``
        disables it).  Checked before the embed and search stages; a
        batch that is already over budget raises
        :class:`LookupDeadlineExceeded` for its remaining queries instead
        of starting more work.  During the per-query isolation retry each
        query gets its own fresh budget.
    fault_hook:
        Test-only callable invoked with every serve attempt's normalized
        query list (see :class:`repro.testing.faults.QueryPoison`); the
        production value is ``None``.  Duck-typed so this layer never
        imports ``repro.testing``.
    """

    name = "serving_engine"

    def __init__(
        self,
        pipeline: EmbLookup,
        index: VectorIndex,
        row_to_entity: Sequence[str],
        cache: QueryCache | None = None,
        max_batch_size: int = 32,
        max_batch_age: float = 0.005,
        batch_deadline: float | None = None,
        fault_hook=None,
    ):
        super().__init__()
        if pipeline.model is None:
            raise ValueError("LookupEngine requires a fitted pipeline")
        if index.ntotal != len(row_to_entity):
            raise ValueError(
                f"index has {index.ntotal} rows but row_to_entity maps "
                f"{len(row_to_entity)}"
            )
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_batch_age < 0:
            raise ValueError("max_batch_age must be >= 0")
        if batch_deadline is not None and batch_deadline <= 0:
            raise ValueError("batch_deadline must be positive or None")
        self.pipeline = pipeline
        self._index = index
        self._row_to_entity = list(row_to_entity)
        # Alias rows make several index rows resolve to one entity, so the
        # search must over-fetch before dedup (same policy as the core
        # pipeline's lookup_batch).
        self._has_alias_rows = len(set(self._row_to_entity)) < len(
            self._row_to_entity
        )
        self.cache = cache
        self.max_batch_size = max_batch_size
        self.max_batch_age = max_batch_age
        self.batch_deadline = batch_deadline
        self.fault_hook = fault_hook
        self.stage_times: dict[str, Stopwatch] = {
            stage: Stopwatch() for stage in _STAGES
        }
        self._pending: list[tuple[str, int, PendingLookup]] = []
        self._batch_started = 0.0
        self._lock = threading.Lock()
        # Deadline is per serving thread: concurrent lookup_batch calls
        # each get their own budget instead of racing on a shared one.
        self._deadline = threading.local()
        self._stats_lock = threading.Lock()
        self._partial_results = 0
        self._failed_queries = 0
        self._deadline_hits = 0
        self._isolation_retries = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_pipeline(
        cls,
        pipeline: EmbLookup,
        num_shards: int = 1,
        cache_size: int | None = None,
        block_size: int | None = None,
        executor: str = "auto",
        num_workers: int | None = None,
        shard_timeout: float | None = None,
        **engine_kwargs,
    ) -> "LookupEngine":
        """Build an engine (and its flat/sharded index) from a fitted pipeline.

        Re-embeds the pipeline's index rows into a fresh uncompressed
        index: a :class:`FlatIndex` for ``num_shards == 1``, a
        :class:`ShardedIndex` of flat shards otherwise.  ``cache_size``
        defaults to the pipeline config's ``query_cache_size``; pass an
        explicit value to override.  ``block_size`` tunes the blockwise
        scan.  ``executor`` / ``num_workers`` / ``shard_timeout`` select
        the sharded execution model — ``executor="process"`` with
        ``num_workers`` worker processes over shared-memory shards is the
        multi-core serving configuration, ``"auto"`` picks it only when
        the host has cores to use (see :mod:`repro.index.sharded`).
        ``engine_kwargs`` forward to the constructor.
        """
        if pipeline.model is None:
            raise ValueError("from_pipeline requires a fitted pipeline")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        mentions, row_to_entity = pipeline.index_rows()
        vectors = pipeline.embed_queries(mentions)
        dim = pipeline.config.embedding_dim
        index: VectorIndex
        if num_shards == 1:
            index = FlatIndex(dim, block_size=block_size)
        else:
            index = ShardedIndex(
                dim,
                num_shards,
                factory=lambda d: FlatIndex(d, block_size=block_size),
                executor=executor,
                num_workers=num_workers,
                shard_timeout=shard_timeout,
            )
        index.train(vectors)
        index.add(vectors)
        if cache_size is None:
            cache_size = pipeline.config.query_cache_size
        cache = (
            QueryCache(cache_size, cache_results=True)
            if cache_size > 0
            else None
        )
        return cls(pipeline, index, row_to_entity, cache=cache, **engine_kwargs)

    # -- micro-batching --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of submitted queries waiting for the next flush."""
        with self._lock:
            return len(self._pending)

    def submit(self, query: str, k: int = 10) -> PendingLookup:
        """Enqueue one query; auto-flushes on size or age thresholds."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        handle = PendingLookup(self)
        with self._lock:
            if not self._pending:
                self._batch_started = time.monotonic()
            self._pending.append((query, k, handle))
            should_flush = len(self._pending) >= self.max_batch_size or (
                time.monotonic() - self._batch_started >= self.max_batch_age
            )
        if should_flush:
            self.flush()
        return handle

    def flush(self) -> int:
        """Resolve every pending query in batched lookups; returns the count.

        Every handle taken from the queue resolves before this returns:
        with its candidate row on success, or with a stored exception on
        failure.  A failed batch is retried query-by-query so one bad
        query cannot reject its batch-mates (error isolation); queries
        that still fail alone carry their own exception.
        """
        with self._lock:
            pending, self._pending = self._pending, []
        if not pending:
            return 0
        # One batched lookup per distinct k, preserving submission order
        # within each group.
        groups: dict[int, list[tuple[str, PendingLookup]]] = {}
        for query, k, handle in pending:
            groups.setdefault(k, []).append((query, handle))
        try:
            for k, items in groups.items():
                try:
                    rows = self.lookup_batch([query for query, _ in items], k)
                except Exception:
                    self._flush_isolated(items, k)
                    continue
                for (_, handle), row in zip(items, rows):
                    handle._resolve(row)
        finally:
            # Safety net: a bug above must not strand a handle forever.
            for _, _, handle in pending:
                if not handle.done:
                    handle._fail(
                        RuntimeError("pending lookup dropped by flush()")
                    )
        return len(pending)

    def _flush_isolated(
        self, items: list[tuple[str, "PendingLookup"]], k: int
    ) -> None:
        """Per-query retry of a failed batch: each query fails alone."""
        with self._stats_lock:
            self._isolation_retries += 1
        for query, handle in items:
            try:
                handle._resolve(self.lookup_batch([query], k)[0])
            except Exception as exc:
                with self._stats_lock:
                    self._failed_queries += 1
                handle._fail(exc)

    # -- the serving pipeline --------------------------------------------------

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        deadline_owner = self._start_deadline()
        try:
            normalized = [normalize(q) for q in queries]
            out: list[list[Candidate] | None] = [None] * len(queries)
            with self.stage_times["cache"]:
                if self.cache is not None:
                    cached = self.cache.get_results(normalized, k)
                    for qi, row in enumerate(cached):
                        out[qi] = row
            miss_positions = [qi for qi, row in enumerate(out) if row is None]
            if miss_positions:
                fresh = self._serve(
                    [normalized[qi] for qi in miss_positions], k
                )
                for qi, row in zip(miss_positions, fresh):
                    out[qi] = row
                if self.cache is not None:
                    self.cache.put_results(
                        [normalized[qi] for qi in miss_positions], k, fresh
                    )
            return [row if row is not None else [] for row in out]
        finally:
            if deadline_owner:
                self._deadline.value = None

    def _start_deadline(self) -> bool:
        """Arm this thread's batch deadline; True when this call owns it."""
        if self.batch_deadline is None:
            return False
        if getattr(self._deadline, "value", None) is not None:
            return False  # nested call (isolation retry) keeps the outer budget
        self._deadline.value = time.monotonic() + self.batch_deadline
        return True

    def _check_deadline(self, stage: str) -> None:
        deadline = getattr(self._deadline, "value", None)
        if deadline is not None and time.monotonic() > deadline:
            with self._stats_lock:
                self._deadline_hits += 1
            raise LookupDeadlineExceeded(
                f"batch exceeded {self.batch_deadline}s deadline "
                f"before the {stage} stage"
            )

    def _serve(self, normalized: list[str], k: int) -> list[list[Candidate]]:
        """Embed -> search -> rank for result-cache misses."""
        if self.fault_hook is not None:
            self.fault_hook(normalized)
        self._check_deadline("embed")
        with self.stage_times["embed"]:
            vectors = self._embed(normalized)
        self._check_deadline("search")
        with self.stage_times["search"]:
            fetch = k * 3 if self._has_alias_rows else k
            fetch = min(fetch, self._index.ntotal) or k
            result = self._index.search(vectors, fetch)
        if getattr(result, "partial", False):
            with self._stats_lock:
                self._partial_results += 1
        with self.stage_times["rank"]:
            return self._rank(result.ids, result.distances, k)

    @array_contract("normalized: any -> (n, d) f32::any")
    def _embed(self, normalized: list[str]) -> np.ndarray:
        """Embed normalized queries, memoizing repeats when cache enabled."""
        if self.cache is None:
            return self.pipeline.embed_queries(normalized)
        return self.cache.get_embeddings(
            normalized, self.pipeline.embed_queries
        )

    @array_contract(
        "ids: (nq, kr) i64::any, distances: (nq, kr) num::any, k: int -> any"
    )
    def _rank(
        self, ids: np.ndarray, distances: np.ndarray, k: int
    ) -> list[list[Candidate]]:
        """Dedup alias rows to entities (closest wins) and score candidates."""
        out: list[list[Candidate]] = []
        for row_ids, row_d in zip(ids, distances):
            seen: set[str] = set()
            candidates: list[Candidate] = []
            for idx, dist in zip(row_ids, row_d):
                if idx < 0:
                    continue
                entity_id = self._row_to_entity[int(idx)]
                if entity_id in seen:
                    continue
                seen.add(entity_id)
                candidates.append(Candidate(entity_id, -float(dist)))
                if len(candidates) == k:
                    break
            out.append(candidates)
        return out

    # -- introspection ---------------------------------------------------------

    @property
    def index(self) -> VectorIndex:
        """The vector index the engine scans (flat or sharded)."""
        return self._index

    def stage_seconds(self) -> dict[str, float]:
        """Cumulative seconds per serving stage (cache/embed/search/rank)."""
        return {
            stage: watch.total for stage, watch in self.stage_times.items()
        }

    def serving_stats(self) -> dict[str, int]:
        """Degradation counters for dashboards and the fault-injection suite.

        ``partial_results`` counts searches served from surviving shards
        only; ``isolation_retries`` counts batches that fell back to
        query-by-query serving; ``failed_queries`` counts queries whose
        handle resolved with an exception; ``deadline_hits`` counts
        :class:`LookupDeadlineExceeded` raises; ``worker_respawns``
        counts shard worker processes the index replaced after a crash
        or a timed-out request (0 for non-process executors).

        The four engine counters are copied in one ``_stats_lock`` hold,
        so the snapshot is atomic with respect to concurrent serving
        threads.  The index's ``health_stats()`` is read *before* the
        engine lock (it takes the index's own stats lock internally), so
        the two locks never nest.
        """
        respawns = 0
        health = getattr(self._index, "health_stats", None)
        if callable(health):
            respawns = int(health().get("worker_respawns", 0))
        with self._stats_lock:
            return {
                "partial_results": self._partial_results,
                "isolation_retries": self._isolation_retries,
                "failed_queries": self._failed_queries,
                "deadline_hits": self._deadline_hits,
                "worker_respawns": respawns,
            }

    def reset_timers(self) -> None:
        """Zero the whole-call timer and every per-stage stopwatch."""
        super().reset_timers()
        for watch in self.stage_times.values():
            watch.reset()

    def index_bytes(self) -> int:
        """Storage of the engine's own index."""
        return self._index.memory_bytes()

    def close(self) -> None:
        """Flush outstanding queries and release the index's workers.

        Idempotent; for a process-executor :class:`ShardedIndex` this
        stops the worker processes and unlinks their shared-memory
        segments, so an engine teardown never leaks either.
        """
        self.flush()
        close = getattr(self._index, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "LookupEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
