"""Micro-batching query engine over an EmbLookup pipeline.

The engine answers the serving-path question the offline benchmark tables
ignore: queries arrive one at a time, but the embedding model and the
vector index are both far cheaper per query when driven in batches.
:meth:`LookupEngine.submit` therefore enqueues single queries and returns
a :class:`PendingLookup` handle; the queue is flushed into one batched
lookup when it reaches ``max_batch_size``, when the oldest entry exceeds
``max_batch_age`` seconds, or when :meth:`LookupEngine.flush` is called
explicitly.

Each flush runs the full serving pipeline -- LRU cache probe, embedding
of the misses, (sharded) blockwise index scan, duplicate-row ranking --
with a dedicated :class:`~repro.utils.timing.Stopwatch` per stage, on top
of the whole-call ``query_time`` every :class:`LookupService` keeps.

Failure semantics (the fault-injection suite in ``tests/property``
exercises every branch):

- **Error isolation** -- when a batched lookup raises, the engine retries
  each of the batch's queries individually, so a poisoned query fails
  alone (its handle raises from :attr:`PendingLookup.result`) while its
  batch-mates still resolve normally.
- **Deadlines** -- ``batch_deadline`` bounds one batch's wall time; the
  embed and search stages check it and raise
  :class:`LookupDeadlineExceeded` rather than starting work they cannot
  finish in time.
- **Degradation** -- a sharded index may return ``partial=True`` results
  when shards fail; the engine serves them (and counts them in
  :meth:`LookupEngine.serving_stats`) instead of erroring.

Online mutation -- :meth:`LookupEngine.apply_mutation` applies one
change-feed record (add/remove/update of a whole entity, see
:mod:`repro.serving.ingest`) while ``submit()`` traffic keeps flowing.
Mutations serialize on the engine's mutation lock and propagate to every
structure that answers queries: the vector index (snapshot-protocol
``add``/``remove``/``update``), the row->entity map, the router's
:class:`~repro.lookup.router.LabelHashTable` and
:class:`~repro.lookup.router.TypeFilterMap`, and the result cache (whose
generation is bumped so a cached hit can never resurrect a removed
entity).  :meth:`LookupEngine.compact` reclaims tombstoned rows; the
row-id remap it returns re-keys the row->entity map under a seqlock that
in-flight searches check, so a search racing the swap retries instead of
resolving new row ids through the old map.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

import numpy as np

from repro.core.pipeline import EmbLookup
from repro.index.base import SearchResult, VectorIndex
from repro.index.flat import FlatIndex
from repro.index.partitioned import DEFAULT_PARTITION, TypePartitionedIndex
from repro.index.sharded import ShardedIndex
from repro.lookup.base import Candidate, LookupService
from repro.lookup.cache import QueryCache
from repro.lookup.normalize import normalize
from repro.lookup.router import LookupRouter, TypeFilterMap
from repro.utils.contracts import array_contract
from repro.utils.timing import Stopwatch

__all__ = ["LookupDeadlineExceeded", "LookupEngine", "PendingLookup"]

#: Stage names, in pipeline order, that the engine times per flush.
#: ``route`` is the router's exact/fuzzy short-circuit pass (0 when no
#: router is attached); the router additionally times each tier in its
#: own ``tier_times``.
_STAGES = ("cache", "route", "embed", "search", "rank")


class LookupDeadlineExceeded(TimeoutError):
    """A micro-batch blew its ``batch_deadline`` before finishing."""


class PendingLookup:
    """Handle for a query submitted to a :class:`LookupEngine`.

    The result materialises when the engine flushes the micro-batch the
    query rides in; reading :attr:`result` before that forces a flush.
    A query that failed during its flush (poisoned input, deadline, dead
    index) stores the exception instead: :attr:`done` is still True,
    :attr:`exception` holds the error, and :attr:`result` re-raises it.
    Every submitted handle resolves one way or the other — flush never
    strands a handle, even when the whole batch errors.
    """

    __slots__ = ("_engine", "_row", "_done", "_error")

    def __init__(self, engine: "LookupEngine"):
        self._engine = engine
        self._row: list[Candidate] = []
        self._done = False
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """Whether the micro-batch holding this query has been flushed."""
        return self._done

    @property
    def exception(self) -> BaseException | None:
        """The error this query failed with, or ``None`` (does not flush)."""
        return self._error

    @property
    def result(self) -> list[Candidate]:
        """The candidate list, flushing the engine's queue if needed.

        Raises the stored exception when this query's serve failed.
        """
        if not self._done:
            self._engine.flush()
        if not self._done:
            raise RuntimeError("pending lookup was not resolved by flush()")
        if self._error is not None:
            raise self._error
        return self._row

    def _resolve(self, row: list[Candidate]) -> None:
        self._row = row
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True


class LookupEngine(LookupService):
    """Micro-batched entity lookup over a fitted EmbLookup pipeline.

    The engine owns its vector index (typically a
    :class:`~repro.index.sharded.ShardedIndex` built by
    :meth:`from_pipeline`) and an optional :class:`QueryCache`; the
    pipeline contributes only the trained embedding model and the
    row -> entity mapping.  It is also a regular :class:`LookupService`,
    so ``lookup_batch`` works synchronously and the evaluation harness
    can benchmark it like any other service.

    Parameters
    ----------
    batch_deadline:
        Wall-clock budget in seconds for serving one batch (``None``
        disables it).  Checked before the embed and search stages; a
        batch that is already over budget raises
        :class:`LookupDeadlineExceeded` for its remaining queries instead
        of starting more work.  During the per-query isolation retry each
        query gets its own fresh budget.
    fault_hook:
        Test-only callable invoked with every serve attempt's normalized
        query list (see :class:`repro.testing.faults.QueryPoison`); the
        production value is ``None``.  Duck-typed so this layer never
        imports ``repro.testing``.
    router:
        Optional :class:`~repro.lookup.router.LookupRouter` whose exact
        and fuzzy tiers short-circuit queries *before* the embed stage
        (its ``ann`` tier should be ``None`` — this engine is the ANN
        path).  Tier counters surface in :meth:`serving_stats`.
    type_map:
        :class:`~repro.lookup.router.TypeFilterMap` enabling
        ``type_filter=`` lookups; defaults to the router's map.  With a
        :class:`~repro.index.partitioned.TypePartitionedIndex` a typed
        search scans only the matching partitions; with any other index
        it over-fetches the full scan and filters at rank time (same
        results, no scan savings).
    """

    name = "serving_engine"

    def __init__(
        self,
        pipeline: EmbLookup,
        index: VectorIndex,
        row_to_entity: Sequence[str],
        cache: QueryCache | None = None,
        max_batch_size: int = 32,
        max_batch_age: float = 0.005,
        batch_deadline: float | None = None,
        fault_hook=None,
        router: LookupRouter | None = None,
        type_map: TypeFilterMap | None = None,
    ):
        super().__init__()
        if pipeline.model is None:
            raise ValueError("LookupEngine requires a fitted pipeline")
        if index.ntotal != len(row_to_entity):
            raise ValueError(
                f"index has {index.ntotal} rows but row_to_entity maps "
                f"{len(row_to_entity)}"
            )
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_batch_age < 0:
            raise ValueError("max_batch_age must be >= 0")
        if batch_deadline is not None and batch_deadline <= 0:
            raise ValueError("batch_deadline must be positive or None")
        self.pipeline = pipeline
        self._index = index
        self._row_to_entity = list(row_to_entity)
        # Live rows per entity id, maintained by apply_mutation/compact.
        self._entity_rows: dict[str, list[int]] = {}
        for row, eid in enumerate(self._row_to_entity):
            self._entity_rows.setdefault(eid, []).append(row)
        # Alias rows make several index rows resolve to one entity, so the
        # search must over-fetch before dedup (same policy as the core
        # pipeline's lookup_batch).
        self._has_alias_rows = len(set(self._row_to_entity)) < len(
            self._row_to_entity
        )
        self.cache = cache
        self.max_batch_size = max_batch_size
        self.max_batch_age = max_batch_age
        self.batch_deadline = batch_deadline
        self.fault_hook = fault_hook
        self.router = router
        self._type_map = (
            type_map
            if type_map is not None
            else (router.type_map if router is not None else None)
        )
        self.stage_times: dict[str, Stopwatch] = {
            stage: Stopwatch() for stage in _STAGES
        }
        self._pending: list[tuple[str, int, PendingLookup]] = []
        self._batch_started = 0.0
        self._lock = threading.Lock()
        # Deadline is per serving thread: concurrent lookup_batch calls
        # each get their own budget instead of racing on a shared one.
        self._deadline = threading.local()
        self._stats_lock = threading.Lock()
        # Serializes apply_mutation/compact against each other.  Lock
        # order: _mutation_lock -> {index write lock, cache lock,
        # _stats_lock}, never reversed.
        self._mutation_lock = threading.Lock()
        # Seqlock guarding the row->entity map across compaction row-id
        # remaps: odd while a compaction is in flight, bumped to even on
        # publish/abort.  _serve_ann retries when it observes a change.
        self._compact_seq = 0
        self._mutations_applied = 0
        self._compactions = 0
        self._partial_results = 0
        self._failed_queries = 0
        self._deadline_hits = 0
        self._isolation_retries = 0
        self._type_rows_scanned = 0
        # type_filter -> count of rows in its scanned row set whose entity
        # is NOT admissible (the exact over-fetch needed for bit-identical
        # filtered results).  Memoized; guarded by _stats_lock.
        self._impure_rows: dict[str, int] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_pipeline(
        cls,
        pipeline: EmbLookup,
        num_shards: int = 1,
        cache_size: int | None = None,
        block_size: int | None = None,
        executor: str = "auto",
        num_workers: int | None = None,
        shard_timeout: float | None = None,
        partition_by_type: bool = False,
        router: "LookupRouter | bool | None" = None,
        **engine_kwargs,
    ) -> "LookupEngine":
        """Build an engine (and its flat/sharded index) from a fitted pipeline.

        Re-embeds the pipeline's index rows into a fresh uncompressed
        index: a :class:`FlatIndex` for ``num_shards == 1``, a
        :class:`ShardedIndex` of flat shards otherwise.  ``cache_size``
        defaults to the pipeline config's ``query_cache_size``; pass an
        explicit value to override.  ``block_size`` tunes the blockwise
        scan (``None`` derives it from the batch size).  ``executor`` /
        ``num_workers`` / ``shard_timeout`` select the sharded execution
        model — ``executor="process"`` with ``num_workers`` worker
        processes over shared-memory shards is the multi-core serving
        configuration, ``"auto"`` picks it only when the host has cores
        to use (see :mod:`repro.index.sharded`).

        ``partition_by_type=True`` builds a
        :class:`~repro.index.partitioned.TypePartitionedIndex` keyed by
        each entity's primary type (``num_shards > 1`` shards every
        partition), so ``type_filter=`` lookups scan only matching
        partitions.  ``router=True`` attaches a
        :class:`~repro.lookup.router.LookupRouter` built from the
        pipeline's KG (exact label-hash tier plus a q-gram fuzzy tier);
        pass a ready router for custom tiers.  ``engine_kwargs`` forward
        to the constructor.
        """
        if pipeline.model is None:
            raise ValueError("from_pipeline requires a fitted pipeline")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        mentions, row_to_entity = pipeline.index_rows()
        vectors = pipeline.embed_queries(mentions)
        dim = pipeline.config.embedding_dim

        def flat(d: int) -> FlatIndex:
            return FlatIndex(d, block_size=block_size)

        def sharded(d: int) -> ShardedIndex:
            return ShardedIndex(
                d,
                num_shards,
                factory=flat,
                executor=executor,
                num_workers=num_workers,
                shard_timeout=shard_timeout,
            )

        index: VectorIndex
        if partition_by_type:
            index = TypePartitionedIndex(
                dim, factory=flat if num_shards == 1 else sharded
            )
            index.train(vectors)
            index.add(vectors, pipeline.index_row_types())
        else:
            index = flat(dim) if num_shards == 1 else sharded(dim)
            index.train(vectors)
            index.add(vectors)
        if router is True:
            if pipeline.kg is None:
                raise ValueError("router=True requires the pipeline's KG")
            router = LookupRouter.build(pipeline.kg, ann=None, fuzzy="qgram")
        elif router is False:
            router = None
        type_map = engine_kwargs.pop("type_map", None)
        if type_map is None:
            if router is not None:
                type_map = router.type_map
            elif partition_by_type and pipeline.kg is not None:
                type_map = TypeFilterMap.from_kg(pipeline.kg)
        if cache_size is None:
            cache_size = pipeline.config.query_cache_size
        cache = (
            QueryCache(cache_size, cache_results=True)
            if cache_size > 0
            else None
        )
        return cls(
            pipeline,
            index,
            row_to_entity,
            cache=cache,
            router=router,
            type_map=type_map,
            **engine_kwargs,
        )

    # -- micro-batching --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of submitted queries waiting for the next flush."""
        with self._lock:
            return len(self._pending)

    def submit(self, query: str, k: int = 10) -> PendingLookup:
        """Enqueue one query; auto-flushes on size or age thresholds."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        handle = PendingLookup(self)
        with self._lock:
            if not self._pending:
                self._batch_started = time.monotonic()
            self._pending.append((query, k, handle))
            should_flush = len(self._pending) >= self.max_batch_size or (
                time.monotonic() - self._batch_started >= self.max_batch_age
            )
        if should_flush:
            self.flush()
        return handle

    def flush(self) -> int:
        """Resolve every pending query in batched lookups; returns the count.

        Every handle taken from the queue resolves before this returns:
        with its candidate row on success, or with a stored exception on
        failure.  A failed batch is retried query-by-query so one bad
        query cannot reject its batch-mates (error isolation); queries
        that still fail alone carry their own exception.
        """
        with self._lock:
            pending, self._pending = self._pending, []
        if not pending:
            return 0
        # One batched lookup per distinct k, preserving submission order
        # within each group.
        groups: dict[int, list[tuple[str, PendingLookup]]] = {}
        for query, k, handle in pending:
            groups.setdefault(k, []).append((query, handle))
        try:
            for k, items in groups.items():
                try:
                    rows = self.lookup_batch([query for query, _ in items], k)
                except Exception:
                    self._flush_isolated(items, k)
                    continue
                for (_, handle), row in zip(items, rows):
                    handle._resolve(row)
        finally:
            # Safety net: a bug above must not strand a handle forever.
            for _, _, handle in pending:
                if not handle.done:
                    handle._fail(
                        RuntimeError("pending lookup dropped by flush()")
                    )
        return len(pending)

    def _flush_isolated(
        self, items: list[tuple[str, "PendingLookup"]], k: int
    ) -> None:
        """Per-query retry of a failed batch: each query fails alone."""
        with self._stats_lock:
            self._isolation_retries += 1
        for query, handle in items:
            try:
                handle._resolve(self.lookup_batch([query], k)[0])
            except Exception as exc:
                with self._stats_lock:
                    self._failed_queries += 1
                handle._fail(exc)

    # -- online mutation -------------------------------------------------------

    def apply_mutation(self, mutation) -> None:
        """Apply one change-feed record to every structure that serves queries.

        ``mutation`` is duck-typed (``kind`` / ``entity_id`` /
        ``mentions`` / ``types`` — the shape of
        :class:`repro.serving.ingest.IndexMutation`), so this layer never
        imports the ingest module.  Mutations serialize on the engine's
        mutation lock while ``submit()`` traffic keeps flowing; a
        concurrent lookup observes either the pre- or the post-mutation
        entity set, never a mixture (adds extend the row map *before*
        the index publish makes the rows reachable; removes/updates are
        one snapshot publish at the index; the result cache's generation
        bump makes stale cached answers unreachable).

        Raises :class:`ValueError` for semantically invalid records —
        adding an entity that already exists, removing or updating one
        that does not, an empty mention list — which is exactly what the
        ingestion consumer's dead-letter lane catches.
        """
        kind = mutation.kind
        entity_id = mutation.entity_id
        mentions = list(mutation.mentions)
        types = tuple(mutation.types)
        with self._mutation_lock:
            if kind == "add":
                if entity_id in self._entity_rows:
                    raise ValueError(f"entity {entity_id!r} already indexed")
                self._mutate_add(entity_id, mentions, types)
            elif kind == "remove":
                self._mutate_remove(entity_id)
            elif kind == "update":
                self._mutate_update(entity_id, mentions, types)
            else:
                raise ValueError(f"unknown mutation kind {kind!r}")
            if self.cache is not None:
                self.cache.bump_generation()
            with self._stats_lock:
                self._impure_rows.clear()
                self._mutations_applied += 1

    def _mutate_add(
        self, entity_id: str, mentions: list[str], types: tuple[str, ...]
    ) -> None:
        """Embed and index a new entity's mentions; register router entries.

        Caller holds ``_mutation_lock`` and has verified the entity is
        new.  The row map is extended *before* ``index.add`` — rows
        beyond ``ntotal`` are unreachable until the index publishes, so
        readers never resolve a row id the map cannot answer.
        """
        if not mentions:
            raise ValueError(f"entity {entity_id!r} has no mentions")
        vectors = self.pipeline.embed_queries(mentions)
        base = self._index.ntotal
        rows = list(range(base, base + len(mentions)))
        self._row_to_entity.extend([entity_id] * len(mentions))
        if len(mentions) > 1:
            self._has_alias_rows = True
        if isinstance(self._index, TypePartitionedIndex):
            primary = (types[0] if types else None) or DEFAULT_PARTITION
            self._index.add(vectors, [primary] * len(mentions))
        else:
            self._index.add(vectors)
        self._entity_rows[entity_id] = rows
        if self.router is not None:
            for mention in mentions:
                self.router.label_table.add(mention, entity_id)
        if self._type_map is not None and types:
            primary = types[0] if types else None
            self._type_map.add_entity(entity_id, types, primary)

    def _mutate_remove(self, entity_id: str) -> None:
        """Tombstone an entity's rows and retract its router entries.

        Caller holds ``_mutation_lock``.  Router/type-map entries drop
        first (an exact hit on a half-removed entity would resurrect
        it); the index tombstone publish is last and atomic.
        """
        rows = self._entity_rows.pop(entity_id, None)
        if rows is None:
            raise ValueError(f"entity {entity_id!r} is not indexed")
        if self.router is not None:
            self.router.label_table.drop_entity(entity_id)
        if self._type_map is not None:
            self._type_map.remove_entity(entity_id)
        self._index.remove(np.asarray(rows, dtype=np.int64))

    def _mutate_update(
        self, entity_id: str, mentions: list[str], types: tuple[str, ...]
    ) -> None:
        """Replace an entity's rows (and surface forms) in place.

        Uses the index family's atomic ``update`` (one snapshot publish
        covers tombstone + append, so readers see old rows or new rows,
        never neither) when available; a
        :class:`TypePartitionedIndex` — whose partition key may change
        with the entity's primary type — falls back to remove + add.
        """
        if not mentions:
            raise ValueError(f"entity {entity_id!r} has no mentions")
        old_rows = self._entity_rows.get(entity_id)
        if old_rows is None:
            raise ValueError(f"entity {entity_id!r} is not indexed")
        update = getattr(self._index, "update", None)
        if callable(update) and not isinstance(
            self._index, TypePartitionedIndex
        ):
            vectors = self.pipeline.embed_queries(mentions)
            self._row_to_entity.extend([entity_id] * len(mentions))
            if len(mentions) > 1:
                self._has_alias_rows = True
            new_ids = update(
                np.asarray(old_rows, dtype=np.int64), vectors
            )
            self._entity_rows[entity_id] = [int(r) for r in new_ids]
            if self.router is not None:
                self.router.label_table.drop_entity(entity_id)
                for mention in mentions:
                    self.router.label_table.add(mention, entity_id)
            if self._type_map is not None:
                self._type_map.remove_entity(entity_id)
                if types:
                    self._type_map.add_entity(entity_id, types, types[0])
        else:
            self._mutate_remove(entity_id)
            self._mutate_add(entity_id, mentions, types)

    def compact(self) -> bool:
        """Reclaim tombstoned rows; re-key the row map under a seqlock.

        Compaction renumbers row ids, so the row->entity map must swap
        together with the index's shard snapshot.  The index swap itself
        is atomic to its readers; the *pairing* of (index rows, row map)
        is protected by ``_compact_seq``: odd while the swap is in
        flight, bumped back to even on publish or abort.
        :meth:`_serve_ann` pins the sequence and the map object before
        searching and retries when either moved, so a search racing the
        swap can never resolve new row ids through the old map.

        Returns ``True`` when a swap happened, ``False`` when there was
        nothing to reclaim (or the index family has no ``compact``).
        """
        compact = getattr(self._index, "compact", None)
        if not callable(compact):
            return False
        with self._mutation_lock:
            with self._stats_lock:
                self._compact_seq += 1  # odd: swap in flight
            try:
                remap = compact()
                if remap is None:
                    return False
                old_map = self._row_to_entity
                new_len = int((remap >= 0).sum())
                new_map: list[str | None] = [None] * new_len
                for old_row, new_row in enumerate(remap):
                    if new_row >= 0:
                        new_map[int(new_row)] = old_map[old_row]
                entity_rows: dict[str, list[int]] = {}
                for row, eid in enumerate(new_map):
                    entity_rows.setdefault(eid, []).append(row)
                # Publish the NEW list object; in-flight searches still
                # hold (and can safely finish resolving through) the old
                # one, then fail the seqlock check and retry.
                self._row_to_entity = new_map
                self._entity_rows = entity_rows
                self._has_alias_rows = len(entity_rows) < len(new_map)
                if self.cache is not None:
                    self.cache.bump_generation()
                with self._stats_lock:
                    self._impure_rows.clear()
                    self._compactions += 1
                return True
            finally:
                with self._stats_lock:
                    self._compact_seq += 1  # even: published or aborted

    def _pin_rows(self) -> tuple[int, list[str]]:
        """Capture a (sequence, row map) pair that is not mid-compaction."""
        while True:
            with self._stats_lock:
                seq = self._compact_seq
            rows_map = self._row_to_entity
            if seq % 2 == 0:
                return seq, rows_map
            # A compaction swap is in flight; it holds _mutation_lock, so
            # waiting on it is both brief and convoy-free.
            with self._mutation_lock:
                pass

    # -- the serving pipeline --------------------------------------------------

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return self._lookup(queries, k, None)

    def _lookup_batch_typed(
        self, queries: list[str], k: int, type_filter: str
    ) -> list[list[Candidate]]:
        if self._type_map is None:
            raise RuntimeError(
                "engine has no TypeFilterMap; build it with router=True or "
                "partition_by_type=True (or pass type_map=) to use "
                "type_filter"
            )
        return self._lookup(queries, k, type_filter)

    def _lookup(
        self, queries: list[str], k: int, type_filter: str | None
    ) -> list[list[Candidate]]:
        deadline_owner = self._start_deadline()
        try:
            normalized = [normalize(q) for q in queries]
            out: list[list[Candidate] | None] = [None] * len(queries)
            with self.stage_times["cache"]:
                if self.cache is not None:
                    # type_filter scopes the result keys: a filtered
                    # answer must never serve an unfiltered lookup.
                    cached = self.cache.get_results(
                        normalized, k, scope=type_filter
                    )
                    for qi, row in enumerate(cached):
                        out[qi] = row
            miss_positions = [qi for qi, row in enumerate(out) if row is None]
            if miss_positions:
                fresh = self._serve(
                    [normalized[qi] for qi in miss_positions], k, type_filter
                )
                for qi, row in zip(miss_positions, fresh):
                    out[qi] = row
                if self.cache is not None:
                    self.cache.put_results(
                        [normalized[qi] for qi in miss_positions],
                        k,
                        fresh,
                        scope=type_filter,
                    )
            return [row if row is not None else [] for row in out]
        finally:
            if deadline_owner:
                self._deadline.value = None

    def _start_deadline(self) -> bool:
        """Arm this thread's batch deadline; True when this call owns it."""
        if self.batch_deadline is None:
            return False
        if getattr(self._deadline, "value", None) is not None:
            return False  # nested call (isolation retry) keeps the outer budget
        self._deadline.value = time.monotonic() + self.batch_deadline
        return True

    def _check_deadline(self, stage: str) -> None:
        deadline = getattr(self._deadline, "value", None)
        if deadline is not None and time.monotonic() > deadline:
            with self._stats_lock:
                self._deadline_hits += 1
            raise LookupDeadlineExceeded(
                f"batch exceeded {self.batch_deadline}s deadline "
                f"before the {stage} stage"
            )

    def _serve(
        self, normalized: list[str], k: int, type_filter: str | None = None
    ) -> list[list[Candidate]]:
        """Route -> embed -> search -> rank for result-cache misses.

        With a router attached, the exact/fuzzy tiers answer what they
        can *before* the embed stage; only the remainder pays for the
        model forward pass and the index scan.
        """
        if self.fault_hook is not None:
            self.fault_hook(normalized)
        out: list[list[Candidate] | None] = [None] * len(normalized)
        if self.router is not None:
            with self.stage_times["route"]:
                out = self.router.serve_local(normalized, k, type_filter)
        ann_positions = [qi for qi, row in enumerate(out) if row is None]
        if ann_positions:
            rows = self._serve_ann(
                [normalized[qi] for qi in ann_positions], k, type_filter
            )
            for qi, row in zip(ann_positions, rows):
                out[qi] = row
        return [row if row is not None else [] for row in out]

    def _serve_ann(
        self, normalized: list[str], k: int, type_filter: str | None
    ) -> list[list[Candidate]]:
        """The embedding path: model forward pass + index scan + dedup.

        The scan-and-rank pair runs under the compaction seqlock: the
        row->entity map is pinned together with an even ``_compact_seq``
        before the scan, and the result is accepted only if the sequence
        has not moved — otherwise the row ids in hand may belong to the
        post-compaction numbering while the pinned map still holds the
        old one (or vice versa), so the search retries on the fresh
        pair.  Non-compaction mutations never renumber rows (adds
        append, removes tombstone in place), so they need no retry.
        """
        self._check_deadline("embed")
        with self.stage_times["embed"]:
            vectors = self._embed(normalized)
        self._check_deadline("search")
        retries = 0
        while True:
            seq, rows_map = self._pin_rows()
            result, allowed = self._search_once(
                vectors, k, type_filter, rows_map
            )
            with self._stats_lock:
                settled = self._compact_seq == seq
            if settled:
                break
            retries += 1
            if retries >= 3:
                # Pathological compaction churn: serialize with the
                # mutators instead of spinning (no compaction can swap
                # while this thread holds the mutation lock).
                with self._mutation_lock:
                    rows_map = self._row_to_entity
                    result, allowed = self._search_once(
                        vectors, k, type_filter, rows_map
                    )
                break
        if getattr(result, "partial", False):
            with self._stats_lock:
                self._partial_results += 1
        with self.stage_times["rank"]:
            return self._rank(
                result.ids, result.distances, k, allowed, rows_map
            )

    def _search_once(
        self,
        vectors: np.ndarray,
        k: int,
        type_filter: str | None,
        rows_map: list[str],
    ) -> tuple[SearchResult, frozenset[str] | None]:
        """One pinned index scan — the seqlock-retried body of ``_serve_ann``."""
        with self.stage_times["search"]:
            if type_filter is None:
                fetch = k * 3 if self._has_alias_rows else k
                fetch = min(fetch, self._index.ntotal) or k
                return self._index.search(vectors, fetch), None
            allowed = self._type_map.allowed(type_filter)
            return (
                self._search_typed(vectors, k, type_filter, allowed, rows_map),
                allowed,
            )

    def _search_typed(
        self,
        vectors: np.ndarray,
        k: int,
        type_filter: str,
        allowed: frozenset[str],
        rows_map: list[str],
    ) -> SearchResult:
        """Type-constrained scan, exact by construction.

        Over-fetching by the scanned set's *impure row count* (rows whose
        entity is not admissible) guarantees the top-``fetch`` winners
        contain every admissible row the post-filtered full scan would
        return, so rank-stage filtering yields bit-identical results.  On
        a :class:`TypePartitionedIndex` only the partitions that can hold
        admissible entities are scanned; any other index scans everything
        and only the rank filter applies.
        """
        base = k * 3 if self._has_alias_rows else k
        index = self._index
        if isinstance(index, TypePartitionedIndex):
            partitions = self._type_map.partitions_for(type_filter)
            scanned = index.rows_in(partitions)
            with self._stats_lock:
                self._type_rows_scanned += scanned
            if scanned == 0:
                nq = len(vectors)
                return SearchResult(
                    ids=np.full((nq, k), -1, dtype=np.int64),
                    distances=np.full((nq, k), np.inf, dtype=np.float64),  # repro: noqa[REP102]
                )
            fetch = min(
                base + self._impure_row_count(type_filter, rows_map), scanned
            )
            return index.search(vectors, fetch, partitions=partitions)
        scanned = index.ntotal
        with self._stats_lock:
            self._type_rows_scanned += scanned
        fetch = (
            min(base + self._impure_row_count(type_filter, rows_map), scanned)
            or k
        )
        return index.search(vectors, fetch)

    def _impure_row_count(self, type_filter: str, rows_map: list[str]) -> int:
        """Rows in ``type_filter``'s scanned set resolving to other types.

        Memoized per filter; the memo is cleared on every mutation and
        compaction, so it always reflects the current entity set.  The
        count is computed outside the stats lock — a racing duplicate
        computation is harmless — and published under it.  ``rows_map``
        is the caller's pinned row->entity map; a count computed against
        a map the seqlock is about to retire only ever feeds a search
        attempt the seqlock discards.
        """
        with self._stats_lock:
            cached = self._impure_rows.get(type_filter)
        if cached is not None:
            return cached
        allowed = self._type_map.allowed(type_filter)
        index = self._index
        if isinstance(index, TypePartitionedIndex):
            rows: list[int] = []
            for key in self._type_map.partitions_for(type_filter):
                rows.extend(
                    int(r) for r in index.partition_global_ids(key)
                )
        else:
            rows = range(len(rows_map))
        count = sum(
            1
            for row in rows
            if row < len(rows_map) and rows_map[row] not in allowed
        )
        with self._stats_lock:
            self._impure_rows[type_filter] = count
        return count

    @array_contract("normalized: any -> (n, d) f32::any")
    def _embed(self, normalized: list[str]) -> np.ndarray:
        """Embed normalized queries, memoizing repeats when cache enabled."""
        if self.cache is None:
            return self.pipeline.embed_queries(normalized)
        return self.cache.get_embeddings(
            normalized, self.pipeline.embed_queries
        )

    @array_contract(
        "ids: (nq, kr) i64::any, distances: (nq, kr) num::any, k: int -> any"
    )
    def _rank(
        self,
        ids: np.ndarray,
        distances: np.ndarray,
        k: int,
        allowed: frozenset[str] | None = None,
        rows_map: list[str] | None = None,
    ) -> list[list[Candidate]]:
        """Dedup alias rows to entities (closest wins) and score candidates.

        ``allowed`` drops entities outside a type filter's admissible set
        (partitions may mix types when entities declare several).
        ``rows_map`` is the row->entity map pinned together with the
        search's row ids (see ``_serve_ann``'s seqlock); ``None`` falls
        back to the live map for direct callers.
        """
        if rows_map is None:
            rows_map = self._row_to_entity
        out: list[list[Candidate]] = []
        for row_ids, row_d in zip(ids, distances):
            seen: set[str] = set()
            candidates: list[Candidate] = []
            for idx, dist in zip(row_ids, row_d):
                if idx < 0:
                    continue
                entity_id = rows_map[int(idx)]
                if entity_id in seen:
                    continue
                if allowed is not None and entity_id not in allowed:
                    continue
                seen.add(entity_id)
                candidates.append(Candidate(entity_id, -float(dist)))
                if len(candidates) == k:
                    break
            out.append(candidates)
        return out

    # -- introspection ---------------------------------------------------------

    @property
    def index(self) -> VectorIndex:
        """The vector index the engine scans (flat or sharded)."""
        return self._index

    def stage_seconds(self) -> dict[str, float]:
        """Cumulative seconds per serving stage (cache/embed/search/rank)."""
        return {
            stage: watch.total for stage, watch in self.stage_times.items()
        }

    def serving_stats(self) -> dict[str, int]:
        """Degradation counters for dashboards and the fault-injection suite.

        ``partial_results`` counts searches served from surviving shards
        only; ``isolation_retries`` counts batches that fell back to
        query-by-query serving; ``failed_queries`` counts queries whose
        handle resolved with an exception; ``deadline_hits`` counts
        :class:`LookupDeadlineExceeded` raises; ``worker_respawns``
        counts shard worker processes the index replaced after a crash
        or a timed-out request (0 for non-process executors).

        Router tiers add ``exact_hits`` / ``fuzzy_routed`` /
        ``ann_routed`` (all 0 without a router) and type-constrained
        scans add ``type_filtered_rows_scanned`` — the total rows the
        search stage scanned under a ``type_filter`` (partition sums for
        a :class:`TypePartitionedIndex`, ``ntotal`` per scan otherwise).
        The online-mutation path adds ``mutations_applied`` (change-feed
        records applied via :meth:`apply_mutation`) and ``compactions``
        (successful :meth:`compact` swaps).

        The engine counters are copied in one ``_stats_lock`` hold, so
        the snapshot is atomic with respect to concurrent serving
        threads.  The index's ``health_stats()`` and the router's
        ``router_stats()`` are read *before* the engine lock (each takes
        its own stats lock internally), so no two locks ever nest.
        """
        respawns = 0
        health = getattr(self._index, "health_stats", None)
        if callable(health):
            respawns = int(health().get("worker_respawns", 0))
        if self.router is not None:
            router_stats = self.router.router_stats()
        else:
            router_stats = {
                "exact_hits": 0,
                "fuzzy_routed": 0,
                "ann_routed": 0,
            }
        with self._stats_lock:
            return {
                "partial_results": self._partial_results,
                "isolation_retries": self._isolation_retries,
                "failed_queries": self._failed_queries,
                "deadline_hits": self._deadline_hits,
                "worker_respawns": respawns,
                "type_filtered_rows_scanned": self._type_rows_scanned,
                "mutations_applied": self._mutations_applied,
                "compactions": self._compactions,
                **router_stats,
            }

    def reset_timers(self) -> None:
        """Zero the whole-call timer, stage stopwatches, and router tiers."""
        super().reset_timers()
        for watch in self.stage_times.values():
            watch.reset()
        if self.router is not None:
            self.router.reset_timers()

    def index_bytes(self) -> int:
        """Storage of the engine's own index."""
        return self._index.memory_bytes()

    def close(self) -> None:
        """Flush outstanding queries and release the index's workers.

        Idempotent; for a process-executor :class:`ShardedIndex` this
        stops the worker processes and unlinks their shared-memory
        segments, so an engine teardown never leaks either.
        """
        self.flush()
        close = getattr(self._index, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "LookupEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
