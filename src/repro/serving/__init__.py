"""Query-serving layer: micro-batched lookups over sharded indexes.

:class:`LookupEngine` sits above the lookup services: it coalesces
single-query ``submit()`` calls into micro-batches, drives them through
the cache -> embed -> search -> rank stages, and reports per-stage
timings.  Built for the paper's serving scenario (Section V) where many
concurrent clients issue single lookups that are cheapest to answer in
batches against a (possibly sharded) vector index.
"""

from repro.serving.engine import LookupEngine, PendingLookup

__all__ = ["LookupEngine", "PendingLookup"]
