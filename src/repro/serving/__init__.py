"""Query-serving layer: micro-batched lookups over sharded indexes.

:class:`LookupEngine` sits above the lookup services: it coalesces
single-query ``submit()`` calls into micro-batches, drives them through
the cache -> embed -> search -> rank stages, and reports per-stage
timings.  Built for the paper's serving scenario (Section V) where many
concurrent clients issue single lookups that are cheapest to answer in
batches against a (possibly sharded) vector index.

The ingestion side (:mod:`repro.serving.ingest`) streams change-feed
mutations into a live engine: :class:`ChangeFeedConsumer` applies
:class:`IndexMutation` records with bounded retry, dead-letters poison
records, and tracks the applied watermark while ``submit()`` traffic
keeps flowing.
"""

from repro.serving.engine import LookupEngine, PendingLookup
from repro.serving.ingest import (
    ChangeFeedConsumer,
    DeadLetter,
    IndexMutation,
    WatermarkTracker,
)

__all__ = [
    "ChangeFeedConsumer",
    "DeadLetter",
    "IndexMutation",
    "LookupEngine",
    "PendingLookup",
    "WatermarkTracker",
]
