"""Change-feed ingestion: streaming entity mutations into a LookupEngine.

A deployed lookup service does not get to rebuild its index when the
knowledge graph changes — entity edits arrive as a *change feed* of
add/remove/update records that must interleave with live ``submit()``
traffic.  This module is the feed side of the online-mutation path:

- :class:`IndexMutation` is one feed record — a monotone sequence
  number, a kind, and the entity's full surface-form and type payload
  (the feed carries state, not diffs, so records are idempotent to
  re-derive and self-contained to apply).
- :class:`ChangeFeedConsumer` applies records to a
  :class:`~repro.serving.engine.LookupEngine` with **bounded retry and
  exponential backoff**: transient errors (a worker pool mid-respawn, a
  deadline blip) are retried up to ``max_retries`` times; a record that
  keeps failing — or fails *semantically* (``ValueError``: unknown
  entity, duplicate add) — is quarantined as a :class:`DeadLetter`
  instead of wedging the feed.
- :class:`WatermarkTracker` tracks the **watermark**: the highest
  sequence number below which every record has been applied.  Records
  may be applied out of order (the tracker holds the applied set and
  advances the watermark over contiguous runs), but a dead-lettered
  record never advances it — the gap is visible until an operator
  replays or discards the quarantined record.

The consumer runs either synchronously (:meth:`ChangeFeedConsumer.apply`
/ :meth:`ChangeFeedConsumer.consume`) or on a background thread
(:meth:`ChangeFeedConsumer.start` + :meth:`ChangeFeedConsumer.publish`)
so mutations genuinely interleave with serving traffic.  When the
engine's index accumulates enough tombstones the consumer triggers
:meth:`LookupEngine.compact` (``compact_threshold``), keeping scan cost
proportional to the *live* set under sustained churn.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

__all__ = [
    "ChangeFeedConsumer",
    "DeadLetter",
    "IndexMutation",
    "WatermarkTracker",
]

#: Mutation kinds a feed record may carry.
MUTATION_KINDS = ("add", "remove", "update")


@dataclass(frozen=True)
class IndexMutation:
    """One change-feed record: replace an entity's indexed state.

    Parameters
    ----------
    seq:
        Monotone, feed-assigned sequence number (>= 0, unique per feed).
    kind:
        ``"add"`` (entity must be new), ``"remove"`` (entity must
        exist; ``mentions``/``types`` are ignored), or ``"update"``
        (entity must exist; its rows are atomically replaced).
    entity_id:
        The entity the record is about.
    mentions:
        The entity's *complete* surface-form set after the mutation
        (label first by convention); required non-empty for add/update.
    types:
        The entity's full transitive type-id set, primary type first —
        the feed carries resolved types so the consumer never needs the
        type hierarchy.
    """

    seq: int
    kind: str
    entity_id: str
    mentions: tuple[str, ...] = ()
    types: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq}")
        if self.kind not in MUTATION_KINDS:
            raise ValueError(
                f"kind must be one of {MUTATION_KINDS}, got {self.kind!r}"
            )
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")
        object.__setattr__(self, "mentions", tuple(self.mentions))
        object.__setattr__(self, "types", tuple(self.types))
        if self.kind in ("add", "update") and not self.mentions:
            raise ValueError(f"{self.kind} record needs at least one mention")


@dataclass(frozen=True)
class DeadLetter:
    """A quarantined record: the mutation, its final error, attempt count."""

    mutation: IndexMutation
    error: str
    attempts: int


@dataclass
class WatermarkTracker:
    """Tracks the contiguously-applied frontier of a sequence-numbered feed.

    ``watermark`` is the highest ``seq`` such that every record in
    ``[start_seq, seq]`` has been applied (``start_seq - 1`` when none
    have).  :meth:`mark_applied` records one applied sequence number and
    advances the watermark across any contiguous run it completes, so
    out-of-order application is fine but a *gap* — e.g. a dead-lettered
    record — pins the watermark below everything behind it.
    """

    start_seq: int = 0
    _applied: set[int] = field(default_factory=set)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._watermark = self.start_seq - 1

    @property
    def watermark(self) -> int:
        """Highest seq with no unapplied record at or below it."""
        with self._lock:
            return self._watermark

    def mark_applied(self, seq: int) -> None:
        """Record ``seq`` as applied; advance the watermark if contiguous."""
        with self._lock:
            if seq <= self._watermark:
                return
            self._applied.add(seq)
            while self._watermark + 1 in self._applied:
                self._applied.discard(self._watermark + 1)
                self._watermark += 1

    def pending_gaps(self) -> tuple[int, ...]:
        """Applied sequence numbers stranded above the watermark (sorted)."""
        with self._lock:
            return tuple(sorted(self._applied))


class ChangeFeedConsumer:
    """Applies :class:`IndexMutation` records to a :class:`LookupEngine`.

    Retry policy — :meth:`apply` distinguishes two failure classes:

    - ``ValueError`` is a **semantic** rejection (duplicate add, unknown
      entity, empty mentions): retrying cannot help, so the record goes
      straight to the dead-letter lane.
    - Any other exception is treated as **transient** and retried up to
      ``max_retries`` times with exponential backoff (``backoff *
      backoff_factor ** attempt`` seconds, via the injectable ``sleep``
      so tests assert the schedule without waiting).  Exhausted retries
      dead-letter the record.

    A dead-lettered record never advances the watermark, so downstream
    checkpointing cannot skip past an unapplied mutation silently.

    Parameters
    ----------
    engine:
        The serving engine mutations apply to (anything exposing
        ``apply_mutation``; the engine's own lock serializes appliers).
    max_retries:
        Retries after the first attempt for transient errors (>= 0).
    backoff / backoff_factor:
        First retry delay in seconds and its exponential multiplier.
    sleep:
        Delay function (defaults to :func:`time.sleep`); tests inject a
        recorder.
    compact_threshold:
        Tombstone fraction of ``engine.index`` that triggers
        :meth:`LookupEngine.compact` after an apply (``None`` disables).
    start_seq:
        First sequence number the feed is expected to deliver.
    """

    def __init__(
        self,
        engine,
        max_retries: int = 3,
        backoff: float = 0.01,
        backoff_factor: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        compact_threshold: float | None = None,
        start_seq: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0 or backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 and backoff_factor >= 1")
        if compact_threshold is not None and not 0 < compact_threshold <= 1:
            raise ValueError(
                f"compact_threshold must be in (0, 1], got {compact_threshold}"
            )
        self.engine = engine
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.sleep = sleep
        self.compact_threshold = compact_threshold
        self.tracker = WatermarkTracker(start_seq=start_seq)
        self._lock = threading.Lock()
        self._dead: list[DeadLetter] = []
        self._applied = 0
        self._retried = 0
        self._queue: queue.Queue[IndexMutation] = queue.Queue()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- synchronous application ------------------------------------------------

    def apply(self, mutation: IndexMutation) -> bool:
        """Apply one record with bounded retry; True when it applied.

        On success the watermark advances over the record's seq; on
        dead-letter it does not (the gap stays visible).
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                self.engine.apply_mutation(mutation)
            except ValueError as exc:
                # Semantic rejection: retries cannot change the outcome.
                self._dead_letter(mutation, exc, attempts)
                return False
            except Exception as exc:
                if attempts > self.max_retries:
                    self._dead_letter(mutation, exc, attempts)
                    return False
                with self._lock:
                    self._retried += 1
                self.sleep(
                    self.backoff * self.backoff_factor ** (attempts - 1)
                )
                continue
            with self._lock:
                self._applied += 1
                self.tracker.mark_applied(mutation.seq)
            self._maybe_compact()
            return True

    def consume(self, feed: Iterable[IndexMutation]) -> int:
        """Apply every record of ``feed`` in order; returns the applied count."""
        applied = 0
        for mutation in feed:
            if self.apply(mutation):
                applied += 1
        return applied

    def _dead_letter(
        self, mutation: IndexMutation, error: BaseException, attempts: int
    ) -> None:
        with self._lock:
            self._dead.append(
                DeadLetter(
                    mutation=mutation, error=str(error), attempts=attempts
                )
            )

    def _maybe_compact(self) -> None:
        """Trigger engine compaction when the tombstone fraction crosses."""
        if self.compact_threshold is None:
            return
        index = self.engine.index
        total = index.ntotal
        dead = getattr(index, "tombstone_count", 0)
        if total and dead / total >= self.compact_threshold:
            self.engine.compact()

    # -- background consumption -------------------------------------------------

    def start(self) -> None:
        """Start the background applier thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="change-feed-consumer", daemon=True
        )
        self._thread.start()

    def publish(self, mutation: IndexMutation) -> None:
        """Enqueue one record for the background thread to apply."""
        self._queue.put(mutation)

    def drain(self, timeout: float | None = 30.0) -> None:
        """Block until every published record is applied or dead-lettered.

        Bounded: raises :class:`TimeoutError` when records are still
        outstanding after ``timeout`` seconds (``None`` waits forever) —
        a wedged applier must fail the caller, not hang it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                wait = 0.1
                if deadline is not None:
                    wait = min(wait, deadline - time.monotonic())
                    if wait <= 0:
                        raise TimeoutError(
                            f"{self._queue.unfinished_tasks} record(s) "
                            f"still unapplied after {timeout}s"
                        )
                self._queue.all_tasks_done.wait(wait)

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain outstanding records, then stop the thread (idempotent).

        Raises :class:`TimeoutError` when the drain or the thread exit
        does not complete within ``timeout`` seconds.
        """
        if self._thread is None:
            return
        self.drain(timeout)
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"change-feed thread did not stop within {timeout}s"
            )
        self._thread = None

    def _run(self) -> None:
        """Background loop: poll the queue with a timeout so stop() is seen."""
        while not self._stop.is_set():
            try:
                mutation = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            try:
                self.apply(mutation)
            finally:
                self._queue.task_done()

    # -- introspection ----------------------------------------------------------

    @property
    def watermark(self) -> int:
        """The tracker's current watermark (see :class:`WatermarkTracker`)."""
        with self._lock:
            return self.tracker.watermark

    @property
    def dead_letters(self) -> tuple[DeadLetter, ...]:
        """Quarantined records, in dead-letter order (snapshot copy)."""
        with self._lock:
            return tuple(self._dead)

    def ingest_stats(self) -> dict[str, int]:
        """Applied/retried/dead-letter counters plus the watermark."""
        with self._lock:
            return {
                "applied": self._applied,
                "retries": self._retried,
                "dead_letters": len(self._dead),
                "watermark": self.tracker.watermark,
            }

    def __enter__(self) -> "ChangeFeedConsumer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
