"""Minimal deep-learning framework (the reproduction's PyTorch substitute).

Implements exactly what EmbLookup's model needs — a reverse-mode autograd
tensor, 1-D convolution, linear layers, ReLU, max pooling, embedding bags,
triplet-margin loss, and the Adam/SGD optimisers — with numerical gradient
checking to pin correctness (see ``tests/nn``).
"""

from repro.nn.tensor import Tensor, concatenate, no_grad, stack
from repro.nn import functional
from repro.nn.layers import (
    Conv1d,
    Dropout,
    EmbeddingBag,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.loss import (
    cross_entropy_loss,
    mse_loss,
    triplet_margin_loss,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.gradcheck import gradcheck

__all__ = [
    "Adam",
    "Conv1d",
    "Dropout",
    "EmbeddingBag",
    "LayerNorm",
    "Linear",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "concatenate",
    "cross_entropy_loss",
    "functional",
    "gradcheck",
    "load_state_dict",
    "mse_loss",
    "no_grad",
    "save_state_dict",
    "stack",
    "triplet_margin_loss",
]
