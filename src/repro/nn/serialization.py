"""Model persistence: state dicts round-trip through ``numpy.savez``."""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["load_state_dict", "save_state_dict"]

# Parameter names contain dots ("encoder.conv0.weight"); npz keys keep them
# verbatim, so nothing needs escaping.


def save_state_dict(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Persist a state dict to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: str | Path) -> dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no model checkpoint at {path}")
    with np.load(path) as archive:
        return {name: archive[name].copy() for name in archive.files}
