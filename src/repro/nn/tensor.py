"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar result walks the
recorded graph in reverse topological order, accumulating gradients into
every tensor created with ``requires_grad=True``.

The op set is deliberately small — exactly what the EmbLookup model and its
baselines need — but each op supports full numpy broadcasting, with
gradients "un-broadcast" back to the operand shapes.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Sequence
from typing import Any

import numpy as np

__all__ = ["DEFAULT_DTYPE", "Tensor", "concatenate", "no_grad", "stack"]

#: Default payload dtype.  The paper's memory model (64-d vectors = 256 B,
#: PQ-compressed to 8 B) assumes float32 end-to-end; float64 remains an
#: explicit opt-in (numerical gradient checking passes float64 arrays in).
DEFAULT_DTYPE = np.float32

_grad_enabled: bool = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Any) -> np.ndarray:
    if isinstance(value, (np.ndarray, np.generic)):
        array = np.asarray(value)  # repro: noqa[REP101] -- dtype-preserving path
        if array.dtype != np.float64 and array.dtype != np.float32:  # repro: noqa[REP102]
            return array.astype(DEFAULT_DTYPE)
        return array
    return np.asarray(value, dtype=DEFAULT_DTYPE)


class Tensor:
    """A numpy array with an autograd tape entry.

    Parameters
    ----------
    data:
        Array-like payload; coerced to float32/float64 ndarray.
    requires_grad:
        When true, gradients are accumulated into ``self.grad`` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: Any,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        name: str | None = None,
    ):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = _parents if _grad_enabled else ()
        self.name = name

    # -- basic introspection ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """The scalar payload as a Python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Discard the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction -------------------------------------------------------

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        When this tensor is not a scalar, ``grad`` (the upstream gradient,
        same shape) must be provided.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor "
                    f"shape {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack_: list[tuple[Tensor, bool]] = [(self, False)]
        while stack_:
            node, processed = stack_.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack_.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack_.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(
        self, grad: np.ndarray, grads: dict[int, np.ndarray]
    ) -> None:
        assert self._backward is not None
        parent_grads = self._backward(grad)  # type: ignore[misc]
        for parent, pgrad in zip(self._parents, parent_grads):  # type: ignore[arg-type]
            if pgrad is None:
                continue
            if not parent.requires_grad and not parent._parents:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad
            if parent._backward is None and parent.requires_grad:
                # Leaves accumulate immediately below in backward()'s loop;
                # nothing extra to do here.
                pass

    # -- arithmetic ops ------------------------------------------------------------

    def _as_operand(self, other: Any) -> "Tensor":
        """Wrap ``other`` as a Tensor; bare python scalars adopt this
        tensor's dtype so constants never promote a float32 graph."""
        if isinstance(other, Tensor):
            return other
        if isinstance(other, (int, float)):
            return Tensor(np.asarray(other, dtype=self.data.dtype))
        return Tensor(other)

    def __add__(self, other: Any) -> "Tensor":
        other_t = self._as_operand(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other_t.data.shape),
            )

        return self._make(data, (self, other_t), backward)

    def __radd__(self, other: Any) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (-grad,)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Any) -> "Tensor":
        other_t = self._as_operand(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(-grad, other_t.data.shape),
            )

        return self._make(data, (self, other_t), backward)

    def __rsub__(self, other: Any) -> "Tensor":
        return self._as_operand(other).__sub__(self)

    def __mul__(self, other: Any) -> "Tensor":
        other_t = self._as_operand(other)
        data = self.data * other_t.data
        a, b = self.data, other_t.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad * b, a.shape),
                _unbroadcast(grad * a, b.shape),
            )

        return self._make(data, (self, other_t), backward)

    def __rmul__(self, other: Any) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Any) -> "Tensor":
        other_t = self._as_operand(other)
        a, b = self.data, other_t.data
        data = a / b

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad / b, a.shape),
                _unbroadcast(-grad * a / (b * b), b.shape),
            )

        return self._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: Any) -> "Tensor":
        return self._as_operand(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent
        base = self.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * exponent * base ** (exponent - 1),)

        return self._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(other)
        a, b = self.data, other.data
        data = a @ b

        def backward(grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            if a.ndim == 2 and b.ndim == 2:
                return grad @ b.T, a.T @ grad
            # General batched case.
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(grad_a, a.shape),
                _unbroadcast(grad_b, b.shape),
            )

        return self._make(data, (self, other), backward)

    # -- elementwise nonlinearities -------------------------------------------------

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * mask,)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * (1.0 - data * data),)

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic function."""
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * data * (1.0 - data),)

        return self._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * data,)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        data = np.log(self.data)
        source = self.data

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad / source,)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * 0.5 / np.maximum(data, 1e-12),)

        return self._make(data, (self,), backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        """Elementwise max(x, minimum) (hinge nonlinearity)."""
        mask = self.data >= minimum
        data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad * mask,)

        return self._make(data, (self,), backward)

    # -- reductions ------------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or everything when ``axis`` is None)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % len(shape) for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, shape).copy(),)

        return self._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max over ``axis``; ties share gradient equally."""
        data = self.data.max(axis=axis, keepdims=keepdims)
        # Gradient flows only to the (first) argmax along the axis.
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        # Break ties: normalise so total gradient is preserved.
        counts = mask.sum(axis=axis, keepdims=True)
        weights = mask / counts
        shape = self.data.shape

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            g = grad if keepdims else np.expand_dims(grad, axis)
            return (np.broadcast_to(g, shape) * weights,)

        return self._make(data, (self,), backward)

    # -- shape ops --------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """View with a new shape (same element count)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])  # type: ignore[assignment]
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad.reshape(original),)

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (reversed order when ``axes`` omitted)."""
        order = axes or tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            return (grad.transpose(inverse),)

        return self._make(data, (self,), backward)

    def __getitem__(self, index: Any) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def backward(grad: np.ndarray) -> tuple[np.ndarray]:
            full = np.zeros(shape, dtype=grad.dtype)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    if not tensors:
        raise ValueError("concatenate needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> tuple[np.ndarray, ...]:
        slices = []
        for i in range(len(sizes)):
            idx: list[Any] = [slice(None)] * grad.ndim
            idx[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            slices.append(grad[tuple(idx)])
        return tuple(slices)

    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())
    if requires:
        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> tuple[np.ndarray, ...]:
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())
    if requires:
        out._backward = backward
    return out
