"""Optimisers: SGD with momentum and Adam (the paper trains with Adam)."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Adam", "Optimizer", "SGD"]


class Optimizer:
    """Base optimiser over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """SGD update with optional momentum and weight decay."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Adam update with bias-corrected first/second moments."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
