"""Loss functions; the triplet margin loss is the paper's training objective.

Paper Eq. (3): ``max(||f(a) - f(p)||^2 - ||f(a) - f(n)||^2 + margin, 0)``.
The per-triplet loss is also exposed so the online hard-mining schedule can
filter easy triplets (Section III-B, "Heuristics for Triplet Mining").
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "contrastive_losses",
    "cross_entropy_loss",
    "mse_loss",
    "pairwise_squared_distance",
    "triplet_margin_loss",
    "triplet_margin_losses",
]


def pairwise_squared_distance(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise squared Euclidean distance between two ``(N, D)`` tensors."""
    diff = a - b
    return (diff * diff).sum(axis=1)


def triplet_margin_losses(
    anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 1.0
) -> Tensor:
    """Per-triplet hinge losses, shape ``(N,)`` (before mean reduction)."""
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")
    d_pos = pairwise_squared_distance(anchor, positive)
    d_neg = pairwise_squared_distance(anchor, negative)
    return (d_pos - d_neg + margin).clamp_min(0.0)


def triplet_margin_loss(
    anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 1.0
) -> Tensor:
    """Mean triplet margin loss over a batch."""
    return triplet_margin_losses(anchor, positive, negative, margin).mean()


def contrastive_losses(
    anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 1.0
) -> Tensor:
    """Per-triplet contrastive (pair) losses, shape ``(N,)``.

    The paper's future-work alternative to triplet loss: each triplet is
    decomposed into an attracting pair ``(a, p)`` pulled to distance 0 and
    a repelling pair ``(a, n)`` pushed beyond ``margin``:
    ``d(a,p) + max(margin - d(a,n), 0)``.
    """
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")
    d_pos = pairwise_squared_distance(anchor, positive)
    d_neg = pairwise_squared_distance(anchor, negative)
    return d_pos + (Tensor(margin * 1.0) - d_neg).clamp_min(0.0)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def cross_entropy_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer class ``targets``.

    Used by the word2vec / LSTM baseline embedders' softmax heads.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(len(targets), dtype=np.int64), targets]
    return -picked.mean()
