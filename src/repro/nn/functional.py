"""Functional ops built on the autograd tensor: conv1d, pooling, softmax.

The 1-D convolution implements the paper's syntactic CNN tower: inputs are
``(batch, channels, length)`` one-hot mention matrices.  Convolution is
realised with an im2col transform so the heavy lifting is a single matmul.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "conv1d",
    "dropout",
    "global_max_pool1d",
    "log_softmax",
    "max_pool1d",
    "softmax",
]


def _im2col_1d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Unfold ``(N, C, L)`` into ``(N, out_len, C * kernel)`` patches."""
    n, c, length = x.shape
    out_len = (length - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, kernel, axis=2)
    # windows: (N, C, L - k + 1, k) -> stride & reorder -> (N, out_len, C, k)
    windows = windows[:, :, ::stride, :][:, :, :out_len, :]
    return windows.transpose(0, 2, 1, 3).reshape(n, out_len, c * kernel)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, length)``.
    weight:
        Kernel of shape ``(out_channels, in_channels, kernel_size)``.
    bias:
        Optional per-output-channel bias of shape ``(out_channels,)``.
    """
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (N, C, L) input, got shape {x.shape}")
    if weight.ndim != 3:
        raise ValueError(f"conv1d expects (Co, Ci, K) weight, got {weight.shape}")
    n, c_in, length = x.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    if length + 2 * padding < kernel:
        raise ValueError(
            f"input length {length} (+{2 * padding} pad) shorter than kernel {kernel}"
        )

    x_data = x.data
    if padding:
        x_data = np.pad(x_data, ((0, 0), (0, 0), (padding, padding)))
    cols = _im2col_1d(x_data, kernel, stride)          # (N, out_len, C*K)
    w2d = weight.data.reshape(c_out, c_in * kernel)    # (Co, C*K)
    out = cols @ w2d.T                                 # (N, out_len, Co)
    out = out.transpose(0, 2, 1)                       # (N, Co, out_len)
    if bias is not None:
        out = out + bias.data[None, :, None]
    out_len = out.shape[2]

    def backward(grad: np.ndarray):
        # grad: (N, Co, out_len)
        grad_out = grad.transpose(0, 2, 1)             # (N, out_len, Co)
        grad_w2d = np.einsum("nlo,nlk->ok", grad_out, cols)
        grad_weight = grad_w2d.reshape(weight.data.shape)
        grad_cols = grad_out @ w2d                     # (N, out_len, C*K)
        grad_cols = grad_cols.reshape(n, out_len, c_in, kernel)
        grad_x_padded = np.zeros(
            (n, c_in, length + 2 * padding), dtype=grad.dtype
        )
        # Fold the column gradients back with one strided slice-add per
        # kernel offset: targets within an offset are `stride` apart, so
        # each += is overlap-free, and the loop runs `kernel` times
        # instead of `out_len` times.
        for k_off in range(kernel):
            end = k_off + (out_len - 1) * stride + 1
            grad_x_padded[:, :, k_off:end:stride] += grad_cols[
                :, :, :, k_off
            ].transpose(0, 2, 1)
        grad_x = (
            grad_x_padded[:, :, padding : padding + length]
            if padding
            else grad_x_padded
        )
        grads: list[np.ndarray | None] = [grad_x, grad_weight]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2)))
        return tuple(grads)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return x._make(out, parents, backward)


def max_pool1d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over the time axis of a ``(N, C, L)`` tensor."""
    if x.ndim != 3:
        raise ValueError(f"max_pool1d expects (N, C, L) input, got {x.shape}")
    stride = stride or kernel
    n, c, length = x.shape
    out_len = (length - kernel) // stride + 1
    if out_len <= 0:
        raise ValueError(f"kernel {kernel} larger than input length {length}")

    windows = np.lib.stride_tricks.sliding_window_view(x.data, kernel, axis=2)
    windows = windows[:, :, ::stride, :][:, :, :out_len, :]  # (N, C, out, K)
    out = windows.max(axis=3)
    argmax = windows.argmax(axis=3)  # (N, C, out)

    def backward(grad: np.ndarray):
        grad_x = np.zeros((n, c, length), dtype=grad.dtype)
        n_idx, c_idx, o_idx = np.indices((n, c, out_len))
        positions = o_idx * stride + argmax
        np.add.at(grad_x, (n_idx, c_idx, positions), grad)
        return (grad_x,)

    return x._make(out, (x,), backward)


def global_max_pool1d(x: Tensor) -> Tensor:
    """Max over the entire time axis: ``(N, C, L)`` -> ``(N, C)``."""
    return x.max(axis=2)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(
    x: Tensor, p: float, training: bool, rng: np.random.Generator
) -> Tensor:
    """Inverted dropout: identity in eval mode or when ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return x._make(x.data * mask, (x,), backward)
