"""Weight initialisers (Glorot/Xavier and He/Kaiming schemes).

All initialisers return :data:`repro.nn.tensor.DEFAULT_DTYPE` (float32)
arrays by default; pass ``dtype=np.float64`` explicitly for gradient
checking (see :mod:`repro.nn.gradcheck`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import DEFAULT_DTYPE

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros"]


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
    fan_out: int | None = None,
    dtype: np.dtype | type = DEFAULT_DTYPE,
) -> np.ndarray:
    """Glorot uniform initialisation: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    fan_in = fan_in if fan_in is not None else _default_fan(shape, "in")
    fan_out = fan_out if fan_out is not None else _default_fan(shape, "out")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype, copy=False)


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
    dtype: np.dtype | type = DEFAULT_DTYPE,
) -> np.ndarray:
    """He uniform initialisation for ReLU networks: U(-a, a), a = sqrt(6 / fan_in)."""
    fan_in = fan_in if fan_in is not None else _default_fan(shape, "in")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype, copy=False)


def zeros(
    shape: tuple[int, ...], dtype: np.dtype | type = DEFAULT_DTYPE
) -> np.ndarray:
    """All-zero array (bias initialiser); float32 unless overridden."""
    return np.zeros(shape, dtype=dtype)


def _default_fan(shape: tuple[int, ...], which: str) -> int:
    if len(shape) == 1:
        return shape[0]
    if len(shape) == 2:
        fan_in, fan_out = shape[1], shape[0]
    else:
        receptive = int(np.prod(shape[2:]))
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    return fan_in if which == "in" else fan_out
