"""Numerical gradient checking for autograd correctness tests.

The library computes in float32 by default (see
:data:`repro.nn.tensor.DEFAULT_DTYPE`), but central differences with
``eps ~ 1e-5`` are meaningless at float32 precision — so :func:`gradcheck`
explicitly opts the checked parameters into float64 for the duration of
the check and restores their original dtype afterwards.  This is the one
sanctioned float64 usage in ``repro.nn`` (allowlisted by the ``REP102``
lint rule).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = fn().item()
        flat[i] = original - eps
        low = fn().item()
        flat[i] = original
        grad_flat[i] = (high - low) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
    check_dtype: np.dtype | type | None = np.float64,
) -> bool:
    """Compare autograd gradients of ``fn()`` against central differences.

    ``fn`` must be deterministic and return a scalar tensor built from the
    given ``parameters``.  Raises ``AssertionError`` with the offending
    parameter index on mismatch; returns ``True`` otherwise.

    ``check_dtype`` (default float64) temporarily recasts every parameter
    payload so the finite differences are computed at full precision even
    when the library default is float32; pass ``None`` to check at the
    parameters' native precision.
    """
    originals: list[np.ndarray] | None = None
    if check_dtype is not None:
        originals = [p.data for p in parameters]
        for param in parameters:
            param.data = param.data.astype(check_dtype)
    try:
        for param in parameters:
            param.zero_grad()
        loss = fn()
        loss.backward()
        analytic = [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in parameters
        ]
        for index, param in enumerate(parameters):
            numeric = numerical_gradient(fn, param, eps=eps)
            if not np.allclose(analytic[index], numeric, atol=atol, rtol=rtol):
                worst = np.abs(analytic[index] - numeric).max()
                raise AssertionError(
                    f"gradient mismatch for parameter {index}: "
                    f"max abs diff {worst:.3e}"
                )
    finally:
        if originals is not None:
            for param, original in zip(parameters, originals):
                param.data = original
                param.zero_grad()
    return True
