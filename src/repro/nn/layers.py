"""Neural-network layers over the autograd tensor.

:class:`Module` supplies parameter discovery, train/eval modes, and
state-dict (de)serialisation — the subset of ``torch.nn.Module`` the
EmbLookup model relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import DEFAULT_DTYPE, Tensor
from repro.utils.rng import as_rng

__all__ = [
    "Conv1d",
    "Dropout",
    "EmbeddingBag",
    "LayerNorm",
    "Linear",
    "Module",
    "ReLU",
    "Sequential",
    "Tanh",
]

#: Shared read-only placeholder for empty bags (never written through).
_EMPTY_BAG = np.empty(0, dtype=np.int64)


class Module:
    """Base class: tracks parameters and sub-modules by attribute name."""

    def __init__(self) -> None:
        self._parameters: OrderedDict[str, Tensor] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training: bool = True

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------------

    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors in this module and its children."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """(dotted-path, tensor) pairs for this module and children."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Enable training mode (dropout active) recursively."""
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        """Enable inference mode (dropout inert) recursively."""
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # -- state dict ----------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter names to array copies."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value

    # -- call protocol ---------------------------------------------------------------

    def forward(self, *args: Tensor) -> Tensor:
        """Compute the module output (subclass hook)."""
        raise NotImplementedError

    def __call__(self, *args: Tensor) -> Tensor:
        return self.forward(*args)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self.parameters())


class Linear(Module):
    """Affine map ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ):
        super().__init__()
        generator = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform((out_features, in_features), generator),
            requires_grad=True,
        )
        self.bias = (
            Tensor(init.zeros((out_features,)), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map to ``(N, in_features)`` input."""
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class Conv1d(Module):
    """1-D convolution over ``(N, C, L)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ):
        super().__init__()
        generator = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size), generator
            ),
            requires_grad=True,
        )
        self.bias = (
            Tensor(init.zeros((out_channels,)), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        """Convolve ``(N, C, L)`` input."""
        return F.conv1d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels} -> {self.out_channels}, "
            f"k={self.kernel_size}, pad={self.padding})"
        )


class ReLU(Module):
    """Elementwise rectifier."""

    def forward(self, x: Tensor) -> Tensor:
        """max(x, 0)."""
        return x.relu()


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        """tanh(x)."""
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, p: float = 0.1, rng: int | np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = as_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero activations (training mode only)."""
        return F.dropout(x, self.p, self.training, self.rng)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(np.ones(features, dtype=DEFAULT_DTYPE), requires_grad=True)
        self.beta = Tensor(np.zeros(features, dtype=DEFAULT_DTYPE), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        """Normalise the last dimension, then scale and shift."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta


class Sequential(Module):
    """Runs child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: list[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        """Pipe ``x`` through the child modules in order."""
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)


class EmbeddingBag(Module):
    """Mean-pooled embedding lookup over variable-length index bags.

    This is the subword aggregation layer of the fastText tower: a mention's
    character n-grams hash to rows of the embedding table and the mention
    embedding is their mean.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: int | np.random.Generator | None = None,
    ):
        super().__init__()
        generator = as_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scale = 1.0 / np.sqrt(embedding_dim)
        self.weight = Tensor(
            generator.uniform(
                -scale, scale, size=(num_embeddings, embedding_dim)
            ).astype(DEFAULT_DTYPE, copy=False),
            requires_grad=True,
        )

    def forward_bags(self, bags: Sequence[Sequence[int]]) -> Tensor:
        """Embed a batch of index bags into a ``(batch, dim)`` tensor."""
        batch = len(bags)
        out = np.zeros((batch, self.embedding_dim), dtype=self.weight.data.dtype)
        weight = self.weight
        flat_rows: list[np.ndarray] = []
        for b, bag in enumerate(bags):
            if len(bag) == 0:
                flat_rows.append(_EMPTY_BAG)
                continue
            rows = np.asarray(bag, dtype=np.int64)
            if rows.max(initial=-1) >= self.num_embeddings or rows.min(initial=0) < 0:
                raise IndexError(
                    f"bag indices out of range [0, {self.num_embeddings})"
                )
            flat_rows.append(rows)
            out[b] = weight.data[rows].mean(axis=0)

        def backward(grad: np.ndarray):
            grad_weight = np.zeros_like(weight.data)
            for b, rows in enumerate(flat_rows):
                if rows.size == 0:
                    continue
                np.add.at(grad_weight, rows, grad[b] / rows.size)
            return (grad_weight,)

        return weight._make(out, (weight,), backward)

    def forward(self, *args: Tensor) -> Tensor:  # pragma: no cover - use forward_bags
        raise TypeError("EmbeddingBag requires forward_bags(bags)")
