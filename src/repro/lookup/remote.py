"""Simulated remote lookup services (Wikidata API, SearX).

The paper's remote baselines are dominated by network latency and rate
limits (Wikidata allows only five parallel queries per IP).  We model that
explicitly: a remote service wraps a local matcher and *accounts* latency
on a virtual clock instead of sleeping, so benchmarks finish quickly while
the reported lookup time reproduces the remote cost structure.  DESIGN.md
documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.lookup.elastic import ElasticLookup
from repro.lookup.exact import ExactMatchLookup

__all__ = ["RemoteServiceModel", "SimulatedRemoteLookup"]


@dataclass(frozen=True)
class RemoteServiceModel:
    """Latency/rate-limit model of a remote endpoint.

    Attributes
    ----------
    latency_seconds:
        Round-trip time per request.
    max_parallel:
        Concurrent requests the endpoint allows per client; a batch of
        ``n`` queries therefore pays ``ceil(n / max_parallel)`` round trips.
    requests_per_second:
        Hard rate limit; when the implied throughput exceeds it, the extra
        wait is added.
    """

    latency_seconds: float = 0.05
    max_parallel: int = 5
    requests_per_second: float = 25.0

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        if self.max_parallel < 1:
            raise ValueError("max_parallel must be >= 1")
        if self.requests_per_second <= 0:
            raise ValueError("requests_per_second must be > 0")

    def batch_latency(self, num_queries: int) -> float:
        """Virtual wall-clock cost of ``num_queries`` lookups."""
        if num_queries <= 0:
            return 0.0
        waves = -(-num_queries // self.max_parallel)  # ceil division
        latency = waves * self.latency_seconds
        rate_floor = num_queries / self.requests_per_second
        return max(latency, rate_floor)

    @classmethod
    def wikidata(cls) -> "RemoteServiceModel":
        """Wikidata API: ~60 ms RTT, 5 parallel queries per IP."""
        return cls(latency_seconds=0.06, max_parallel=5, requests_per_second=25.0)

    @classmethod
    def searx(cls) -> "RemoteServiceModel":
        """SearX metasearch: aggregates 70+ engines, slower round trips."""
        return cls(latency_seconds=0.15, max_parallel=4, requests_per_second=10.0)


class SimulatedRemoteLookup(LookupService):
    """A remote endpoint: local matcher + virtual network latency.

    The default matcher is an alias-aware *word-level* BM25: remote
    services index the full KG (so aliases resolve and clean queries score
    well) but, as the paper stresses, offer only "limited support for
    fuzzy queries" — a mid-word typo misses the word index.  This
    reproduces the remote rows of Table V: high clean accuracy, a clear
    drop under errors, and latency-dominated response times.
    """

    def __init__(
        self,
        matcher: LookupService,
        model: RemoteServiceModel,
        name: str = "remote",
    ):
        super().__init__()
        self.matcher = matcher
        self.model = model
        self.name = name

    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        model: RemoteServiceModel | None = None,
        name: str = "wikidata_api",
        **kwargs,
    ) -> "SimulatedRemoteLookup":
        model = model or RemoteServiceModel.wikidata()
        matcher = ElasticLookup.build(
            kg,
            include_aliases=True,
            fuzziness=0,
            word_weight=1.0,
            trigram_weight=0.0,
        )
        return cls(matcher, model, name=name)

    @classmethod
    def build_exactish(
        cls,
        kg: KnowledgeGraph,
        model: RemoteServiceModel | None = None,
        name: str = "wikidata_api",
    ) -> "SimulatedRemoteLookup":
        """Variant backed by exact alias matching only (stricter endpoint)."""
        model = model or RemoteServiceModel.wikidata()
        matcher = ExactMatchLookup.build(kg, include_aliases=True)
        return cls(matcher, model, name=name)

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        self.simulated_latency += self.model.batch_latency(len(queries))
        return self.matcher._lookup_batch(queries, k)

    def index_bytes(self) -> int:
        # Remote index lives server-side; local footprint is zero.
        return 0
