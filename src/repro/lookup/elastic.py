"""ElasticSearch-style lookup: BM25 over words blended with trigram BM25.

Reproduces the paper's description of ElasticSearch's fuzzy matching — "a
weighted combination of word and trigram based BM25 score".  Two inverted
indexes (word tokens and character trigrams) are scored with BM25 and
combined; the trigram channel provides the typo tolerance.
"""

from __future__ import annotations

import heapq
import math
from collections import defaultdict

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.text.distance import levenshtein, qgrams
from repro.text.tokenize import normalize, word_tokens

__all__ = ["ElasticLookup"]


class _BM25Index:
    """One BM25-scored inverted index over string terms."""

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self.postings: dict[str, list[tuple[int, int]]] = defaultdict(list)
        self.doc_lengths: list[int] = []
        self.total_length = 0

    def add(self, terms: list[str]) -> int:
        doc_id = len(self.doc_lengths)
        counts: dict[str, int] = defaultdict(int)
        for term in terms:
            counts[term] += 1
        for term, tf in counts.items():
            self.postings[term].append((doc_id, tf))
        self.doc_lengths.append(len(terms))
        self.total_length += len(terms)
        return doc_id

    def score(self, terms: list[str]) -> dict[int, float]:
        n_docs = len(self.doc_lengths)
        if n_docs == 0:
            return {}
        avg_len = self.total_length / n_docs
        scores: dict[int, float] = defaultdict(float)
        for term in set(terms):
            plist = self.postings.get(term)
            if not plist:
                continue
            df = len(plist)
            idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
            for doc_id, tf in plist:
                denom = tf + self.k1 * (
                    1 - self.b + self.b * self.doc_lengths[doc_id] / avg_len
                )
                scores[doc_id] += idf * tf * (self.k1 + 1) / denom
        return scores

    def nbytes(self) -> int:
        return sum(
            len(term.encode()) + 12 * len(plist)
            for term, plist in self.postings.items()
        )


class ElasticLookup(LookupService):
    name = "elastic"

    def __init__(
        self,
        word_weight: float = 0.5,
        trigram_weight: float = 0.5,
        fuzziness: int = 2,
        include_aliases: bool = False,
    ):
        super().__init__()
        if word_weight < 0 or trigram_weight < 0:
            raise ValueError("BM25 channel weights must be non-negative")
        if fuzziness < 0:
            raise ValueError("fuzziness must be >= 0")
        self.word_weight = word_weight
        self.trigram_weight = trigram_weight
        self.fuzziness = fuzziness
        self.include_aliases = include_aliases
        self._words = _BM25Index()
        self._trigrams = _BM25Index()
        self._entity_ids: list[str] = []

    @classmethod
    def build(
        cls, kg: KnowledgeGraph, include_aliases: bool = False, **kwargs
    ) -> "ElasticLookup":
        service = cls(include_aliases=include_aliases, **kwargs)
        for entity in kg.entities():
            mentions = entity.mentions if include_aliases else (entity.label,)
            for mention in mentions:
                label = normalize(mention)
                service._words.add(word_tokens(label))
                service._trigrams.add(qgrams(label, 3))
                service._entity_ids.append(entity.entity_id)
        return service

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return [self._single(normalize(q), k) for q in queries]

    def _expand_fuzzy(self, tokens: list[str]) -> list[str]:
        """ElasticSearch-style fuzzy term expansion.

        Each query token is matched against the indexed vocabulary within
        ``fuzziness`` edits (length pruning + early-exit Levenshtein) —
        the cost profile of ES's fuzzy queries, which expand terms through
        a Levenshtein automaton over the term dictionary.
        """
        if self.fuzziness == 0:
            return tokens
        expanded: list[str] = []
        vocabulary = self._words.postings
        for token in tokens:
            if token in vocabulary:
                expanded.append(token)
                continue
            for term in vocabulary:
                if abs(len(term) - len(token)) > self.fuzziness:
                    continue
                if levenshtein(token, term, max_distance=self.fuzziness) <= self.fuzziness:
                    expanded.append(term)
        return expanded

    def _single(self, query: str, k: int) -> list[Candidate]:
        combined: dict[int, float] = defaultdict(float)
        if self.word_weight > 0:
            word_scores = self._words.score(
                self._expand_fuzzy(word_tokens(query))
            )
            for doc_id, score in word_scores.items():
                combined[doc_id] += self.word_weight * score
        if self.trigram_weight > 0:
            trigram_scores = self._trigrams.score(qgrams(query, 3))
            for doc_id, score in trigram_scores.items():
                combined[doc_id] += self.trigram_weight * score
        heap: list[tuple[float, int]] = []
        for doc_id, score in combined.items():
            if len(heap) < k:
                heapq.heappush(heap, (score, doc_id))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, doc_id))
        ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
        out: list[Candidate] = []
        seen: set[str] = set()
        for score, doc_id in ranked:
            entity_id = self._entity_ids[doc_id]
            if entity_id in seen:
                continue
            seen.add(entity_id)
            out.append(Candidate(entity_id, float(score)))
        return out

    def index_bytes(self) -> int:
        return self._words.nbytes() + self._trigrams.nbytes()
