"""LRU query cache for the serving path (embeddings and, optionally, results).

Real entity-lookup traffic is heavily skewed — a handful of popular
surface forms ("usa", "germany", "google") dominate the stream — so an
LRU over *normalized* query strings converts the embedding tower's matmul
(and optionally the whole k-NN search) into a dict hit for the head of the
distribution.  Hit/miss/eviction counters are first-class so the serving
benchmarks can plot hit-rate curves against cache capacity.

Keys are the caller's responsibility: services pass queries through
:func:`repro.text.tokenize.normalize` first, so "Germany " and "germany"
share an entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

__all__ = ["CacheStats", "QueryCache"]


class CacheStats:
    """Mutable hit/miss/eviction counters shared by one cache's stores."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def requests(self) -> int:
        """Total gets served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of gets served from cache (0.0 when never queried)."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for benchmark JSON."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _LRUStore:
    """Bounded ``OrderedDict`` with move-to-end on hit, shared counters."""

    def __init__(self, capacity: int, stats: CacheStats) -> None:
        self.capacity = capacity
        self.stats = stats
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: Any, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class QueryCache:
    """LRU cache keyed by normalized query strings.

    Two stores share one capacity budget *each* and one counter block:

    - the **embedding store** maps a query to its embedding vector,
      short-circuiting the model's forward pass;
    - the optional **result store** maps ``(query, k)`` to the final
      candidate list, short-circuiting the index scan as well (only safe
      while the underlying index is static, hence opt-in).

    All methods are thread-safe; the serving engine calls into one cache
    from its micro-batch flush path while shard searches run on the pool.

    Parameters
    ----------
    capacity:
        Max entries per store (must be positive).
    cache_results:
        Also cache final candidate lists keyed by ``(query, k)``.
    """

    def __init__(self, capacity: int, cache_results: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._embeddings = _LRUStore(capacity, self.stats)
        self._results = _LRUStore(capacity, self.stats) if cache_results else None

    @property
    def caches_results(self) -> bool:
        """Whether the result store is enabled."""
        return self._results is not None

    # -- embedding store --------------------------------------------------------

    def get_embedding(self, query: str) -> np.ndarray | None:
        """Cached embedding for ``query`` or ``None`` (counts hit/miss)."""
        with self._lock:
            return self._embeddings.get(query)

    def put_embedding(self, query: str, vector: np.ndarray) -> None:
        """Store ``query``'s embedding (copied, so callers can't mutate it)."""
        with self._lock:
            self._embeddings.put(query, np.array(vector, copy=True))

    # -- result store -----------------------------------------------------------

    def get_result(self, query: str, k: int) -> list | None:
        """Cached candidate list for ``(query, k)`` or ``None``."""
        if self._results is None:
            return None
        with self._lock:
            cached = self._results.get((query, k))
            return list(cached) if cached is not None else None

    def put_result(self, query: str, k: int, candidates: list) -> None:
        """Store a candidate list for ``(query, k)`` (no-op when disabled)."""
        if self._results is None:
            return
        with self._lock:
            self._results.put((query, k), list(candidates))

    # -- maintenance ------------------------------------------------------------

    def __len__(self) -> int:
        """Total live entries across both stores."""
        with self._lock:
            return len(self._embeddings) + (
                len(self._results) if self._results is not None else 0
            )

    def clear(self) -> None:
        """Drop every entry; invalidate after the index changes."""
        with self._lock:
            self._embeddings.clear()
            if self._results is not None:
                self._results.clear()

    def stats_dict(self) -> dict[str, float]:
        """Counter snapshot (hits/misses/evictions/hit_rate) for benches."""
        return self.stats.as_dict()
