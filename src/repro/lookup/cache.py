"""LRU query cache for the serving path (embeddings and, optionally, results).

Real entity-lookup traffic is heavily skewed — a handful of popular
surface forms ("usa", "germany", "google") dominate the stream — so an
LRU over *normalized* query strings converts the embedding tower's matmul
(and optionally the whole k-NN search) into a dict hit for the head of the
distribution.  Hit/miss/eviction counters are first-class so the serving
benchmarks can plot hit-rate curves against cache capacity.

Keys are normalized by the cache itself through the shared
:func:`repro.lookup.normalize` helper (the same function the exact-hit
:class:`~repro.lookup.router.LabelHashTable` keys on), so "Germany " and
"germany" share an entry and a cache key can never diverge from an
exact-hit key.  Normalization is idempotent, so callers that pre-normalize
(the serving engine does, to normalize once per batch) pay only a cheap
re-fold.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.lookup.normalize import normalize
from repro.utils.contracts import array_contract

__all__ = ["CacheStats", "QueryCache"]


class CacheStats:
    """Mutable hit/miss/eviction counters shared by one cache's stores."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def requests(self) -> int:
        """Total gets served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of gets served from cache (0.0 when never queried)."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for benchmark JSON."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _LRUStore:
    """Bounded ``OrderedDict`` with move-to-end on hit, shared counters."""

    def __init__(self, capacity: int, stats: CacheStats) -> None:
        self.capacity = capacity
        self.stats = stats
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            # Counter updates run under the owning QueryCache._lock —
            # every public caller takes it before reaching the store.
            self.stats.misses += 1  # repro: noqa[REP701] guarded by QueryCache._lock
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1  # repro: noqa[REP701] guarded by QueryCache._lock
        return entry

    def put(self, key: Any, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1  # repro: noqa[REP701] guarded by QueryCache._lock

    def clear(self) -> None:
        self._entries.clear()


class QueryCache:
    """LRU cache keyed by normalized query strings.

    Two stores share one capacity budget *each* and one counter block:

    - the **embedding store** maps a query to its embedding vector,
      short-circuiting the model's forward pass;
    - the optional **result store** maps ``(query, k)`` to the final
      candidate list, short-circuiting the index scan as well.  Result
      keys carry a *generation* counter: :meth:`bump_generation` (called
      by the serving engine after every index mutation) makes every
      previously stored result unreachable in O(1), so a cached hit can
      never resurrect a removed entity; stale-generation entries age out
      of the LRU naturally.  The embedding store survives mutations — an
      embedding depends only on the model, not on the entity set.

    All methods are thread-safe; the serving engine calls into one cache
    from its micro-batch flush path while shard searches run on the pool.

    Parameters
    ----------
    capacity:
        Max entries per store (must be positive).
    cache_results:
        Also cache final candidate lists keyed by ``(query, k)``.
    """

    #: The one normalization function cache keys pass through — shared
    #: with the exact/label-hash tier via :mod:`repro.lookup.normalize`.
    _normalize = staticmethod(normalize)

    def __init__(self, capacity: int, cache_results: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._embeddings = _LRUStore(capacity, self.stats)
        self._results = _LRUStore(capacity, self.stats) if cache_results else None
        self._generation = 0

    @property
    def caches_results(self) -> bool:
        """Whether the result store is enabled."""
        return self._results is not None

    @property
    def generation(self) -> int:
        """The result store's current generation (bumped per mutation)."""
        with self._lock:
            return self._generation

    def bump_generation(self) -> None:
        """Invalidate every cached *result* (not embeddings) in O(1).

        Result keys embed the generation, so bumping it strands all
        entries written under older generations; the LRU evicts them as
        fresh traffic arrives.  Call after any index mutation.
        """
        with self._lock:
            self._generation += 1

    # -- embedding store --------------------------------------------------------

    @array_contract("query: str -> any")
    def get_embedding(self, query: str) -> np.ndarray | None:
        """Cached embedding for ``query`` or ``None`` (counts hit/miss).

        The returned array is the cached storage itself, marked
        read-only — mutating callers must copy.
        """
        with self._lock:
            return self._embeddings.get(self._normalize(query))

    @array_contract("query: str, vector: (d,) num::any -> None")
    def put_embedding(self, query: str, vector: np.ndarray) -> None:
        """Store ``query``'s embedding (copied and frozen read-only)."""
        entry = np.array(vector, copy=True)
        entry.flags.writeable = False
        with self._lock:
            self._embeddings.put(self._normalize(query), entry)

    @array_contract("normalized: any, embed_fn: callable -> (n, d) f32::any")
    def get_embeddings(
        self,
        normalized: list[str],
        embed_fn: Callable[[list[str]], np.ndarray],
    ) -> np.ndarray:
        """Memoized batch embedding: probe, embed only the misses, fill.

        ``embed_fn`` receives the miss queries (in input order) and must
        return one vector row per query; it runs *outside* the cache
        lock, so other threads keep hitting the cache while a model
        forward pass is in flight.  This is the shared serving-path
        helper used by the engine and the embedder services (one
        implementation instead of three hand-rolled probe/fill loops).
        """
        vectors = [self.get_embedding(q) for q in normalized]
        miss_positions = [i for i, v in enumerate(vectors) if v is None]
        if miss_positions:
            fresh = embed_fn([normalized[i] for i in miss_positions])
            for row, i in enumerate(miss_positions):
                vectors[i] = fresh[row]
                self.put_embedding(normalized[i], fresh[row])
        return np.stack(vectors)

    # -- result store -----------------------------------------------------------

    def get_result(
        self, query: str, k: int, scope: str | None = None
    ) -> list | None:
        """Cached candidate list for ``(query, k, scope)`` or ``None``.

        ``scope`` isolates result namespaces that answer differently for
        the same query — the serving engine passes the active
        ``type_filter`` so a type-constrained answer can never be served
        to (or poisoned by) an unconstrained lookup.
        """
        if self._results is None:
            return None
        with self._lock:
            cached = self._results.get(
                (self._normalize(query), k, scope, self._generation)
            )
            return list(cached) if cached is not None else None

    def put_result(
        self, query: str, k: int, candidates: list, scope: str | None = None
    ) -> None:
        """Store a candidate list for ``(query, k, scope)`` (no-op when disabled)."""
        if self._results is None:
            return
        with self._lock:
            self._results.put(
                (self._normalize(query), k, scope, self._generation),
                list(candidates),
            )

    def get_results(
        self, normalized: list[str], k: int, scope: str | None = None
    ) -> list[list | None]:
        """Batch :meth:`get_result`: one slot per query, ``None`` on miss.

        When the result store is disabled this is all-``None`` without
        touching the counters, so callers can use it unconditionally.
        """
        if self._results is None:
            return [None] * len(normalized)
        return [self.get_result(q, k, scope) for q in normalized]

    def put_results(
        self,
        normalized: list[str],
        k: int,
        rows: list[list | None],
        scope: str | None = None,
    ) -> None:
        """Batch :meth:`put_result`; ``None`` rows (failed queries) are skipped."""
        if self._results is None:
            return
        for query, row in zip(normalized, rows):
            if row is not None:
                self.put_result(query, k, row, scope)

    # -- maintenance ------------------------------------------------------------

    def __len__(self) -> int:
        """Total live entries across both stores."""
        with self._lock:
            return len(self._embeddings) + (
                len(self._results) if self._results is not None else 0
            )

    def clear(self) -> None:
        """Drop every entry; invalidate after the index changes."""
        with self._lock:
            self._embeddings.clear()
            if self._results is not None:
                self._results.clear()

    def stats_dict(self) -> dict[str, float]:
        """Counter snapshot (hits/misses/evictions/hit_rate) for benches.

        Taken under the cache lock so the four numbers are mutually
        consistent even while other threads are hitting the stores.
        """
        with self._lock:
            return self.stats.as_dict()
