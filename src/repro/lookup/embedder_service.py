"""Lookup service over an arbitrary embedder (the Table VII harness).

Wraps any :class:`repro.embedding.base.Embedder` — word2vec, fastText,
the wordpiece BERT stand-in, the char-LSTM — behind the same index-and-
query pipeline EmbLookup uses, so the embedding algorithm is the only
variable in the comparison.
"""

from __future__ import annotations

from repro.embedding.base import Embedder
from repro.index.flat import FlatIndex
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.text.tokenize import normalize

__all__ = ["EmbedderLookupService"]


class EmbedderLookupService(LookupService):
    """Flat (uncompressed) k-NN lookup over any embedder's vectors."""

    def __init__(self, embedder: Embedder, name: str = "embedder"):
        super().__init__()
        self.embedder = embedder
        self.name = name
        self._index = FlatIndex(embedder.dim)
        self._row_to_entity: list[str] = []

    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        embedder: Embedder | None = None,
        name: str = "embedder",
        **kwargs,
    ) -> "EmbedderLookupService":
        if embedder is None:
            raise ValueError("EmbedderLookupService.build requires an embedder")
        service = cls(embedder, name=name)
        labels = []
        for entity in kg.entities():
            labels.append(normalize(entity.label))
            service._row_to_entity.append(entity.entity_id)
        if labels:
            service._index.add(embedder.embed(labels))
        return service

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        vectors = self.embedder.embed([normalize(q) for q in queries])
        result = self._index.search(vectors, min(k, max(self._index.ntotal, 1)))
        out: list[list[Candidate]] = []
        for row_ids, row_d in zip(result.ids, result.distances):
            candidates = [
                Candidate(self._row_to_entity[int(i)], -float(d))
                for i, d in zip(row_ids, row_d)
                if i >= 0
            ]
            out.append(candidates[:k])
        return out

    def index_bytes(self) -> int:
        return self._index.memory_bytes()
