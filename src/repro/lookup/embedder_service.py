"""Lookup service over an arbitrary embedder (the Table VII harness).

Wraps any :class:`repro.embedding.base.Embedder` — word2vec, fastText,
the wordpiece BERT stand-in, the char-LSTM — behind the same index-and-
query pipeline EmbLookup uses, so the embedding algorithm is the only
variable in the comparison.  An optional :class:`QueryCache` memoizes the
embedding of repeated (normalized) queries.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import Embedder
from repro.index.flat import FlatIndex
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.lookup.cache import QueryCache
from repro.text.tokenize import normalize

__all__ = ["EmbedderLookupService"]


class EmbedderLookupService(LookupService):
    """Flat (uncompressed) k-NN lookup over any embedder's vectors."""

    def __init__(
        self,
        embedder: Embedder,
        name: str = "embedder",
        cache: QueryCache | None = None,
    ):
        super().__init__()
        self.embedder = embedder
        self.name = name
        self.cache = cache
        self._index = FlatIndex(embedder.dim)
        self._row_to_entity: list[str] = []

    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        embedder: Embedder | None = None,
        name: str = "embedder",
        cache_size: int = 0,
        **kwargs,
    ) -> "EmbedderLookupService":
        """Index every entity label of ``kg`` under ``embedder``'s vectors.

        ``cache_size > 0`` enables an LRU embedding cache of that capacity.
        """
        if embedder is None:
            raise ValueError("EmbedderLookupService.build requires an embedder")
        cache = QueryCache(cache_size) if cache_size > 0 else None
        service = cls(embedder, name=name, cache=cache)
        labels = []
        for entity in kg.entities():
            labels.append(normalize(entity.label))
            service._row_to_entity.append(entity.entity_id)
        if labels:
            service._index.add(embedder.embed(labels))
        return service

    def _embed(self, normalized: list[str]) -> np.ndarray:
        """Embed queries, serving repeats from the cache when enabled."""
        if self.cache is None:
            return self.embedder.embed(normalized)
        return self.cache.get_embeddings(normalized, self.embedder.embed)

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        vectors = self._embed([normalize(q) for q in queries])
        # Indexes handle k > ntotal themselves (-1 / inf padded rows);
        # padded entries are filtered below, so no clamping is needed.
        result = self._index.search(vectors, k)
        out: list[list[Candidate]] = []
        for row_ids, row_d in zip(result.ids, result.distances):
            candidates = [
                Candidate(self._row_to_entity[int(i)], -float(d))
                for i, d in zip(row_ids, row_d)
                if i >= 0
            ]
            out.append(candidates)
        return out

    def index_bytes(self) -> int:
        return self._index.memory_bytes()
