"""Lookup services.

:class:`EmbLookupService` adapts the core pipeline to the common
:class:`LookupService` interface; the other services implement the paper's
Table V baselines (FuzzyWuzzy, ElasticSearch-style BM25, LSH, exact match,
q-gram, Levenshtein scan, and simulated Wikidata / SearX remote endpoints).
:class:`QueryCache` adds an LRU over normalized queries for the serving
path (embedding memoization, optional whole-result caching).
:class:`LookupRouter` tiers the services: exact label-hash hits
short-circuit in O(1), short/symbolic strings route to the cheap string
services, and only the remainder pays for the embedding + ANN path; all
tiers key on the one :func:`normalize` helper.
"""

from repro.lookup.base import Candidate, LookupService
from repro.lookup.cache import CacheStats, QueryCache
from repro.lookup.normalize import normalize
from repro.lookup.router import LabelHashTable, LookupRouter, TypeFilterMap
from repro.lookup.embedder_service import EmbedderLookupService
from repro.lookup.emblookup_service import EmbLookupService
from repro.lookup.exact import ExactMatchLookup
from repro.lookup.levenshtein import LevenshteinLookup
from repro.lookup.fuzzy import FuzzyWuzzyLookup
from repro.lookup.qgram import QGramLookup
from repro.lookup.elastic import ElasticLookup
from repro.lookup.lsh_lookup import LSHStringLookup
from repro.lookup.remote import RemoteServiceModel, SimulatedRemoteLookup

__all__ = [
    "CacheStats",
    "Candidate",
    "ElasticLookup",
    "EmbLookupService",
    "EmbedderLookupService",
    "ExactMatchLookup",
    "FuzzyWuzzyLookup",
    "LSHStringLookup",
    "LabelHashTable",
    "LevenshteinLookup",
    "LookupRouter",
    "LookupService",
    "QGramLookup",
    "QueryCache",
    "RemoteServiceModel",
    "SimulatedRemoteLookup",
    "TypeFilterMap",
    "normalize",
]
