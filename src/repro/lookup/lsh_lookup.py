"""String LSH lookup: MinHash over q-gram sets, banded for candidates.

The paper's Table V "LSH" baseline — a locality-sensitive-hashing variant
optimised for edit-distance-like similarity.  MinHash signatures of the
label's trigram set are split into bands; labels colliding with the query
in any band are re-ranked by exact Levenshtein distance.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.text.distance import levenshtein, qgrams
from repro.text.tokenize import normalize
from repro.utils.rng import as_rng

__all__ = ["LSHStringLookup"]

_HASH_PRIME = (1 << 61) - 1


class LSHStringLookup(LookupService):
    name = "lsh"

    def __init__(
        self,
        num_hashes: int = 32,
        bands: int = 8,
        q: int = 3,
        include_aliases: bool = False,
        seed: int | np.random.Generator | None = 0,
    ):
        super().__init__()
        if num_hashes % bands != 0:
            raise ValueError(
                f"num_hashes {num_hashes} must be divisible by bands {bands}"
            )
        self.num_hashes = num_hashes
        self.bands = bands
        self.rows_per_band = num_hashes // bands
        self.q = q
        self.include_aliases = include_aliases
        rng = as_rng(seed)
        self._a = rng.integers(1, _HASH_PRIME, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _HASH_PRIME, size=num_hashes, dtype=np.int64)
        self._buckets: list[dict[int, list[int]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._labels: list[str] = []
        self._entity_ids: list[str] = []

    @classmethod
    def build(
        cls, kg: KnowledgeGraph, include_aliases: bool = False, **kwargs
    ) -> "LSHStringLookup":
        service = cls(include_aliases=include_aliases, **kwargs)
        for entity in kg.entities():
            mentions = entity.mentions if include_aliases else (entity.label,)
            for mention in mentions:
                label = normalize(mention)
                row = len(service._labels)
                service._labels.append(label)
                service._entity_ids.append(entity.entity_id)
                signature = service._minhash(label)
                for band, key in enumerate(service._band_keys(signature)):
                    service._buckets[band][key].append(row)
        return service

    def _minhash(self, label: str) -> np.ndarray:
        grams = qgrams(label, self.q)
        if not grams:
            return np.zeros(self.num_hashes, dtype=np.int64)
        gram_hashes = np.asarray(
            [hash_gram(gram) for gram in set(grams)], dtype=np.int64
        )
        # (num_hashes, n_grams) universal hashing, min over grams.
        mixed = (
            self._a[:, None] * gram_hashes[None, :] + self._b[:, None]
        ) % _HASH_PRIME
        return mixed.min(axis=1)

    def _band_keys(self, signature: np.ndarray) -> list[int]:
        keys = []
        for band in range(self.bands):
            chunk = signature[
                band * self.rows_per_band : (band + 1) * self.rows_per_band
            ]
            keys.append(hash(tuple(int(v) for v in chunk)))
        return keys

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return [self._single(normalize(q), k) for q in queries]

    def _single(self, query: str, k: int) -> list[Candidate]:
        signature = self._minhash(query)
        candidate_rows: set[int] = set()
        for band, key in enumerate(self._band_keys(signature)):
            candidate_rows.update(self._buckets[band].get(key, ()))
        heap: list[tuple[float, int]] = []
        for row in candidate_rows:
            d = levenshtein(query, self._labels[row])
            score = -float(d)
            if len(heap) < k:
                heapq.heappush(heap, (score, row))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, row))
        ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
        out: list[Candidate] = []
        seen: set[str] = set()
        for score, row in ranked:
            entity_id = self._entity_ids[row]
            if entity_id in seen:
                continue
            seen.add(entity_id)
            out.append(Candidate(entity_id, float(score)))
        return out

    def index_bytes(self) -> int:
        bucket_entries = sum(
            len(rows) for table in self._buckets for rows in table.values()
        )
        label_bytes = sum(len(label.encode()) for label in self._labels)
        return bucket_entries * 8 + label_bytes


def hash_gram(gram: str) -> int:
    """Stable 61-bit hash of a q-gram (FNV-1a folded into the prime field)."""
    value = 0xCBF29CE484222325
    for byte in gram.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value % _HASH_PRIME
