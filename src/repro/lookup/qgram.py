"""q-gram lookup: inverted index over character trigrams.

Candidates are gathered from the posting lists of the query's q-grams and
ranked by Jaccard similarity of gram sets — the classical signature-based
approximate string matcher.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.text.distance import qgrams
from repro.text.tokenize import normalize

__all__ = ["QGramLookup"]


class QGramLookup(LookupService):
    name = "qgram"

    def __init__(self, q: int = 3, include_aliases: bool = False):
        super().__init__()
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self.include_aliases = include_aliases
        self._postings: dict[str, list[int]] = defaultdict(list)
        self._gram_sets: list[frozenset[str]] = []
        self._entity_ids: list[str] = []

    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        q: int = 3,
        include_aliases: bool = False,
        **kwargs,
    ) -> "QGramLookup":
        service = cls(q=q, include_aliases=include_aliases)
        for entity in kg.entities():
            mentions = entity.mentions if include_aliases else (entity.label,)
            for mention in mentions:
                label = normalize(mention)
                row = len(service._gram_sets)
                grams = frozenset(qgrams(label, service.q))
                service._gram_sets.append(grams)
                service._entity_ids.append(entity.entity_id)
                for gram in grams:
                    service._postings[gram].append(row)
        return service

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return [self._single(normalize(q), k) for q in queries]

    def _single(self, query: str, k: int) -> list[Candidate]:
        query_grams = set(qgrams(query, self.q))
        if not query_grams:
            return []
        overlap: dict[int, int] = defaultdict(int)
        for gram in query_grams:
            for row in self._postings.get(gram, ()):
                overlap[row] += 1
        heap: list[tuple[float, int]] = []
        for row, shared in overlap.items():
            union = len(query_grams) + len(self._gram_sets[row]) - shared
            score = shared / union if union else 1.0
            if len(heap) < k:
                heapq.heappush(heap, (score, row))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, row))
        ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
        out: list[Candidate] = []
        seen: set[str] = set()
        for score, row in ranked:
            entity_id = self._entity_ids[row]
            if entity_id in seen:
                continue
            seen.add(entity_id)
            out.append(Candidate(entity_id, float(score)))
        return out

    def index_bytes(self) -> int:
        return sum(
            len(gram.encode()) + 8 * len(rows)
            for gram, rows in self._postings.items()
        )
