"""FuzzyWuzzy-style lookup: normalised Levenshtein ratio over a full scan.

Reimplements the FuzzyWuzzy package's behaviour: ``ratio`` (normalised edit
similarity) blended with ``token_sort_ratio`` (ratio after sorting word
tokens) so that token reorderings ("gates bill") still match.
"""

from __future__ import annotations

import heapq

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.text.distance import levenshtein_ratio
from repro.text.tokenize import normalize, word_tokens

__all__ = ["FuzzyWuzzyLookup"]


class FuzzyWuzzyLookup(LookupService):
    name = "fuzzywuzzy"

    def __init__(self, include_aliases: bool = False):
        super().__init__()
        self.include_aliases = include_aliases
        self._labels: list[str] = []
        self._sorted_labels: list[str] = []
        self._entity_ids: list[str] = []

    @classmethod
    def build(
        cls, kg: KnowledgeGraph, include_aliases: bool = False, **kwargs
    ) -> "FuzzyWuzzyLookup":
        service = cls(include_aliases=include_aliases)
        for entity in kg.entities():
            mentions = entity.mentions if include_aliases else (entity.label,)
            for mention in mentions:
                label = normalize(mention)
                service._labels.append(label)
                service._sorted_labels.append(" ".join(sorted(word_tokens(label))))
                service._entity_ids.append(entity.entity_id)
        return service

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return [self._single(normalize(q), k) for q in queries]

    def _single(self, query: str, k: int) -> list[Candidate]:
        sorted_query = " ".join(sorted(word_tokens(query)))
        heap: list[tuple[float, int]] = []
        for row, label in enumerate(self._labels):
            score = max(
                levenshtein_ratio(query, label),
                levenshtein_ratio(sorted_query, self._sorted_labels[row]),
            )
            if len(heap) < k:
                heapq.heappush(heap, (score, row))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, row))
        ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
        out: list[Candidate] = []
        seen: set[str] = set()
        for score, row in ranked:
            entity_id = self._entity_ids[row]
            if entity_id in seen:
                continue
            seen.add(entity_id)
            out.append(Candidate(entity_id, float(score)))
        return out

    def index_bytes(self) -> int:
        return sum(len(label.encode()) + 16 for label in self._labels)
