"""The one query-normalization function shared by every lookup tier.

Cache keys (:class:`repro.lookup.cache.QueryCache`), exact-hit keys
(:class:`repro.lookup.exact.ExactMatchLookup`,
:class:`repro.lookup.router.LabelHashTable`) and the serving engine's
result memoization all key on the *normalized* surface form.  Before this
module each call site imported :func:`repro.text.tokenize.normalize`
separately, which worked only by convention: nothing stopped one tier
from folding case differently and silently splitting "Germany " and
"germany" into different cache/exact entries.  Re-exporting the text
normalizer here makes the contract structural — the lookup layer has
exactly one normalization symbol, and the property suite asserts the
cache and the label-hash table agree on it.
"""

from __future__ import annotations

from repro.text.tokenize import normalize

__all__ = ["normalize"]
