"""Common lookup-service interface (paper Section II, "Lookup Operation").

``lookup(q, k)`` returns up to ``k`` candidate entities ordered by
decreasing relevance ``score``.  Every service tracks the wall-clock time it
spends answering queries in ``query_time`` plus any *simulated* latency
(remote services) in ``simulated_latency`` — the evaluation harness sums
both, matching the paper's instrumentation of each system's lookup calls.
"""

from __future__ import annotations

from typing import NamedTuple
from collections.abc import Sequence

from repro.kg.graph import KnowledgeGraph
from repro.utils.timing import Stopwatch

__all__ = ["Candidate", "LookupService"]


class Candidate(NamedTuple):
    """A candidate entity with a relevance score (higher is better)."""

    entity_id: str
    score: float


class LookupService:
    """Base class for lookup services.

    Subclasses implement :meth:`_lookup_batch`; the public methods add
    timing instrumentation and argument validation.
    """

    #: Human-readable service name used in benchmark tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.query_time = Stopwatch()
        self.simulated_latency: float = 0.0

    # -- public API ------------------------------------------------------------

    def lookup(
        self, query: str, k: int = 10, type_filter: str | None = None
    ) -> list[Candidate]:
        """Top-``k`` candidates for one query."""
        return self.lookup_batch([query], k, type_filter=type_filter)[0]

    def lookup_batch(
        self,
        queries: Sequence[str],
        k: int = 10,
        type_filter: str | None = None,
    ) -> list[list[Candidate]]:
        """Bulk lookup, one candidate list per query (instrumented).

        ``type_filter`` restricts candidates to entities of the given
        type id (subtypes included); only services whose
        :attr:`supports_type_filter` is True implement it — the router
        and the serving engine — and others raise ``NotImplementedError``
        rather than silently returning unfiltered answers.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not queries:
            return []
        with self.query_time:
            if type_filter is None:
                return self._lookup_batch(list(queries), k)
            return self._lookup_batch_typed(list(queries), k, type_filter)

    @property
    def supports_type_filter(self) -> bool:
        """Whether this service implements ``type_filter`` lookups."""
        return (
            type(self)._lookup_batch_typed
            is not LookupService._lookup_batch_typed
        )

    @property
    def total_lookup_seconds(self) -> float:
        """Measured wall-clock plus simulated (remote) latency."""
        return self.query_time.total + self.simulated_latency

    def reset_timers(self) -> None:
        """Zero the measured query time and simulated latency."""
        self.query_time.reset()
        self.simulated_latency = 0.0

    def index_bytes(self) -> int:
        """Approximate index storage (0 when a service keeps no index)."""
        return 0

    # -- subclass hooks ----------------------------------------------------------

    def _lookup_batch(
        self, queries: list[str], k: int
    ) -> list[list[Candidate]]:
        raise NotImplementedError

    def _lookup_batch_typed(
        self, queries: list[str], k: int, type_filter: str
    ) -> list[list[Candidate]]:
        """Type-constrained variant; override to support ``type_filter``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support type_filter"
        )

    @classmethod
    def build(cls, kg: KnowledgeGraph, **kwargs) -> "LookupService":
        """Construct and index a service over ``kg``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
