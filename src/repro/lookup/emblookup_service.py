"""Adapter exposing the core EmbLookup pipeline as a ``LookupService``.

Also the home of the GPU *device model*: FAISS on a V100 accelerates the
distance scan; we run on CPU and optionally divide the measured search time
by a calibrated throughput multiplier when reporting GPU-mode numbers (the
paper's GPU columns are 2-4x its CPU columns).  GPU rows produced this way
are flagged "modelled" by the harness.
"""

from __future__ import annotations

from repro.core.config import EmbLookupConfig
from repro.core.pipeline import EmbLookup
from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.lookup.cache import QueryCache
from repro.text.tokenize import normalize

__all__ = ["EmbLookupService", "GPU_SPEEDUP_MODEL"]

#: Modelled V100-vs-CPU throughput multiplier for the batched embedding +
#: index scan (calibrated to the paper's GPU/CPU column ratios, ~3-4x).
GPU_SPEEDUP_MODEL = 3.5


class EmbLookupService(LookupService):
    name = "emblookup"

    def __init__(
        self,
        pipeline: EmbLookup,
        gpu_mode: bool = False,
        cache: QueryCache | None = None,
    ):
        super().__init__()
        if pipeline.model is None or pipeline.index is None:
            raise ValueError("EmbLookupService requires a fitted pipeline")
        self.pipeline = pipeline
        self.gpu_mode = gpu_mode
        if cache is None and pipeline.config.query_cache_size > 0:
            # The config flag opts the service into result caching: the
            # index is static after fit(), so cached candidate lists stay
            # valid until the pipeline is re-indexed.
            cache = QueryCache(
                pipeline.config.query_cache_size, cache_results=True
            )
        self.cache = cache
        if pipeline.config.compression == "none":
            self.name = "emblookup_nc"

    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        config: EmbLookupConfig | None = None,
        gpu_mode: bool = False,
        **kwargs,
    ) -> "EmbLookupService":
        pipeline = EmbLookup(config)
        pipeline.fit(kg)
        return cls(pipeline, gpu_mode=gpu_mode)

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        if self.cache is None or not self.cache.caches_results:
            return self._lookup_uncached(queries, k)
        normalized = [normalize(q) for q in queries]
        out = self.cache.get_results(normalized, k)
        miss_positions = [qi for qi, row in enumerate(out) if row is None]
        if miss_positions:
            fresh = self._lookup_uncached(
                [queries[i] for i in miss_positions], k
            )
            for row, qi in zip(fresh, miss_positions):
                out[qi] = row
            self.cache.put_results(
                [normalized[qi] for qi in miss_positions], k, fresh
            )
        return [row if row is not None else [] for row in out]

    def _lookup_uncached(
        self, queries: list[str], k: int
    ) -> list[list[Candidate]]:
        results = self.pipeline.lookup_batch(queries, k)
        # Embedding distance -> relevance score (higher is better).
        return [
            [Candidate(r.entity_id, -r.distance) for r in row] for row in results
        ]

    @property
    def total_lookup_seconds(self) -> float:
        measured = self.query_time.total + self.simulated_latency
        if self.gpu_mode:
            return measured / GPU_SPEEDUP_MODEL
        return measured

    def index_bytes(self) -> int:
        assert self.pipeline.index is not None
        return self.pipeline.index.memory_bytes()
