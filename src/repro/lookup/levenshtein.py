"""Levenshtein scan lookup: exact edit-distance ranking over all labels.

The "optimized Levenshtein module" baseline: a full scan with length-bound
pruning and an early-exit distance cut-off, returning the ``k`` labels with
the smallest edit distance.
"""

from __future__ import annotations

import heapq

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.text.distance import levenshtein
from repro.text.tokenize import normalize

__all__ = ["LevenshteinLookup"]


class LevenshteinLookup(LookupService):
    name = "levenshtein"

    def __init__(self, include_aliases: bool = False):
        super().__init__()
        self.include_aliases = include_aliases
        self._labels: list[str] = []
        self._entity_ids: list[str] = []

    @classmethod
    def build(
        cls, kg: KnowledgeGraph, include_aliases: bool = False, **kwargs
    ) -> "LevenshteinLookup":
        service = cls(include_aliases=include_aliases)
        for entity in kg.entities():
            mentions = entity.mentions if include_aliases else (entity.label,)
            for mention in mentions:
                service._labels.append(normalize(mention))
                service._entity_ids.append(entity.entity_id)
        return service

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        return [self._single(normalize(q), k) for q in queries]

    def _single(self, query: str, k: int) -> list[Candidate]:
        # Max-heap of size k on distance (store negated distance).
        heap: list[tuple[float, int]] = []
        worst = None
        for row, label in enumerate(self._labels):
            bound = worst if worst is not None else None
            d = levenshtein(query, label, max_distance=bound)
            if len(heap) < k:
                heapq.heappush(heap, (-d, row))
                if len(heap) == k:
                    worst = int(-heap[0][0])
            elif d < -heap[0][0]:
                heapq.heapreplace(heap, (-d, row))
                worst = int(-heap[0][0])
        ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
        out: list[Candidate] = []
        seen: set[str] = set()
        for neg_d, row in ranked:
            entity_id = self._entity_ids[row]
            if entity_id in seen:
                continue
            seen.add(entity_id)
            out.append(Candidate(entity_id, -float(-neg_d)))
        return out

    def index_bytes(self) -> int:
        return sum(len(label.encode()) + 16 for label in self._labels)
