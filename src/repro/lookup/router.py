"""Tiered lookup router: exact hash hits -> fuzzy strings -> ANN fallback.

The paper serves *every* lookup through the embedding model plus ANN
index, but production annotation traffic (bbw, JenTab, DoSeR) is a
heavy-tailed mix where many queries are exact label hits or short
symbolic strings for which the dual-tower forward pass is pure waste.
:class:`LookupRouter` dispatches each query to the cheapest tier that can
answer it, the shape of KAZU's SapBERT linking step (``ignore_high_conf``
plus ``min_string_length_to_trigger`` per entity class) and of NSEEN's
cheap-similarity front tier:

1. **exact** — an O(1) probe of :class:`LabelHashTable`, a hash of
   *normalized* labels/aliases sharing :func:`repro.lookup.normalize`
   with the query cache, so a cache key and an exact-hit key can never
   diverge.  Hits short-circuit without touching the embedding model.
2. **fuzzy** — queries too short (``min_string_length_to_trigger``) or
   insufficiently alphabetic (``min_alpha_ratio``) for the character
   embedding tower route to a cheap string service (q-gram Jaccard or
   bounded Levenshtein).
3. **ann** — everything else falls through to the embedding + vector
   index path (any :class:`~repro.lookup.base.LookupService`, typically
   :class:`~repro.lookup.emblookup_service.EmbLookupService` or the
   serving :class:`~repro.serving.engine.LookupEngine`).

Type-constrained lookups (``type_filter=``) filter the exact tier
through :class:`TypeFilterMap` and delegate typed ANN search to tiers
that support it (the serving engine scans only the matching partitions of
a :class:`~repro.index.partitioned.TypePartitionedIndex`).

Every tier keeps a :class:`~repro.utils.timing.Stopwatch` and a routing
counter; :meth:`LookupRouter.router_stats` snapshots the counters
atomically under one lock (the PR 7 discipline), and the serving engine
merges them into ``serving_stats``.
"""

from __future__ import annotations

import threading

from repro.kg.graph import KnowledgeGraph
from repro.index.partitioned import DEFAULT_PARTITION
from repro.lookup.base import Candidate, LookupService
from repro.lookup.normalize import normalize
from repro.utils.timing import Stopwatch

__all__ = ["LabelHashTable", "LookupRouter", "TypeFilterMap"]

#: Tier names in dispatch order.
_TIERS = ("exact", "fuzzy", "ann")

#: Over-fetch factor when a type filter must be applied by post-filtering
#: an unfiltered tier's answers (tiers without native type support).
_TYPE_OVERFETCH = 4


class LabelHashTable:
    """Hash of normalized surface forms -> entity ids (the exact tier).

    The keys pass through :func:`repro.lookup.normalize` — the same
    helper the query cache uses — so "Germany " and "germany" are one
    entry.  Concurrency follows the single-writer copy-on-write
    discipline of the online-mutation path: the id tuples are immutable
    (every :meth:`add` / :meth:`drop_entity` installs a *new* tuple with
    one GIL-atomic dict assignment) and mutations are serialized by the
    serving engine's mutation lock, so concurrent readers see either the
    old tuple or the new one without taking a lock.
    """

    def __init__(self, include_aliases: bool = True) -> None:
        self.include_aliases = include_aliases
        self._entries: dict[str, tuple[str, ...]] = {}
        self._bytes = 0

    @classmethod
    def build(
        cls, kg: KnowledgeGraph, include_aliases: bool = True
    ) -> "LabelHashTable":
        """Index every entity label (and alias, by default) of ``kg``."""
        table = cls(include_aliases=include_aliases)
        for entity in kg.entities():
            mentions = (
                entity.mentions if include_aliases else (entity.label,)
            )
            for mention in mentions:
                table.add(mention, entity.entity_id)
        return table

    def add(self, mention: str, entity_id: str) -> None:
        """Register one surface form (normalized internally)."""
        key = normalize(mention)
        if not key:
            return
        existing = self._entries.get(key, ())
        if entity_id in existing:
            return
        self._entries[key] = existing + (entity_id,)
        self._bytes += len(key.encode()) + len(entity_id.encode()) + 16

    def drop_entity(self, entity_id: str) -> int:
        """Remove ``entity_id`` from every surface form it is indexed under.

        Returns the number of entries it was removed from.  O(table)
        scan — acceptable because mutations are rare next to lookups and
        the scan happens on the ingestion path, never on a serving
        thread.  Copy-on-write: affected keys get a fresh tuple (or are
        deleted when the entity was their only answer), so concurrent
        readers are never exposed to a half-edited entry.
        """
        dropped = 0
        for key, ids in list(self._entries.items()):
            if entity_id not in ids:
                continue
            remaining = tuple(e for e in ids if e != entity_id)
            if remaining:
                self._entries[key] = remaining
            else:
                del self._entries[key]
            # Mirror of the per-add accounting in :meth:`add`.
            self._bytes -= len(key.encode()) + len(entity_id.encode()) + 16
            dropped += 1
        return dropped

    def get(self, normalized: str) -> tuple[str, ...]:
        """Entity ids whose label/alias normalizes to ``normalized``."""
        return self._entries.get(normalized, ())

    def lookup(self, query: str) -> tuple[str, ...]:
        """Convenience probe that normalizes ``query`` first."""
        return self.get(normalize(query))

    def __len__(self) -> int:
        """Distinct normalized surface forms indexed."""
        return len(self._entries)

    def index_bytes(self) -> int:
        """Approximate storage of keys plus id tuples."""
        return self._bytes


class TypeFilterMap:
    """Per-type membership sets and partition lists for ``type_filter``.

    For every type id the map precomputes (a) the *allowed* entity-id
    set — entities declaring the type or any of its subtypes, matching
    :meth:`KnowledgeGraph.entities_of_type` with ``transitive=True`` —
    and (b) the partition keys (primary types) whose rows can contain an
    allowed entity, which is what a
    :class:`~repro.index.partitioned.TypePartitionedIndex` scan needs.

    Both structures follow the single-writer copy-on-write discipline of
    the online-mutation path: values are immutable (frozensets and
    tuples) and :meth:`add_entity` / :meth:`remove_entity` — serialized
    by the serving engine's mutation lock — install *new* values with
    GIL-atomic dict assignments, so lock-free concurrent readers see
    either the old membership or the new one.
    """

    def __init__(
        self,
        allowed: dict[str, frozenset[str]],
        partitions: dict[str, tuple[str, ...]],
    ) -> None:
        self._allowed = dict(allowed)
        self._partitions = dict(partitions)

    @classmethod
    def from_kg(cls, kg: KnowledgeGraph) -> "TypeFilterMap":
        """Precompute membership and partitions for every type in ``kg``."""
        primary: dict[str, str] = {
            e.entity_id: e.primary_type or DEFAULT_PARTITION
            for e in kg.entities()
        }
        allowed: dict[str, frozenset[str]] = {}
        partitions: dict[str, tuple[str, ...]] = {}
        for entity_type in kg.types():
            tid = entity_type.type_id
            members = kg.entities_of_type(tid, transitive=True)
            allowed[tid] = frozenset(members)
            keys: list[str] = []
            for eid in members:
                key = primary[eid]
                if key not in keys:
                    keys.append(key)
            partitions[tid] = tuple(keys)
        return cls(allowed, partitions)

    def add_entity(
        self,
        entity_id: str,
        type_ids: tuple[str, ...] | list[str],
        primary_type: str | None,
    ) -> None:
        """Admit ``entity_id`` under every type in ``type_ids``.

        ``type_ids`` is taken as the entity's full (already transitive)
        type set — change-feed mutations carry explicit types rather
        than re-deriving the hierarchy.  Unknown type ids create a new
        filter entry, so a type introduced by the feed is immediately
        filterable.
        """
        key = primary_type or DEFAULT_PARTITION
        for tid in type_ids:
            self._allowed[tid] = self._allowed.get(tid, frozenset()) | {
                entity_id
            }
            keys = self._partitions.get(tid, ())
            if key not in keys:
                self._partitions[tid] = keys + (key,)

    def remove_entity(self, entity_id: str) -> None:
        """Retract ``entity_id`` from every type membership set.

        Partition lists are left untouched: scanning one partition too
        many is correctness-neutral (the membership filter still rejects
        the entity) and keeping them monotone avoids recomputing primary
        types for the surviving members.
        """
        for tid, members in list(self._allowed.items()):
            if entity_id in members:
                self._allowed[tid] = members - {entity_id}

    def known(self, type_id: str) -> bool:
        """Whether ``type_id`` exists in the source KG."""
        return type_id in self._allowed

    def allowed(self, type_id: str) -> frozenset[str]:
        """Entity ids admissible under ``type_filter=type_id``."""
        try:
            return self._allowed[type_id]
        except KeyError:
            raise KeyError(f"unknown type id {type_id!r}") from None

    def partitions_for(self, type_id: str) -> tuple[str, ...]:
        """Partition keys whose rows can hold an allowed entity."""
        if type_id not in self._allowed:
            raise KeyError(f"unknown type id {type_id!r}")
        return self._partitions.get(type_id, ())


def alpha_ratio(text: str) -> float:
    """Fraction of alphabetic characters among non-space characters.

    Low-ratio strings ("B-52", "740.22", "#1") are the symbolic surface
    forms the character embedding tower handles worst; the router sends
    them to the fuzzy tier instead.  Empty/whitespace-only strings score
    0.0 (maximally non-alphabetic).
    """
    meat = [c for c in text if not c.isspace()]
    if not meat:
        return 0.0
    return sum(c.isalpha() for c in meat) / len(meat)


class LookupRouter(LookupService):
    """Tiered dispatcher over exact / fuzzy / ANN lookup services.

    Parameters
    ----------
    label_table:
        The exact tier's :class:`LabelHashTable`.
    ann:
        Fallback service for embedding-worthy queries.  May be ``None``
        when the router is embedded *inside* the serving engine (the
        engine itself is the ANN tier and only calls
        :meth:`serve_local`); a standalone router with ``ann=None``
        raises on the first query that needs the tier.
    fuzzy:
        Service for short / low-alphabetic queries, or ``None`` to send
        them to the ANN tier too.
    min_string_length_to_trigger:
        Normalized queries shorter than this never reach the embedding
        model (KAZU's knob of the same name).
    min_alpha_ratio:
        Queries whose :func:`alpha_ratio` is below this are routed to
        the fuzzy tier regardless of length.
    type_map:
        :class:`TypeFilterMap` enabling ``type_filter=`` lookups.
    """

    name = "router"

    def __init__(
        self,
        label_table: LabelHashTable,
        ann: LookupService | None = None,
        fuzzy: LookupService | None = None,
        min_string_length_to_trigger: int = 4,
        min_alpha_ratio: float = 0.5,
        type_map: TypeFilterMap | None = None,
    ) -> None:
        super().__init__()
        if min_string_length_to_trigger < 0:
            raise ValueError(
                "min_string_length_to_trigger must be >= 0, got "
                f"{min_string_length_to_trigger}"
            )
        if not 0.0 <= min_alpha_ratio <= 1.0:
            raise ValueError(
                f"min_alpha_ratio must be in [0, 1], got {min_alpha_ratio}"
            )
        self.label_table = label_table
        self.ann = ann
        self.fuzzy = fuzzy
        self.min_string_length_to_trigger = min_string_length_to_trigger
        self.min_alpha_ratio = min_alpha_ratio
        self.type_map = type_map
        self.tier_times: dict[str, Stopwatch] = {
            tier: Stopwatch() for tier in _TIERS
        }
        self._stats_lock = threading.Lock()
        self._exact_hits = 0
        self._fuzzy_routed = 0
        self._ann_routed = 0

    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        ann: LookupService | None = None,
        fuzzy: LookupService | str | None = "qgram",
        include_aliases: bool = True,
        **kwargs,
    ) -> "LookupRouter":
        """Build the exact tier and type map from ``kg``.

        ``fuzzy`` may be a ready service, the string ``"qgram"`` /
        ``"levenshtein"`` to build one over ``kg``, or ``None`` to
        disable the tier.
        """
        if isinstance(fuzzy, str):
            if fuzzy == "qgram":
                from repro.lookup.qgram import QGramLookup

                fuzzy = QGramLookup.build(kg, include_aliases=include_aliases)
            elif fuzzy == "levenshtein":
                from repro.lookup.levenshtein import LevenshteinLookup

                fuzzy = LevenshteinLookup.build(
                    kg, include_aliases=include_aliases
                )
            else:
                raise ValueError(
                    "fuzzy must be a LookupService, 'qgram', 'levenshtein'"
                    f" or None, got {fuzzy!r}"
                )
        return cls(
            LabelHashTable.build(kg, include_aliases=include_aliases),
            ann=ann,
            fuzzy=fuzzy,
            type_map=TypeFilterMap.from_kg(kg),
            **kwargs,
        )

    # -- tier classification -----------------------------------------------------

    def wants_fuzzy(self, normalized: str) -> bool:
        """Whether a (non-exact-hit) query belongs to the fuzzy tier."""
        if self.fuzzy is None:
            return False
        return (
            len(normalized) < self.min_string_length_to_trigger
            or alpha_ratio(normalized) < self.min_alpha_ratio
        )

    # -- local tiers (shared by standalone and engine-embedded use) --------------

    def serve_local(
        self,
        normalized: list[str],
        k: int,
        type_filter: str | None = None,
    ) -> list[list[Candidate] | None]:
        """Answer what the exact/fuzzy tiers can; ``None`` marks ANN work.

        ``normalized`` must already be passed through
        :func:`repro.lookup.normalize` (both the router's public path and
        the serving engine do).  Slots left as ``None`` are the caller's
        to serve through its ANN path; they are counted as ``ann_routed``
        here, so the counters reflect routing decisions regardless of
        which component executes the fallback.
        """
        allowed: frozenset[str] | None = None
        if type_filter is not None:
            if self.type_map is None:
                raise RuntimeError(
                    "router has no TypeFilterMap; build() it from a KG to "
                    "use type_filter"
                )
            allowed = self.type_map.allowed(type_filter)
        out: list[list[Candidate] | None] = [None] * len(normalized)
        exact_hits = 0
        with self.tier_times["exact"]:
            for qi, query in enumerate(normalized):
                hits = self.label_table.get(query)
                if allowed is not None:
                    hits = tuple(e for e in hits if e in allowed)
                if hits:
                    out[qi] = [Candidate(e, 1.0) for e in hits[:k]]
                    exact_hits += 1
        fuzzy_positions = [
            qi
            for qi, row in enumerate(out)
            if row is None and self.wants_fuzzy(normalized[qi])
        ]
        if fuzzy_positions:
            with self.tier_times["fuzzy"]:
                fetch = k if allowed is None else k * _TYPE_OVERFETCH
                rows = self.fuzzy.lookup_batch(
                    [normalized[qi] for qi in fuzzy_positions], fetch
                )
                for qi, row in zip(fuzzy_positions, rows):
                    if allowed is not None:
                        row = [c for c in row if c.entity_id in allowed][:k]
                    out[qi] = row
        ann_routed = sum(1 for row in out if row is None)
        with self._stats_lock:
            self._exact_hits += exact_hits
            self._fuzzy_routed += len(fuzzy_positions)
            self._ann_routed += ann_routed
        return out

    # -- LookupService hooks -----------------------------------------------------

    def _lookup_batch(
        self, queries: list[str], k: int
    ) -> list[list[Candidate]]:
        return self._dispatch(queries, k, None)

    def _lookup_batch_typed(
        self, queries: list[str], k: int, type_filter: str
    ) -> list[list[Candidate]]:
        return self._dispatch(queries, k, type_filter)

    def _dispatch(
        self, queries: list[str], k: int, type_filter: str | None
    ) -> list[list[Candidate]]:
        normalized = [normalize(q) for q in queries]
        out = self.serve_local(normalized, k, type_filter)
        ann_positions = [qi for qi, row in enumerate(out) if row is None]
        if ann_positions:
            if self.ann is None:
                raise RuntimeError(
                    "router has no ANN tier: pass ann= or embed the router "
                    "in a LookupEngine"
                )
            sub = [queries[qi] for qi in ann_positions]
            with self.tier_times["ann"]:
                if type_filter is None:
                    rows = self.ann.lookup_batch(sub, k)
                elif self.ann.supports_type_filter:
                    rows = self.ann.lookup_batch(
                        sub, k, type_filter=type_filter
                    )
                else:
                    allowed = self.type_map.allowed(type_filter)
                    raw = self.ann.lookup_batch(sub, k * _TYPE_OVERFETCH)
                    rows = [
                        [c for c in row if c.entity_id in allowed][:k]
                        for row in raw
                    ]
            for qi, row in zip(ann_positions, rows):
                out[qi] = row
        return [row if row is not None else [] for row in out]

    # -- introspection -----------------------------------------------------------

    def tier_seconds(self) -> dict[str, float]:
        """Cumulative seconds per tier (the ann entry covers only the
        standalone fallback; an embedding engine times its own stages)."""
        return {tier: watch.total for tier, watch in self.tier_times.items()}

    def router_stats(self) -> dict[str, int]:
        """Routing counters, copied in one lock hold (atomic snapshot)."""
        with self._stats_lock:
            return {
                "exact_hits": self._exact_hits,
                "fuzzy_routed": self._fuzzy_routed,
                "ann_routed": self._ann_routed,
            }

    def reset_timers(self) -> None:
        """Zero the whole-call timer and every tier stopwatch."""
        super().reset_timers()
        for watch in self.tier_times.values():
            watch.reset()

    def index_bytes(self) -> int:
        """Label table plus constituent tier indexes."""
        total = self.label_table.index_bytes()
        for tier in (self.fuzzy, self.ann):
            if tier is not None:
                total += tier.index_bytes()
        return total
