"""Exact-match lookup: a hash index over normalised labels.

The fastest and most brittle baseline: any edit to the query misses.  By
default only entity labels are indexed (matching the paper's "only entity
mentions" local-index setting); ``include_aliases=True`` reproduces the
larger alias-aware index discussed in Section IV-D.
"""

from __future__ import annotations

from collections import defaultdict

from repro.kg.graph import KnowledgeGraph
from repro.lookup.base import Candidate, LookupService
from repro.lookup.normalize import normalize

__all__ = ["ExactMatchLookup"]


class ExactMatchLookup(LookupService):
    name = "exact_match"

    def __init__(self, include_aliases: bool = False):
        super().__init__()
        self.include_aliases = include_aliases
        self._index: dict[str, list[str]] = defaultdict(list)
        self._bytes = 0

    @classmethod
    def build(
        cls, kg: KnowledgeGraph, include_aliases: bool = False, **kwargs
    ) -> "ExactMatchLookup":
        service = cls(include_aliases=include_aliases)
        for entity in kg.entities():
            mentions = entity.mentions if include_aliases else (entity.label,)
            for mention in mentions:
                key = normalize(mention)
                service._index[key].append(entity.entity_id)
                service._bytes += len(key.encode()) + 16
        return service

    def _lookup_batch(self, queries: list[str], k: int) -> list[list[Candidate]]:
        out: list[list[Candidate]] = []
        for query in queries:
            matches = self._index.get(normalize(query), ())
            out.append([Candidate(eid, 1.0) for eid in matches[:k]])
        return out

    def index_bytes(self) -> int:
        return self._bytes
