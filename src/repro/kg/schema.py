"""KG schema: the quadruplet <E, T, P, F> of the paper's Section II."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Entity", "EntityType", "Fact", "Property"]


@dataclass(frozen=True)
class EntityType:
    """A type (class) such as ``country`` or ``person``.

    ``parent_id`` forms the type hierarchy used by Column Type Annotation
    (CTA picks the *most specific* common type).
    """

    type_id: str
    label: str
    parent_id: str | None = None


@dataclass(frozen=True)
class Property:
    """A relation such as ``capital_of`` or ``employer``."""

    property_id: str
    label: str


@dataclass(frozen=True)
class Entity:
    """A KG entity with its label and alias mentions.

    ``aliases`` corresponds to values of ``skos:altLabel`` /
    ``dbo:wikiPageWikiLinkText`` — the semantic-similarity training signal.
    """

    entity_id: str
    label: str
    aliases: tuple[str, ...] = ()
    type_ids: tuple[str, ...] = ()
    description: str = ""

    @property
    def mentions(self) -> tuple[str, ...]:
        """Label plus aliases — every known surface form."""
        return (self.label, *self.aliases)

    @property
    def primary_type(self) -> str | None:
        """First declared type id, or ``None`` for untyped entities.

        This is the partitioning key used by the type-partitioned serving
        index: every entity lives in exactly one partition even when it
        declares several types (membership checks still consult the full
        ``type_ids`` tuple).
        """
        return self.type_ids[0] if self.type_ids else None

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")
        if not self.label:
            raise ValueError(f"entity {self.entity_id} has an empty label")


@dataclass(frozen=True)
class Fact:
    """A triple <subject, property, object>.

    ``object_id`` holds an entity id when the object is an entity;
    ``literal`` holds the value otherwise.  Exactly one of them is set.
    """

    subject_id: str
    property_id: str
    object_id: str | None = None
    literal: str | None = None

    def __post_init__(self) -> None:
        if (self.object_id is None) == (self.literal is None):
            raise ValueError(
                "exactly one of object_id / literal must be set "
                f"(fact on {self.subject_id} / {self.property_id})"
            )

    @property
    def is_entity_fact(self) -> bool:
        return self.object_id is not None
