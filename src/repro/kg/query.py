"""Triple-pattern queries over a knowledge graph (mini-SPARQL).

The paper's remote baselines include the SPARQL-based Wikidata Query
Service; this module provides the local analogue: conjunctive
triple-pattern matching with variable joins.

A pattern is ``(subject, property, object)`` where each position is a
constant (entity id / property id / literal) or a variable — a string
starting with ``?``.  :func:`query` returns one binding dict per solution.

>>> # Who is a capital of what?   (doctest-style sketch)
>>> # query(kg, [("?city", "capital_of", "?country")])
>>> # [{"?city": "Q2", "?country": "Q1"}, ...]
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.kg.graph import KnowledgeGraph
from repro.kg.schema import Fact

__all__ = ["is_variable", "query"]

Pattern = tuple[str, str, str]
Binding = dict[str, str]


def is_variable(term: str) -> bool:
    """True when ``term`` is a query variable (``?name``)."""
    return term.startswith("?")


def query(
    kg: KnowledgeGraph,
    patterns: Sequence[Pattern],
    limit: int | None = None,
) -> list[Binding]:
    """Evaluate conjunctive triple patterns; returns variable bindings.

    Patterns are joined left to right; the candidate fact set for each
    pattern uses the graph's subject/object adjacency indexes when the
    corresponding position is already bound or constant.
    """
    if not patterns:
        return []
    for pattern in patterns:
        if len(pattern) != 3:
            raise ValueError(f"pattern must be a 3-tuple, got {pattern!r}")

    solutions: list[Binding] = [{}]
    for pattern in patterns:
        next_solutions: list[Binding] = []
        for binding in solutions:
            for fact in _candidate_facts(kg, pattern, binding):
                extended = _match(pattern, fact, binding)
                if extended is not None:
                    next_solutions.append(extended)
        solutions = next_solutions
        if not solutions:
            return []
    if limit is not None:
        solutions = solutions[:limit]
    # Deduplicate identical bindings (different facts can yield the same
    # variable assignment).
    seen: set[tuple[tuple[str, str], ...]] = set()
    unique: list[Binding] = []
    for binding in solutions:
        key = tuple(sorted(binding.items()))
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique


def _resolve(term: str, binding: Binding) -> str | None:
    """Constant value of ``term`` under ``binding`` (None if still free)."""
    if is_variable(term):
        return binding.get(term)
    return term


def _candidate_facts(
    kg: KnowledgeGraph, pattern: Pattern, binding: Binding
):
    subject = _resolve(pattern[0], binding)
    obj = _resolve(pattern[2], binding)
    if subject is not None and kg.has_entity(subject):
        return kg.facts_about(subject)
    if obj is not None and kg.has_entity(obj):
        return kg.facts_mentioning(obj)
    return kg.facts()


def _match(pattern: Pattern, fact: Fact, binding: Binding) -> Binding | None:
    """Extend ``binding`` so ``pattern`` matches ``fact``, or None."""
    subject_t, property_t, object_t = pattern
    fact_object = fact.object_id if fact.object_id is not None else fact.literal
    assert fact_object is not None
    extended = dict(binding)
    for term, value in (
        (subject_t, fact.subject_id),
        (property_t, fact.property_id),
        (object_t, fact_object),
    ):
        if is_variable(term):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended
