"""Knowledge-graph substrate.

Stands in for the Wikidata / DBPedia dumps the paper indexes: a typed
property graph with entity labels and aliases (the inputs to triplet
mining), plus a deterministic synthetic generator seeded with a curated
core of real entities and their true aliases.
"""

from repro.kg.schema import Entity, EntityType, Fact, Property
from repro.kg.graph import KnowledgeGraph
from repro.kg.seed_data import seed_entity_specs, seed_properties, seed_type_specs
from repro.kg.synthetic import SyntheticKGConfig, generate_kg
from repro.kg.io import load_kg_json, save_kg_json
from repro.kg.query import query

__all__ = [
    "Entity",
    "EntityType",
    "Fact",
    "KnowledgeGraph",
    "Property",
    "SyntheticKGConfig",
    "generate_kg",
    "load_kg_json",
    "query",
    "save_kg_json",
    "seed_entity_specs",
    "seed_properties",
    "seed_type_specs",
]
