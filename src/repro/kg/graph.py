"""In-memory knowledge-graph store with the access paths lookup needs."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

import networkx as nx

from repro.kg.schema import Entity, EntityType, Fact, Property
from repro.text.tokenize import normalize

__all__ = ["KnowledgeGraph"]


class KnowledgeGraph:
    """The quadruplet <E, T, P, F> with indexed access.

    Maintains:

    - entity / type / property registries keyed by id,
    - an exact-match mention index (normalised mention -> entity ids),
    - adjacency (facts by subject and by object) for the annotation systems'
      context scoring,
    - per-type entity lists for CTA and type-based triplet mining.
    """

    def __init__(self) -> None:
        self._entities: dict[str, Entity] = {}
        self._types: dict[str, EntityType] = {}
        self._properties: dict[str, Property] = {}
        self._facts: list[Fact] = []
        self._facts_by_subject: dict[str, list[Fact]] = defaultdict(list)
        self._facts_by_object: dict[str, list[Fact]] = defaultdict(list)
        self._mention_index: dict[str, set[str]] = defaultdict(set)
        self._entities_by_type: dict[str, list[str]] = defaultdict(list)

    # -- registration ---------------------------------------------------------------

    def add_type(self, entity_type: EntityType) -> None:
        """Register a type; its parent (if any) must already exist."""
        if entity_type.type_id in self._types:
            raise ValueError(f"duplicate type id {entity_type.type_id!r}")
        if entity_type.parent_id is not None and entity_type.parent_id not in self._types:
            raise KeyError(
                f"type {entity_type.type_id!r} references unknown parent "
                f"{entity_type.parent_id!r}"
            )
        self._types[entity_type.type_id] = entity_type

    def add_property(self, prop: Property) -> None:
        """Register a relation property."""
        if prop.property_id in self._properties:
            raise ValueError(f"duplicate property id {prop.property_id!r}")
        self._properties[prop.property_id] = prop

    def add_entity(self, entity: Entity) -> None:
        """Register an entity and index its mentions and types."""
        if entity.entity_id in self._entities:
            raise ValueError(f"duplicate entity id {entity.entity_id!r}")
        for type_id in entity.type_ids:
            if type_id not in self._types:
                raise KeyError(
                    f"entity {entity.entity_id!r} references unknown type {type_id!r}"
                )
        self._entities[entity.entity_id] = entity
        for mention in entity.mentions:
            self._mention_index[normalize(mention)].add(entity.entity_id)
        for type_id in entity.type_ids:
            self._entities_by_type[type_id].append(entity.entity_id)

    def add_fact(self, fact: Fact) -> None:
        """Register a fact; subject/property/object must be known."""
        if fact.subject_id not in self._entities:
            raise KeyError(f"fact references unknown subject {fact.subject_id!r}")
        if fact.property_id not in self._properties:
            raise KeyError(f"fact references unknown property {fact.property_id!r}")
        if fact.object_id is not None and fact.object_id not in self._entities:
            raise KeyError(f"fact references unknown object {fact.object_id!r}")
        self._facts.append(fact)
        self._facts_by_subject[fact.subject_id].append(fact)
        if fact.object_id is not None:
            self._facts_by_object[fact.object_id].append(fact)

    # -- registries -------------------------------------------------------------------

    @property
    def num_entities(self) -> int:
        return len(self._entities)

    @property
    def num_facts(self) -> int:
        return len(self._facts)

    def entities(self) -> Iterator[Entity]:
        """Iterate entities in insertion order."""
        return iter(self._entities.values())

    def entity_ids(self) -> list[str]:
        """All entity ids in insertion order."""
        return list(self._entities)

    def types(self) -> Iterator[EntityType]:
        """Iterate registered types."""
        return iter(self._types.values())

    def properties(self) -> Iterator[Property]:
        """Iterate registered properties."""
        return iter(self._properties.values())

    def facts(self) -> Iterator[Fact]:
        """Iterate facts in insertion order."""
        return iter(self._facts)

    def entity(self, entity_id: str) -> Entity:
        """The entity with ``entity_id`` (KeyError when unknown)."""
        try:
            return self._entities[entity_id]
        except KeyError:
            raise KeyError(f"unknown entity id {entity_id!r}") from None

    def has_entity(self, entity_id: str) -> bool:
        """True when ``entity_id`` is registered."""
        return entity_id in self._entities

    def type(self, type_id: str) -> EntityType:
        """The type with ``type_id`` (KeyError when unknown)."""
        try:
            return self._types[type_id]
        except KeyError:
            raise KeyError(f"unknown type id {type_id!r}") from None

    def property(self, property_id: str) -> Property:
        """The property with ``property_id`` (KeyError when unknown)."""
        try:
            return self._properties[property_id]
        except KeyError:
            raise KeyError(f"unknown property id {property_id!r}") from None

    # -- access paths -----------------------------------------------------------------

    def exact_lookup(self, mention: str) -> set[str]:
        """Entity ids whose label or alias normalises to ``mention``."""
        return set(self._mention_index.get(normalize(mention), ()))

    def mention_strings(self) -> list[str]:
        """All distinct normalised mentions in the graph."""
        return list(self._mention_index)

    def entities_of_type(self, type_id: str, transitive: bool = False) -> list[str]:
        """Entity ids having ``type_id`` (optionally via subtype closure)."""
        if type_id not in self._types:
            raise KeyError(f"unknown type id {type_id!r}")
        if not transitive:
            return list(self._entities_by_type.get(type_id, ()))
        wanted = {type_id} | self.descendant_types(type_id)
        result: list[str] = []
        for tid in wanted:
            result.extend(self._entities_by_type.get(tid, ()))
        return result

    def descendant_types(self, type_id: str) -> set[str]:
        """All subtype ids of ``type_id`` (excluding itself)."""
        children = defaultdict(list)
        for t in self._types.values():
            if t.parent_id is not None:
                children[t.parent_id].append(t.type_id)
        out: set[str] = set()
        frontier = [type_id]
        while frontier:
            current = frontier.pop()
            for child in children.get(current, ()):
                if child not in out:
                    out.add(child)
                    frontier.append(child)
        return out

    def ancestor_types(self, type_id: str) -> list[str]:
        """Chain from ``type_id``'s parent to the hierarchy root."""
        out: list[str] = []
        current = self.type(type_id).parent_id
        seen = {type_id}
        while current is not None:
            if current in seen:
                raise ValueError(f"type hierarchy cycle at {current!r}")
            seen.add(current)
            out.append(current)
            current = self.type(current).parent_id
        return out

    def facts_about(self, entity_id: str) -> list[Fact]:
        """Facts where ``entity_id`` is the subject."""
        return list(self._facts_by_subject.get(entity_id, ()))

    def facts_mentioning(self, entity_id: str) -> list[Fact]:
        """Facts where ``entity_id`` is the object."""
        return list(self._facts_by_object.get(entity_id, ()))

    def neighbors(self, entity_id: str) -> set[str]:
        """Entity ids one hop away (either direction)."""
        out: set[str] = set()
        for fact in self._facts_by_subject.get(entity_id, ()):
            if fact.object_id is not None:
                out.add(fact.object_id)
        for fact in self._facts_by_object.get(entity_id, ()):
            out.add(fact.subject_id)
        out.discard(entity_id)
        return out

    def related(self, a: str, b: str) -> bool:
        """True when some fact directly connects entities ``a`` and ``b``."""
        return b in self.neighbors(a)

    # -- statistics & export -------------------------------------------------------------

    def alias_counts(self) -> dict[str, int]:
        """Number of aliases per entity id."""
        return {e.entity_id: len(e.aliases) for e in self._entities.values()}

    def to_networkx(self) -> nx.MultiDiGraph:
        """Entity-to-entity multigraph (literals omitted) for graph analytics."""
        graph = nx.MultiDiGraph()
        for entity in self._entities.values():
            graph.add_node(entity.entity_id, label=entity.label)
        for fact in self._facts:
            if fact.object_id is not None:
                graph.add_edge(
                    fact.subject_id, fact.object_id, property=fact.property_id
                )
        return graph

    def summary(self) -> dict[str, int]:
        """Size counters: entities, types, properties, facts, mentions."""
        return {
            "entities": len(self._entities),
            "types": len(self._types),
            "properties": len(self._properties),
            "facts": len(self._facts),
            "mentions": len(self._mention_index),
        }

    @classmethod
    def build(
        cls,
        types: Iterable[EntityType] = (),
        properties: Iterable[Property] = (),
        entities: Iterable[Entity] = (),
        facts: Iterable[Fact] = (),
    ) -> "KnowledgeGraph":
        """Construct and populate a graph in dependency order."""
        kg = cls()
        for t in types:
            kg.add_type(t)
        for p in properties:
            kg.add_property(p)
        for e in entities:
            kg.add_entity(e)
        for f in facts:
            kg.add_fact(f)
        return kg
