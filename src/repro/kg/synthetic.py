"""Deterministic synthetic knowledge-graph generator.

Grows a KG around the curated seed core (:mod:`repro.kg.seed_data`) to an
arbitrary entity count, with alias structure matched to the paper's stated
statistics: the vast majority of entities carry at least 3 aliases and at
least 95 % have fewer than 50 synonyms.  Two flavours mirror the paper's
evaluation graphs:

- ``"wikidata"`` — opaque ``Q<number>`` ids,
- ``"dbpedia"`` — readable ``dbr:<Label>`` resource ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.schema import Entity, EntityType, Fact, Property
from repro.kg.seed_data import seed_entity_specs, seed_properties, seed_type_specs
from repro.text.noise import abbreviate
from repro.text.tokenize import normalize
from repro.utils.rng import as_rng

__all__ = ["SyntheticKGConfig", "generate_kg"]

_FIRST_NAMES = (
    "james maria wei ana joao lena omar fatima ivan elena juan sofia david "
    "sara liam noor kenji yuki ahmed layla pedro lucia hans greta piotr "
    "olga marco chiara erik astrid tomas jana ravi priya chen mei diego "
    "valentina samuel ruth felix clara viktor nadia bruno alice arthur "
    "ines mateo camila stefan petra milan vera anton rosa"
).split()

_LAST_NAMES = (
    "smith johnson garcia mueller schmidt rossi bianchi dubois martin "
    "lefevre kowalski nowak ivanov petrov tanaka sato suzuki kim park lee "
    "chen wang zhang silva santos costa lopez gonzalez fernandez almeida "
    "haddad rahman khan patel sharma gupta andersson lindberg johansson "
    "nielsen hansen virtanen korhonen papadopoulos economou yilmaz kaya "
    "moreau fontaine weiss becker hoffman keller brunner frei okafor mensah"
).split()

_CITY_STEMS = (
    "north south east west new old upper lower grand little port fort "
    "saint lake river green stone bridge spring hill clear silver oak "
    "maple cedar pine elm ash birch willow"
).split()

_CITY_CORES = (
    "ton ville burg stadt ford field haven dale wood brook mouth gate "
    "minster chester by berg heim hafen market castle cross bay point "
    "falls rapids landing harbor ridge grove"
).split()

_COMPANY_WORDS = (
    "global united advanced general national digital pacific atlantic "
    "premier allied integrated dynamic quantum stellar apex vertex nova "
    "orion helio terra aqua strato micro macro meta omni uni multi"
).split()

_COMPANY_CORES = (
    "systems industries technologies solutions dynamics logistics motors "
    "energy materials networks analytics robotics pharma foods media "
    "partners holdings labs works instruments devices"
).split()

_COMPANY_SUFFIXES = ("inc", "corp", "ltd", "gmbh", "ag", "sa", "plc", "llc")

#: Synthesised population mix (type_id, weight).
_SYNTH_TYPE_MIX = (
    ("person", 0.45),
    ("city", 0.25),
    ("company", 0.20),
    ("river", 0.05),
    ("mountain", 0.05),
)


@dataclass(frozen=True)
class SyntheticKGConfig:
    """Configuration for :func:`generate_kg`.

    Attributes
    ----------
    num_entities:
        Target total entity count (seed core included).
    flavour:
        ``"wikidata"`` or ``"dbpedia"`` id scheme.
    seed:
        RNG seed; same seed -> identical graph.
    min_aliases / max_aliases:
        Alias count range for synthesised entities (sampled per entity,
        skewed low so that 95 %+ of entities stay well under 50 synonyms).
    ambiguity_rate:
        Fraction of synthesised entities that intentionally reuse an
        existing label (homonyms, the Tough-Tables challenge).
    facts_per_entity:
        Mean number of relational facts attached to each synthesised entity.
    """

    num_entities: int = 2000
    flavour: str = "wikidata"
    seed: int = 7
    min_aliases: int = 2
    max_aliases: int = 8
    ambiguity_rate: float = 0.04
    facts_per_entity: float = 2.0

    def __post_init__(self) -> None:
        if self.num_entities < 1:
            raise ValueError("num_entities must be >= 1")
        if self.flavour not in ("wikidata", "dbpedia"):
            raise ValueError(f"unknown flavour {self.flavour!r}")
        if not 0 <= self.min_aliases <= self.max_aliases:
            raise ValueError("alias bounds must satisfy 0 <= min <= max")
        if not 0.0 <= self.ambiguity_rate <= 1.0:
            raise ValueError("ambiguity_rate must be in [0, 1]")
        if self.facts_per_entity < 0:
            raise ValueError("facts_per_entity must be >= 0")


def generate_kg(config: SyntheticKGConfig | None = None) -> KnowledgeGraph:
    """Generate a knowledge graph per ``config`` (defaults: 2 000 entities)."""
    config = config or SyntheticKGConfig()
    rng = as_rng(config.seed)
    builder = _Builder(config, rng)
    return builder.build()


class _Builder:
    def __init__(self, config: SyntheticKGConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        self.kg = KnowledgeGraph()
        self._next_numeric_id = 1
        self._key_to_id: dict[str, str] = {}
        self._used_ids: set[str] = set()
        self._labels_in_use: list[str] = []

    # -- id scheme ----------------------------------------------------------------

    def _make_id(self, label: str) -> str:
        if self.config.flavour == "wikidata":
            entity_id = f"Q{self._next_numeric_id}"
            self._next_numeric_id += 1
            return entity_id
        base = "dbr:" + normalize(label).replace(" ", "_")
        entity_id = base
        suffix = 2
        while entity_id in self._used_ids:
            entity_id = f"{base}_{suffix}"
            suffix += 1
        return entity_id

    # -- construction ---------------------------------------------------------------

    def build(self) -> KnowledgeGraph:
        for type_id, label, parent in seed_type_specs():
            self.kg.add_type(EntityType(type_id, label, parent))
        for property_id, label in seed_properties():
            self.kg.add_property(Property(property_id, label))

        entity_specs, fact_specs = seed_entity_specs()
        for key, label, aliases, type_ids in entity_specs:
            entity_id = self._make_id(label)
            self._used_ids.add(entity_id)
            self._key_to_id[key] = entity_id
            self.kg.add_entity(
                Entity(entity_id, label, tuple(aliases), tuple(type_ids))
            )
            self._labels_in_use.append(label)
        for subject_key, property_id, obj, is_literal in fact_specs:
            subject_id = self._key_to_id[subject_key]
            if is_literal:
                fact = Fact(subject_id, property_id, literal=obj)
            else:
                fact = Fact(subject_id, property_id, object_id=self._key_to_id[obj])
            self.kg.add_fact(fact)

        remaining = self.config.num_entities - self.kg.num_entities
        type_ids, weights = zip(*_SYNTH_TYPE_MIX)
        probs = np.asarray(weights) / sum(weights)
        for _ in range(max(remaining, 0)):
            chosen = type_ids[int(self.rng.choice(len(type_ids), p=probs))]
            self._synthesize_entity(chosen)
        return self.kg

    def _synthesize_entity(self, type_id: str) -> None:
        if self.rng.random() < self.config.ambiguity_rate and self._labels_in_use:
            label = self._labels_in_use[
                int(self.rng.integers(0, len(self._labels_in_use)))
            ]
            aliases: tuple[str, ...] = ()
        else:
            label, aliases = self._make_name(type_id)
        entity_id = self._make_id(label)
        self._used_ids.add(entity_id)
        entity = Entity(entity_id, label, aliases, (type_id,))
        self.kg.add_entity(entity)
        self._labels_in_use.append(label)
        self._attach_facts(entity, type_id)

    # -- name synthesis ----------------------------------------------------------------

    def _pick(self, pool: tuple[str, ...] | list[str]) -> str:
        return pool[int(self.rng.integers(0, len(pool)))]

    def _alias_budget(self) -> int:
        low, high = self.config.min_aliases, self.config.max_aliases
        if low == high:
            return low
        # Geometric-ish skew: most entities carry a handful of aliases
        # (the paper: the vast majority have >= 3, 95 % have < 50).
        raw = self.rng.geometric(0.5)
        return int(np.clip(low + raw, low, high))

    def _make_name(self, type_id: str) -> tuple[str, tuple[str, ...]]:
        if type_id == "person":
            return self._person_name()
        if type_id == "city":
            return self._place_name(kind="city")
        if type_id == "river":
            return self._place_name(kind="river")
        if type_id == "mountain":
            return self._place_name(kind="mountain")
        if type_id == "company":
            return self._company_name()
        raise ValueError(f"no name synthesiser for type {type_id!r}")

    def _person_name(self) -> tuple[str, tuple[str, ...]]:
        first = self._pick(_FIRST_NAMES)
        last = self._pick(_LAST_NAMES)
        middle = self._pick(_FIRST_NAMES)
        label = f"{first} {last}"
        candidates = [
            f"{first[0]}. {last}",
            f"{last}, {first}",
            f"{first} {middle} {last}",
            f"{first[0]}. {middle[0]}. {last}",
            last,
        ]
        return label, self._take_aliases(candidates)

    def _place_name(self, kind: str) -> tuple[str, tuple[str, ...]]:
        stem = self._pick(_CITY_STEMS)
        core = self._pick(_CITY_CORES)
        base = f"{stem}{core}" if self.rng.random() < 0.5 else f"{stem} {core}"
        if kind == "river":
            label = f"{base} river"
            candidates = [base, f"river {base}", f"the {base}"]
        elif kind == "mountain":
            label = f"mount {base}"
            candidates = [base, f"{base} peak", f"mt {base}", f"mt. {base}"]
        else:
            label = base
            candidates = [
                f"{base} city",
                f"old {base}",
                f"{base}town",
                abbreviate(base),
            ]
        return label, self._take_aliases(candidates)

    def _company_name(self) -> tuple[str, tuple[str, ...]]:
        word = self._pick(_COMPANY_WORDS)
        core = self._pick(_COMPANY_CORES)
        suffix = self._pick(_COMPANY_SUFFIXES)
        label = f"{word} {core} {suffix}"
        candidates = [
            f"{word} {core}",
            abbreviate(f"{word} {core}"),
            f"{word} {core} {self._pick(_COMPANY_SUFFIXES)}",
            word,
        ]
        return label, self._take_aliases(candidates)

    def _take_aliases(self, candidates: list[str]) -> tuple[str, ...]:
        budget = self._alias_budget()
        unique = list(dict.fromkeys(candidates))
        self.rng.shuffle(unique)
        return tuple(unique[:budget])

    # -- fact synthesis ------------------------------------------------------------------

    def _attach_facts(self, entity: Entity, type_id: str) -> None:
        count = int(self.rng.poisson(self.config.facts_per_entity))
        countries = self.kg.entities_of_type("country")
        cities = self.kg.entities_of_type("city", transitive=True)
        companies = self.kg.entities_of_type("company")
        for _ in range(count):
            fact = self._sample_fact(entity, type_id, countries, cities, companies)
            if fact is not None:
                self.kg.add_fact(fact)

    def _sample_fact(
        self,
        entity: Entity,
        type_id: str,
        countries: list[str],
        cities: list[str],
        companies: list[str],
    ) -> Fact | None:
        eid = entity.entity_id
        roll = self.rng.random()
        if type_id == "person":
            if roll < 0.4 and countries:
                return Fact(eid, "citizen_of", object_id=self._pick(countries))
            if roll < 0.7 and cities:
                return Fact(eid, "born_in", object_id=self._pick(cities))
            if companies:
                return Fact(eid, "member_of", object_id=self._pick(companies))
        elif type_id in ("city", "river", "mountain"):
            if type_id == "river" and roll < 0.5 and countries:
                return Fact(eid, "flows_through", object_id=self._pick(countries))
            if roll < 0.8 and countries:
                return Fact(eid, "located_in", object_id=self._pick(countries))
            population = int(self.rng.integers(5_000, 5_000_000))
            return Fact(eid, "population", literal=str(population))
        elif type_id == "company":
            if roll < 0.6 and countries:
                return Fact(eid, "headquartered_in", object_id=self._pick(countries))
            year = int(self.rng.integers(1850, 2021))
            return Fact(eid, "founded_year", literal=str(year))
        return None
