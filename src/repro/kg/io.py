"""Knowledge-graph persistence (JSON, one document per graph)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.kg.graph import KnowledgeGraph
from repro.kg.schema import Entity, EntityType, Fact, Property

__all__ = ["load_kg_json", "save_kg_json"]

_FORMAT_VERSION = 1


def save_kg_json(kg: KnowledgeGraph, path: str | Path) -> None:
    """Serialise ``kg`` to a JSON file."""
    document = {
        "format_version": _FORMAT_VERSION,
        "types": [
            {"type_id": t.type_id, "label": t.label, "parent_id": t.parent_id}
            for t in kg.types()
        ],
        "properties": [
            {"property_id": p.property_id, "label": p.label}
            for p in kg.properties()
        ],
        "entities": [
            {
                "entity_id": e.entity_id,
                "label": e.label,
                "aliases": list(e.aliases),
                "type_ids": list(e.type_ids),
                "description": e.description,
            }
            for e in kg.entities()
        ],
        "facts": [
            {
                "subject_id": f.subject_id,
                "property_id": f.property_id,
                "object_id": f.object_id,
                "literal": f.literal,
            }
            for f in kg.facts()
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document), encoding="utf-8")


def load_kg_json(path: str | Path) -> KnowledgeGraph:
    """Load a graph written by :func:`save_kg_json`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no KG file at {path}")
    document = json.loads(path.read_text(encoding="utf-8"))
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported KG format version {version!r}")
    return KnowledgeGraph.build(
        types=(
            EntityType(t["type_id"], t["label"], t.get("parent_id"))
            for t in document["types"]
        ),
        properties=(
            Property(p["property_id"], p["label"]) for p in document["properties"]
        ),
        entities=(
            Entity(
                e["entity_id"],
                e["label"],
                tuple(e.get("aliases", ())),
                tuple(e.get("type_ids", ())),
                e.get("description", ""),
            )
            for e in document["entities"]
        ),
        facts=(
            Fact(
                f["subject_id"],
                f["property_id"],
                object_id=f.get("object_id"),
                literal=f.get("literal"),
            )
            for f in document["facts"]
        ),
    )
