"""EmbLookup — accelerating entity lookups in knowledge graphs through
embeddings (reproduction of Abuoda et al., ICDE 2022).

Quickstart::

    from repro import EmbLookup, EmbLookupConfig, generate_kg, SyntheticKGConfig

    kg = generate_kg(SyntheticKGConfig(num_entities=2000))
    service = EmbLookup(EmbLookupConfig())
    service.fit(kg)
    for result in service.lookup("germony", k=5):   # typo-tolerant
        print(kg.entity(result.entity_id).label, result.distance)

Package map:

- :mod:`repro.core` — the EmbLookup pipeline (train / index / lookup).
- :mod:`repro.nn` — numpy deep-learning framework (PyTorch substitute).
- :mod:`repro.index` — vector indexes: Flat, PQ, IVF, IVF-PQ, LSH, PCA
  (FAISS substitute).
- :mod:`repro.kg` / :mod:`repro.tables` — knowledge-graph and tabular
  benchmark substrates.
- :mod:`repro.embedding` — the dual-tower model and Table VII baselines.
- :mod:`repro.triplets` — offline mining and online hard-triplet selection.
- :mod:`repro.lookup` — the lookup-service interface, EmbLookup adapter,
  and the eight Table V baseline services.
- :mod:`repro.annotation` — bbw, MantisTable, JenTab, DoSeR, Katara.
- :mod:`repro.evaluation` — metrics, harness, table renderers.
"""

from repro.core import EmbLookup, EmbLookupConfig, LookupResult
from repro.kg import KnowledgeGraph, SyntheticKGConfig, generate_kg
from repro.tables import (
    BenchmarkConfig,
    TabularDataset,
    generate_benchmark,
    generate_tough_tables,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkConfig",
    "EmbLookup",
    "EmbLookupConfig",
    "KnowledgeGraph",
    "LookupResult",
    "SyntheticKGConfig",
    "TabularDataset",
    "generate_benchmark",
    "generate_kg",
    "generate_tough_tables",
    "__version__",
]
