"""Character-LSTM baseline encoder (Table VII's "LSTM" row).

A single-layer LSTM reads the one-hot character sequence; the final hidden
state is projected to the embedding dimension.  Trained with the same
triplet loss as EmbLookup over the KG labels and aliases, which is why it is
the strongest baseline in Table VII — it shares the objective but lacks the
CNN tower's edit-distance inductive bias and the fastText tower's subword
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.loss import triplet_margin_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.text.encoding import OneHotEncoder
from repro.utils.rng import as_rng

__all__ = ["CharLSTMConfig", "CharLSTMEmbedder"]


@dataclass(frozen=True)
class CharLSTMConfig:
    """Hyperparameters for :class:`CharLSTMEmbedder`."""

    dim: int = 64
    hidden: int = 32
    epochs: int = 5
    batch_size: int = 64
    lr: float = 1e-3
    margin: float = 1.0
    seed: int = 23

    def __post_init__(self) -> None:
        if self.dim < 1 or self.hidden < 1:
            raise ValueError("dim and hidden must be positive")


class CharLSTMEmbedder(Module):
    """LSTM over one-hot characters -> final hidden state -> linear head."""

    def __init__(
        self, encoder: OneHotEncoder, config: CharLSTMConfig | None = None
    ):
        super().__init__()
        self.config = config or CharLSTMConfig()
        self.encoder = encoder
        self.rng = as_rng(self.config.seed)
        input_size = encoder.alphabet.size
        hidden = self.config.hidden
        # Single gate projection producing [i, f, g, o] stacked.
        self.gates = Linear(input_size + hidden, 4 * hidden, rng=self.rng)
        self.head = Linear(hidden, self.config.dim, rng=self.rng)

    @property
    def dim(self) -> int:
        return self.config.dim

    def forward(self, x: Tensor) -> Tensor:
        """Encode one-hot batches ``(N, |A|, L)`` to ``(N, dim)``."""
        n, _, length = x.shape
        hidden = self.config.hidden
        h = Tensor(np.zeros((n, hidden), dtype=np.float32))
        c = Tensor(np.zeros((n, hidden), dtype=np.float32))
        for t in range(length):
            x_t = x[:, :, t]                                    # (N, |A|)
            combined = concatenate([x_t, h], axis=1)
            g = self.gates(combined)                            # (N, 4H)
            i_gate = g[:, 0 * hidden : 1 * hidden].sigmoid()
            f_gate = g[:, 1 * hidden : 2 * hidden].sigmoid()
            g_gate = g[:, 2 * hidden : 3 * hidden].tanh()
            o_gate = g[:, 3 * hidden : 4 * hidden].sigmoid()
            c = f_gate * c + i_gate * g_gate
            h = o_gate * c.tanh()
        return self.head(h)

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Inference: strings -> float32 embeddings, no gradients."""
        if not mentions:
            return np.empty((0, self.config.dim), dtype=np.float32)
        batch = Tensor(self.encoder.encode_batch(mentions))
        with no_grad():
            out = self.forward(batch)
        return out.data.astype(np.float32)

    def fit(self, triplets: Sequence[tuple[str, str, str]]) -> "CharLSTMEmbedder":
        """Train on (anchor, positive, negative) string triplets."""
        if not triplets:
            return self
        cfg = self.config
        optimizer = Adam(self.parameters(), lr=cfg.lr)
        order = np.arange(len(triplets), dtype=np.int64)
        self.train()
        for _ in range(cfg.epochs):
            self.rng.shuffle(order)
            for start in range(0, len(order), cfg.batch_size):
                chunk = order[start : start + cfg.batch_size]
                anchors = [triplets[i][0] for i in chunk]
                positives = [triplets[i][1] for i in chunk]
                negatives = [triplets[i][2] for i in chunk]
                a = self.forward(Tensor(self.encoder.encode_batch(anchors)))
                p = self.forward(Tensor(self.encoder.encode_batch(positives)))
                n = self.forward(Tensor(self.encoder.encode_batch(negatives)))
                loss = triplet_margin_loss(a, p, n, margin=cfg.margin)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self.eval()
        return self
