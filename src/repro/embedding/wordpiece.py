"""Wordpiece mean-pooling embedder — the reproduction's BERT stand-in.

A true pretrained BERT cannot be shipped offline; the Table VII comparison
needs its *behavioural signature*: subword tokenisation gives partial typo
robustness (shared pieces survive an edit), but whole-piece semantics are
weaker than fastText's dense char n-grams.  We therefore train wordpiece
vectors with the same SGNS objective over the synonym corpus and mean-pool
pieces at inference.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.text.tokenize import normalize, word_tokens, wordpieces
from repro.utils.rng import as_rng

__all__ = ["WordPieceConfig", "WordPieceModel"]


@dataclass(frozen=True)
class WordPieceConfig:
    """Hyperparameters for :class:`WordPieceModel`."""

    dim: int = 64
    vocab_size: int = 4000
    max_piece: int = 8
    negatives: int = 4
    epochs: int = 5
    lr: float = 0.05
    seed: int = 19

    def __post_init__(self) -> None:
        if self.dim < 1 or self.vocab_size < 30:
            raise ValueError("dim must be >= 1 and vocab_size >= 30")


class WordPieceModel:
    """Frequency-built wordpiece vocabulary + SGNS piece vectors."""

    def __init__(self, config: WordPieceConfig | None = None):
        self.config = config or WordPieceConfig()
        self.rng = as_rng(self.config.seed)
        self._vocab: dict[str, int] = {}
        self._vectors: np.ndarray | None = None

    @property
    def dim(self) -> int:
        return self.config.dim

    @property
    def piece_vocabulary(self) -> set[str]:
        return set(self._vocab)

    def _build_vocab(self, corpus_tokens: list[str]) -> None:
        """Greedy frequency vocabulary: chars, then frequent substrings."""
        counts: Counter[str] = Counter()
        for token in corpus_tokens:
            # All substrings up to max_piece, in both positions.
            for start in range(len(token)):
                for length in range(1, self.config.max_piece + 1):
                    piece = token[start : start + length]
                    if not piece:
                        continue
                    key = piece if start == 0 else "##" + piece
                    counts[key] += 1
        # Always keep single characters so tokenisation never fails.
        single_chars = {
            key for key in counts if len(key.removeprefix("##")) == 1
        }
        budget = max(self.config.vocab_size - len(single_chars), 0)
        frequent = [
            key
            for key, _ in counts.most_common()
            if key not in single_chars
        ][:budget]
        for key in sorted(single_chars) + frequent:
            self._vocab.setdefault(key, len(self._vocab))

    def fit(self, synonym_groups: Sequence[Sequence[str]]) -> "WordPieceModel":
        """Build the vocabulary and train piece vectors with SGNS."""
        cfg = self.config
        groups_tokens: list[list[str]] = []
        corpus_tokens: list[str] = []
        for group in synonym_groups:
            tokens: list[str] = []
            for mention in group:
                tokens.extend(word_tokens(mention))
            if tokens:
                groups_tokens.append(tokens)
                corpus_tokens.extend(tokens)
        self._build_vocab(corpus_tokens)
        v = len(self._vocab)
        if v == 0:
            self._vectors = np.zeros((0, cfg.dim), dtype=np.float32)
            return self

        scale = 0.5 / cfg.dim
        vectors = self.rng.uniform(-scale, scale, size=(v, cfg.dim))
        context = np.zeros((v, cfg.dim), dtype=vectors.dtype)
        vocab_set = self.piece_vocabulary

        pairs: list[tuple[int, int]] = []
        for tokens in groups_tokens:
            piece_ids: list[int] = []
            for token in tokens:
                for piece in wordpieces(token, vocab_set, cfg.max_piece):
                    if piece in self._vocab:
                        piece_ids.append(self._vocab[piece])
            for i, a in enumerate(piece_ids):
                for j, b in enumerate(piece_ids):
                    if i != j and abs(i - j) <= 4:
                        pairs.append((a, b))
        for _ in range(cfg.epochs):
            order = self.rng.permutation(len(pairs))
            for idx in order:
                centre, target = pairs[idx]
                _sgns_update(vectors, context, centre, target, 1.0, cfg.lr)
                for _ in range(cfg.negatives):
                    negative = int(self.rng.integers(0, v))
                    if negative != target:
                        _sgns_update(
                            vectors, context, centre, negative, 0.0, cfg.lr
                        )
        self._vectors = vectors.astype(np.float32)
        return self

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Mean of piece vectors over all tokens of the mention."""
        if self._vectors is None:
            raise RuntimeError("WordPieceModel.embed called before fit()")
        vocab_set = self.piece_vocabulary
        out = np.zeros((len(mentions), self.config.dim), dtype=np.float32)
        for i, mention in enumerate(mentions):
            rows: list[int] = []
            for token in word_tokens(normalize(mention)):
                for piece in wordpieces(token, vocab_set, self.config.max_piece):
                    if piece in self._vocab:
                        rows.append(self._vocab[piece])
            if rows:
                out[i] = self._vectors[rows].mean(axis=0)
        return out


def _sgns_update(
    vectors: np.ndarray,
    context: np.ndarray,
    centre: int,
    target: int,
    label: float,
    lr: float,
) -> None:
    score = float(vectors[centre] @ context[target])
    sigma = 1.0 / (1.0 + np.exp(-np.clip(score, -30, 30)))
    gradient = (sigma - label) * lr
    centre_vec = vectors[centre].copy()
    vectors[centre] -= gradient * context[target]
    context[target] -= gradient * centre_vec
