"""Embedding models.

:class:`EmbLookupModel` is the paper's dual-tower architecture (character
CNN for syntactic similarity + fastText subword model for semantic
similarity, fused by a two-layer MLP into a 64-d embedding).  The remaining
embedders are the Table VII baselines: word2vec (whole-word SGNS), fastText
alone, a wordpiece mean-pooling model standing in for BERT, and a
character-LSTM encoder.
"""

from repro.embedding.base import Embedder
from repro.embedding.cnn import CharCNNEncoder
from repro.embedding.fasttext import FastTextConfig, FastTextModel, subword_ngrams
from repro.embedding.emblookup_model import EmbLookupModel
from repro.embedding.word2vec import Word2VecConfig, Word2VecModel
from repro.embedding.wordpiece import WordPieceConfig, WordPieceModel
from repro.embedding.lstm import CharLSTMConfig, CharLSTMEmbedder

__all__ = [
    "CharCNNEncoder",
    "CharLSTMConfig",
    "CharLSTMEmbedder",
    "EmbLookupModel",
    "Embedder",
    "FastTextConfig",
    "FastTextModel",
    "Word2VecConfig",
    "Word2VecModel",
    "WordPieceConfig",
    "WordPieceModel",
    "subword_ngrams",
]
