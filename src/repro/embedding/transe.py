"""TransE knowledge-graph embeddings + string-space distillation.

The paper's closing future-work idea: "bootstrap the embeddings for lookup
from the corresponding KG embeddings that are optimized for semantic
similarity and adapt them to handle syntactic similarity."  This module
implements that direction:

1. :class:`TransEModel` — the classic translational KG embedding
   (Bordes et al.): facts ``<s, p, o>`` are modelled as ``e_s + r_p ≈ e_o``
   and trained with a margin ranking loss against corrupted facts.  Pure
   numpy (closed-form gradients), since the update is sparse and simple.
2. :func:`distill_into_fasttext` — fine-tunes a fastText subword model so
   that ``fasttext(label)`` approximates the entity's TransE embedding,
   transporting graph-structural similarity into *string* space, where the
   lookup operation lives.

The distilled fastText tower can then seed EmbLookup training
(``EmbLookup.fit`` accepts any pre-trained :class:`FastTextModel` through
:class:`repro.embedding.emblookup_model.EmbLookupModel`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.fasttext import FastTextModel
from repro.kg.graph import KnowledgeGraph
from repro.nn.loss import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.text.tokenize import normalize
from repro.utils.rng import as_rng

__all__ = ["TransEConfig", "TransEModel", "distill_into_fasttext"]


@dataclass(frozen=True)
class TransEConfig:
    """Hyperparameters for :class:`TransEModel`."""

    dim: int = 64
    margin: float = 1.0
    epochs: int = 20
    lr: float = 0.01
    seed: int = 61

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0")


class TransEModel:
    """Margin-ranking TransE over a knowledge graph's entity facts."""

    def __init__(self, config: TransEConfig | None = None):
        self.config = config or TransEConfig()
        self.rng = as_rng(self.config.seed)
        self._entity_index: dict[str, int] = {}
        self._relation_index: dict[str, int] = {}
        self.entity_embeddings: np.ndarray | None = None
        self.relation_embeddings: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self.entity_embeddings is not None

    def fit(self, kg: KnowledgeGraph) -> "TransEModel":
        """Train on all entity-to-entity facts of ``kg``."""
        cfg = self.config
        triples: list[tuple[int, int, int]] = []
        for fact in kg.facts():
            if fact.object_id is None:
                continue
            s = self._entity_index.setdefault(
                fact.subject_id, len(self._entity_index)
            )
            o = self._entity_index.setdefault(
                fact.object_id, len(self._entity_index)
            )
            p = self._relation_index.setdefault(
                fact.property_id, len(self._relation_index)
            )
            triples.append((s, p, o))
        # Entities never appearing in facts still get (random) rows.
        for entity in kg.entities():
            self._entity_index.setdefault(
                entity.entity_id, len(self._entity_index)
            )

        n_entities = len(self._entity_index)
        n_relations = max(len(self._relation_index), 1)
        scale = 6.0 / np.sqrt(cfg.dim)
        entities = self.rng.uniform(-scale, scale, size=(n_entities, cfg.dim))
        relations = self.rng.uniform(-scale, scale, size=(n_relations, cfg.dim))
        entities /= np.linalg.norm(entities, axis=1, keepdims=True)

        triple_arr = np.asarray(triples, dtype=np.int64)
        for _ in range(cfg.epochs):
            if len(triple_arr) == 0:
                break
            order = self.rng.permutation(len(triple_arr))
            for idx in order:
                # Per-triple SGD with fresh negatives is the TransE
                # algorithm; there is no batch form of this update here.
                s, p, o = triple_arr[idx]  # repro: noqa[REP503]
                # Corrupt head or tail.
                if self.rng.random() < 0.5:
                    s_neg, o_neg = int(self.rng.integers(0, n_entities)), o
                else:
                    s_neg, o_neg = s, int(self.rng.integers(0, n_entities))
                self._margin_step(entities, relations, (s, p, o), (s_neg, p, o_neg))
            # Re-normalise entity embeddings each epoch (TransE constraint).
            norms = np.linalg.norm(entities, axis=1, keepdims=True)
            entities /= np.maximum(norms, 1e-9)
        self.entity_embeddings = entities.astype(np.float32)
        self.relation_embeddings = relations.astype(np.float32)
        return self

    def _margin_step(self, entities, relations, positive, negative) -> None:
        cfg = self.config
        s, p, o = positive
        s2, _, o2 = negative
        diff_pos = entities[s] + relations[p] - entities[o]
        diff_neg = entities[s2] + relations[p] - entities[o2]
        d_pos = (diff_pos**2).sum()
        d_neg = (diff_neg**2).sum()
        if d_pos + cfg.margin <= d_neg:
            return  # already satisfied
        lr = cfg.lr
        # d(loss)/d(diff_pos) = 2*diff_pos ; d/d(diff_neg) = -2*diff_neg
        entities[s] -= lr * 2 * diff_pos
        entities[o] += lr * 2 * diff_pos
        relations[p] -= lr * 2 * diff_pos
        entities[s2] += lr * 2 * diff_neg
        entities[o2] -= lr * 2 * diff_neg
        relations[p] += lr * 2 * diff_neg

    def embedding_of(self, entity_id: str) -> np.ndarray:
        """Embedding row for ``entity_id``; raises on unknown ids."""
        if self.entity_embeddings is None:
            raise RuntimeError("TransEModel.embedding_of called before fit()")
        try:
            row = self._entity_index[entity_id]
        except KeyError:
            raise KeyError(f"unknown entity id {entity_id!r}") from None
        return self.entity_embeddings[row]

    def score_fact(self, subject_id: str, property_id: str, object_id: str) -> float:
        """Negative translational distance (higher = more plausible)."""
        if self.entity_embeddings is None or self.relation_embeddings is None:
            raise RuntimeError("TransEModel.score_fact called before fit()")
        s = self.embedding_of(subject_id)
        o = self.embedding_of(object_id)
        p_row = self._relation_index.get(property_id)
        if p_row is None:
            raise KeyError(f"unknown property id {property_id!r}")
        r = self.relation_embeddings[p_row]
        return -float(((s + r - o) ** 2).sum())


def distill_into_fasttext(
    transe: TransEModel,
    fasttext: FastTextModel,
    kg: KnowledgeGraph,
    epochs: int = 5,
    batch_size: int = 128,
    lr: float = 0.01,
    seed: int = 0,
) -> FastTextModel:
    """Fine-tune ``fasttext`` so ``fasttext(label) ~ transe(entity)``.

    Every surface form (label and aliases) of an entity regresses onto the
    entity's TransE embedding, transporting KG-structural similarity into
    the open-vocabulary string encoder.
    """
    if not transe.is_trained:
        raise RuntimeError("distill_into_fasttext requires a trained TransE model")
    if transe.config.dim != fasttext.dim:
        raise ValueError(
            f"dimension mismatch: TransE {transe.config.dim} vs "
            f"fastText {fasttext.dim}"
        )
    rng = as_rng(seed)
    pairs: list[tuple[str, np.ndarray]] = []
    for entity in kg.entities():
        target = transe.embedding_of(entity.entity_id)
        for mention in entity.mentions:
            pairs.append((normalize(mention), target))
    if not pairs:
        return fasttext

    optimizer = Adam(list(fasttext.parameters()), lr=lr)
    order = np.arange(len(pairs), dtype=np.int64)
    # Stack the targets once; the per-batch np.stack over a Python list
    # re-copied every target every epoch.
    target_matrix = np.stack([pair[1] for pair in pairs])
    for _ in range(epochs):
        rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start : start + batch_size]
            mentions = [pairs[i][0] for i in chunk]
            targets = target_matrix[chunk]
            predicted = fasttext.embed_tensor(mentions)
            loss = mse_loss(predicted, Tensor(targets))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return fasttext
