"""Word-level skip-gram-with-negative-sampling baseline (Table VII).

Whole-word vocabulary: a mention embeds as the mean of its word vectors and
out-of-vocabulary words contribute nothing.  That closed vocabulary is the
documented failure mode — under typos the word is OOV and the embedding
collapses, reproducing word2vec's steep error-variant drop in Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.text.tokenize import normalize, word_tokens
from repro.utils.rng import as_rng

__all__ = ["Word2VecConfig", "Word2VecModel"]


@dataclass(frozen=True)
class Word2VecConfig:
    """Hyperparameters for :class:`Word2VecModel`."""

    dim: int = 64
    negatives: int = 4
    epochs: int = 5
    lr: float = 0.05
    seed: int = 17

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be positive")
        if self.negatives < 1:
            raise ValueError("negatives must be >= 1")


class Word2VecModel:
    """SGNS over word co-occurrence within synonym groups.

    Implemented directly with numpy (the closed-form SGNS gradient) rather
    than the autograd engine — the update is two rank-1 accumulations, and
    the baseline needs to be fast enough for the Table VII sweep.
    """

    def __init__(self, config: Word2VecConfig | None = None):
        self.config = config or Word2VecConfig()
        self.rng = as_rng(self.config.seed)
        self._vocab: dict[str, int] = {}
        self._vectors: np.ndarray | None = None   # input vectors
        self._context: np.ndarray | None = None   # output vectors

    @property
    def dim(self) -> int:
        return self.config.dim

    @property
    def vocabulary(self) -> dict[str, int]:
        return dict(self._vocab)

    def fit(self, synonym_groups: Sequence[Sequence[str]]) -> "Word2VecModel":
        """Train word vectors so words co-occurring in a group align."""
        cfg = self.config
        groups_tokens: list[list[str]] = []
        for group in synonym_groups:
            tokens: list[str] = []
            for mention in group:
                tokens.extend(word_tokens(mention))
            if tokens:
                groups_tokens.append(tokens)
                for token in tokens:
                    if token not in self._vocab:
                        self._vocab[token] = len(self._vocab)
        if not self._vocab:
            self._vectors = np.zeros((0, cfg.dim), dtype=np.float32)
            return self

        v = len(self._vocab)
        scale = 0.5 / cfg.dim
        vectors = self.rng.uniform(-scale, scale, size=(v, cfg.dim))
        context = np.zeros((v, cfg.dim), dtype=vectors.dtype)

        pairs: list[tuple[int, int]] = []
        for tokens in groups_tokens:
            ids = [self._vocab[t] for t in tokens]
            for i, a in enumerate(ids):
                for j, b in enumerate(ids):
                    if i != j:
                        pairs.append((a, b))
        pairs_arr = np.asarray(pairs, dtype=np.int64)
        if len(pairs_arr) == 0:
            self._vectors = vectors.astype(np.float32)
            self._context = context.astype(np.float32)
            return self

        for _ in range(cfg.epochs):
            order = self.rng.permutation(len(pairs_arr))
            for idx in order:
                # Per-pair SGNS updates are inherently sequential: each
                # step reads the rows the previous step just wrote.
                centre, target = pairs_arr[idx]  # repro: noqa[REP503]
                self._sgns_update(vectors, context, centre, target, label=1.0)
                for _ in range(cfg.negatives):
                    negative = int(self.rng.integers(0, v))
                    if negative == target:
                        continue
                    self._sgns_update(vectors, context, centre, negative, label=0.0)
        self._vectors = vectors.astype(np.float32)
        self._context = context.astype(np.float32)
        return self

    def _sgns_update(
        self,
        vectors: np.ndarray,
        context: np.ndarray,
        centre: int,
        target: int,
        label: float,
    ) -> None:
        score = float(vectors[centre] @ context[target])
        sigma = 1.0 / (1.0 + np.exp(-np.clip(score, -30, 30)))
        gradient = (sigma - label) * self.config.lr
        centre_vec = vectors[centre].copy()
        vectors[centre] -= gradient * context[target]
        context[target] -= gradient * centre_vec

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Mean of in-vocabulary word vectors; all-OOV mentions embed to 0."""
        if self._vectors is None:
            raise RuntimeError("Word2VecModel.embed called before fit()")
        out = np.zeros((len(mentions), self.config.dim), dtype=np.float32)
        for i, mention in enumerate(mentions):
            rows = [
                self._vocab[token]
                for token in word_tokens(normalize(mention))
                if token in self._vocab
            ]
            if rows:
                out[i] = self._vectors[rows].mean(axis=0)
        return out
