"""Embedder protocol shared by the EmbLookup model and all baselines."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Embedder"]


@runtime_checkable
class Embedder(Protocol):
    """Anything that maps mention strings to fixed-size float vectors."""

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        ...

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Embed a batch of mention strings into ``(len(mentions), dim)``."""
        ...
