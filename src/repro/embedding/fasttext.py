"""fastText-style subword embedding model (Bojanowski et al.).

A mention is represented by the mean of hashed character n-gram vectors
(plus whole-word vectors), trained with skip-gram negative sampling so that
an entity's label and its aliases land close together — the semantic tower
of EmbLookup.  Hashing makes the model open-vocabulary: unseen or misspelled
words still produce (partially overlapping) n-grams.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.nn.layers import EmbeddingBag, Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.text.tokenize import normalize, word_tokens
from repro.utils.rng import as_rng

__all__ = ["FastTextConfig", "FastTextModel", "subword_ngrams"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash (stable across runs, unlike built-in ``hash``)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def subword_ngrams(
    mention: str, min_n: int = 3, max_n: int = 5, buckets: int = 2**16
) -> list[int]:
    """Hashed bucket ids for the mention's character n-grams and words.

    Each word is wrapped in boundary markers (``<word>``) before n-gram
    extraction, as in fastText; the whole word is hashed too.
    """
    if min_n < 1 or max_n < min_n:
        raise ValueError(f"invalid n-gram range [{min_n}, {max_n}]")
    if buckets < 1:
        raise ValueError(f"buckets must be positive, got {buckets}")
    ids: list[int] = []
    for word in word_tokens(mention):
        wrapped = f"<{word}>"
        ids.append(_fnv1a(wrapped) % buckets)
        for n in range(min_n, max_n + 1):
            if len(wrapped) < n:
                continue
            for i in range(len(wrapped) - n + 1):
                ids.append(_fnv1a(wrapped[i : i + n]) % buckets)
    return ids


@dataclass(frozen=True)
class FastTextConfig:
    """Hyperparameters for :class:`FastTextModel`."""

    dim: int = 64
    buckets: int = 2**16
    min_n: int = 3
    max_n: int = 5
    negatives: int = 4
    epochs: int = 5
    batch_size: int = 256
    lr: float = 0.05
    seed: int = 13

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be positive")
        if self.negatives < 1:
            raise ValueError("negatives must be >= 1")
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0")


class FastTextModel(Module):
    """Subword-hashing embedder trained on (mention, synonym) pairs."""

    def __init__(self, config: FastTextConfig | None = None):
        super().__init__()
        self.config = config or FastTextConfig()
        self.rng = as_rng(self.config.seed)
        self.bag = EmbeddingBag(self.config.buckets, self.config.dim, rng=self.rng)
        self._trained = False

    @property
    def dim(self) -> int:
        return self.config.dim

    @property
    def is_trained(self) -> bool:
        return self._trained

    def _bags(self, mentions: Sequence[str]) -> list[list[int]]:
        return [
            subword_ngrams(
                m, self.config.min_n, self.config.max_n, self.config.buckets
            )
            for m in mentions
        ]

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Mean-of-subword-vectors embedding, ``(n, dim)`` float32."""
        if not mentions:
            return np.empty((0, self.config.dim), dtype=np.float32)
        with no_grad():
            out = self.bag.forward_bags(self._bags(mentions))
        return out.data.astype(np.float32)

    def embed_tensor(self, mentions: Sequence[str]) -> Tensor:
        """Differentiable embedding (used when fine-tuned inside EmbLookup)."""
        return self.bag.forward_bags(self._bags(mentions))

    def fit_anchored(
        self, synonym_groups: Sequence[Sequence[str]]
    ) -> "FastTextModel":
        """Train by anchored regression: co-locate each entity's mentions.

        Every group (an entity's label + aliases) is assigned a fixed
        random unit-vector target and all of its surface forms regress
        onto it with MSE.  This optimises the stated goal directly —
        "embeddings of entity names and their synonyms are close
        together" — and, unlike SGNS over hashed n-grams, it does not
        make shared buckets fight each other, so semantically-only
        aliases (abbreviations, translations) co-locate reliably even at
        small training budgets.  It is both stronger and ~3x faster than
        :meth:`fit` on KG-sized corpora, and is the EmbLookup pipeline's
        default semantic-tower objective.
        """
        cfg = self.config
        pairs: list[tuple[str, np.ndarray]] = []
        for group in synonym_groups:
            forms = [normalize(m) for m in group if m]
            if not forms:
                continue
            target = self.rng.normal(size=cfg.dim)
            target /= np.linalg.norm(target) + 1e-12
            for form in forms:
                pairs.append((form, target))
        if not pairs:
            self._trained = True
            return self

        from repro.nn.loss import mse_loss

        optimizer = Adam(self.parameters(), lr=max(cfg.lr / 5.0, 1e-3))
        order = np.arange(len(pairs), dtype=np.int64)
        # Stack the targets once; the per-batch np.stack over a Python
        # list re-copied every target every epoch.
        target_matrix = np.stack([pair[1] for pair in pairs])
        for _ in range(max(cfg.epochs, 1)):
            self.rng.shuffle(order)
            for start in range(0, len(order), cfg.batch_size):
                chunk = order[start : start + cfg.batch_size]
                mentions = [pairs[i][0] for i in chunk]
                targets = target_matrix[chunk]
                loss = mse_loss(
                    self.bag.forward_bags(self._bags(mentions)), Tensor(targets)
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self._trained = True
        return self

    def fit(self, synonym_groups: Sequence[Sequence[str]]) -> "FastTextModel":
        """Train with skip-gram negative sampling over synonym groups.

        Each group holds the surface forms of one entity (label + aliases);
        positives are pairs within a group, negatives are mentions sampled
        from other groups.  (The EmbLookup pipeline defaults to
        :meth:`fit_anchored`, which is stronger on alias co-location; this
        SGNS variant matches the published fastText objective and backs
        the Table VII baseline.)
        """
        pairs: list[tuple[str, str]] = []
        all_mentions: list[str] = []
        for group in synonym_groups:
            forms = [normalize(m) for m in group if m]
            all_mentions.extend(forms)
            for i, anchor in enumerate(forms):
                for j, other in enumerate(forms):
                    if i != j:
                        pairs.append((anchor, other))
        if not pairs or not all_mentions:
            self._trained = True
            return self

        optimizer = Adam(self.parameters(), lr=self.config.lr)
        cfg = self.config
        pair_arr = np.arange(len(pairs), dtype=np.int64)
        for _ in range(cfg.epochs):
            self.rng.shuffle(pair_arr)
            for start in range(0, len(pair_arr), cfg.batch_size):
                batch_idx = pair_arr[start : start + cfg.batch_size]
                anchors = [pairs[i][0] for i in batch_idx]
                positives = [pairs[i][1] for i in batch_idx]
                negatives = [
                    all_mentions[int(self.rng.integers(0, len(all_mentions)))]
                    for _ in range(len(batch_idx) * cfg.negatives)
                ]
                loss = self._sgns_loss(anchors, positives, negatives)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self._trained = True
        return self

    def _sgns_loss(
        self,
        anchors: Sequence[str],
        positives: Sequence[str],
        negatives: Sequence[str],
    ) -> Tensor:
        """-log s(a.p) - sum -log s(-a.n), averaged over the batch."""
        cfg = self.config
        a = self.bag.forward_bags(self._bags(anchors))           # (B, D)
        p = self.bag.forward_bags(self._bags(positives))         # (B, D)
        n = self.bag.forward_bags(self._bags(negatives))         # (B*neg, D)
        batch = a.shape[0]

        pos_score = (a * p).sum(axis=1)                          # (B,)
        pos_loss = _softplus(-pos_score)

        n_resh = n.reshape(batch, cfg.negatives, cfg.dim)
        a_expanded = a.reshape(batch, 1, cfg.dim)
        neg_score = (a_expanded * n_resh).sum(axis=2)            # (B, neg)
        neg_loss = _softplus(neg_score).sum(axis=1)

        return (pos_loss + neg_loss).mean()


def _softplus(x: Tensor) -> Tensor:
    """Numerically-stable ``log(1 + exp(x))`` = relu(x) + log1p(exp(-|x|))."""
    # log(1+exp(x)) = max(x,0) + log(1+exp(-|x|))
    positive_part = x.relu()
    abs_x = (x * x).sqrt()
    return positive_part + ((-abs_x).exp() + 1.0).log()
