"""Character-CNN tower for syntactic similarity (paper Section III-B).

The paper specifies 5 convolutional layers with 8 kernels of size 3 and
max-pooling aggregation; CNN+max-pooling over one-hot strings preserves
edit-distance bounds (its inductive bias for typos).  We pool the sequence
length down between layers and project the flattened activations to the
output dimension with a linear head.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Conv1d, Linear, Module
from repro.nn.tensor import Tensor, no_grad
from repro.text.encoding import OneHotEncoder
from repro.utils.rng import as_rng

__all__ = ["CharCNNEncoder"]


class CharCNNEncoder(Module):
    """5-layer character CNN: one-hot ``(N, |A|, L)`` -> ``(N, out_dim)``.

    Parameters
    ----------
    encoder:
        One-hot encoder defining the alphabet and max length ``L``.
    out_dim:
        Output embedding dimensionality (64 in the paper).
    channels:
        Kernels per convolutional layer (8 in the paper).
    num_layers:
        Convolutional depth (5 in the paper).
    pool_every:
        A stride-2 max-pool is inserted after every ``pool_every``-th conv
        layer, shrinking the sequence before the flatten + linear head.
    """

    def __init__(
        self,
        encoder: OneHotEncoder,
        out_dim: int = 64,
        channels: int = 8,
        num_layers: int = 5,
        pool_every: int = 2,
        rng: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        generator = as_rng(rng)
        self.encoder = encoder
        self.out_dim = out_dim
        self.channels = channels
        self.num_layers = num_layers
        self.pool_every = pool_every

        length = encoder.max_length
        in_channels = encoder.alphabet.size
        self._convs: list[Conv1d] = []
        self._pool_after: list[bool] = []
        for layer in range(num_layers):
            conv = Conv1d(
                in_channels, channels, kernel_size=3, padding=1, rng=generator
            )
            setattr(self, f"conv{layer}", conv)
            self._convs.append(conv)
            in_channels = channels
            pool_here = pool_every > 0 and (layer + 1) % pool_every == 0 and length >= 2
            self._pool_after.append(pool_here)
            if pool_here:
                length //= 2
        self._final_length = length
        self.head = Linear(channels * length, out_dim, rng=generator)

    @property
    def dim(self) -> int:
        return self.out_dim

    def forward(self, x: Tensor) -> Tensor:
        """Encode one-hot batches ``(N, |A|, L)`` to embeddings ``(N, out_dim)``."""
        for conv, pool in zip(self._convs, self._pool_after):
            x = conv(x).relu()
            if pool:
                x = F.max_pool1d(x, kernel=2, stride=2)
        n = x.shape[0]
        flat = x.reshape(n, self.channels * self._final_length)
        return self.head(flat)

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Inference helper: strings -> numpy embeddings (no gradients)."""
        if not mentions:
            return np.empty((0, self.out_dim), dtype=np.float32)
        batch = Tensor(self.encoder.encode_batch(mentions))
        with no_grad():
            out = self.forward(batch)
        return out.data.astype(np.float32)
