"""The EmbLookup dual-tower embedding model (paper Figure 2).

``embedding = MLP([CharCNN(one-hot(m)); fastText(m)])`` — the CNN tower
carries syntactic similarity, the fastText tower semantic similarity, and a
two-layer ReLU MLP fuses them into a single 64-d vector trained end-to-end
with triplet loss (the fastText tower is pre-trained on the alias corpus
and optionally fine-tuned).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.embedding.cnn import CharCNNEncoder
from repro.embedding.fasttext import FastTextModel
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.text.encoding import OneHotEncoder
from repro.utils.rng import as_rng

__all__ = ["EmbLookupModel"]


class EmbLookupModel(Module):
    """CNN + fastText towers fused by a two-layer MLP.

    Parameters
    ----------
    encoder:
        One-hot encoder shared with the CNN tower.
    fasttext:
        A (typically pre-trained) :class:`FastTextModel`; its parameters are
        frozen during triplet training unless ``finetune_fasttext`` is true.
    out_dim:
        Final embedding dimensionality (64 in the paper).
    finetune_fasttext:
        When true, triplet-loss gradients flow into the fastText bucket
        table as well.
    normalize_output:
        When true, embeddings are L2-normalised, making the Euclidean
        ranking equivalent to cosine and keeping triplet distances on the
        margin's scale.
    """

    def __init__(
        self,
        encoder: OneHotEncoder,
        fasttext: FastTextModel,
        out_dim: int = 64,
        hidden_dim: int | None = None,
        finetune_fasttext: bool = False,
        normalize_output: bool = False,
        rng: int | np.random.Generator | None = None,
    ):
        super().__init__()
        generator = as_rng(rng)
        self.encoder = encoder
        self.out_dim = out_dim
        self.finetune_fasttext = finetune_fasttext
        self.normalize_output = normalize_output
        self.cnn = CharCNNEncoder(encoder, out_dim=out_dim, rng=generator)
        self.fasttext = fasttext
        fused = out_dim + fasttext.dim
        hidden = hidden_dim or fused
        self.fuse1 = Linear(fused, hidden, rng=generator)
        self.fuse2 = Linear(hidden, out_dim, rng=generator)

    @property
    def dim(self) -> int:
        return self.out_dim

    def parameters(self):
        """Trainable parameters; excludes frozen fastText weights."""
        for name, param in self.named_parameters():
            if not self.finetune_fasttext and name.startswith("fasttext."):
                continue
            yield param

    def forward_mentions(self, mentions: Sequence[str]) -> Tensor:
        """Differentiable forward pass over raw mention strings."""
        onehot = Tensor(self.encoder.encode_batch(mentions))
        syntactic = self.cnn(onehot)
        if self.finetune_fasttext:
            semantic = self.fasttext.embed_tensor(mentions)
        else:
            semantic = Tensor(self.fasttext.embed(mentions))
        fused = concatenate([syntactic, semantic], axis=1)
        out = self.fuse2(self.fuse1(fused).relu())
        if self.normalize_output:
            norm = (out * out).sum(axis=1, keepdims=True).sqrt() + 1e-8
            out = out / norm
        return out

    def forward(self, *args: Tensor) -> Tensor:  # pragma: no cover
        """Unsupported; use :meth:`forward_mentions` (string input)."""
        raise TypeError("EmbLookupModel requires forward_mentions(mentions)")

    def embed(self, mentions: Sequence[str]) -> np.ndarray:
        """Inference: strings -> float32 embeddings, no gradient tracking."""
        if not mentions:
            return np.empty((0, self.out_dim), dtype=np.float32)
        with no_grad():
            out = self.forward_mentions(list(mentions))
        return out.data.astype(np.float32)
