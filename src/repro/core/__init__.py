"""EmbLookup core: configuration and the train -> index -> lookup pipeline."""

from repro.core.config import EmbLookupConfig
from repro.core.pipeline import EmbLookup, LookupResult

__all__ = ["EmbLookup", "EmbLookupConfig", "LookupResult"]
