"""The EmbLookup pipeline: train the embedding model, index the entities,
serve ``lookup(q, k)``.

Stages (paper Figure 1):

1. **fit** — build the alphabet from the KG's surface forms, pre-train the
   fastText tower on synonym groups, mine triplets, train the dual-tower
   model with triplet loss (offline triplets first, online hard mining in
   the second half of the epochs).
2. **index** — embed every entity's label (optionally its aliases too) and
   load the vectors into a Flat (EL-NC) or PQ (EL) index.
3. **lookup** — embed the query string and return the entities whose
   embeddings are nearest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.core.config import EmbLookupConfig
from repro.embedding.emblookup_model import EmbLookupModel
from repro.embedding.fasttext import FastTextConfig, FastTextModel
from repro.index.base import VectorIndex
from repro.index.flat import FlatIndex
from repro.index.ivfpq import IVFPQIndex
from repro.index.partitioned import DEFAULT_PARTITION
from repro.index.pq import PQIndex
from repro.kg.graph import KnowledgeGraph
from repro.nn.loss import contrastive_losses, triplet_margin_losses
from repro.nn.optim import Adam
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor
from repro.text.alphabet import Alphabet
from repro.text.encoding import OneHotEncoder
from repro.text.tokenize import normalize
from repro.triplets.mining import Triplet, TripletMiner
from repro.utils.rng import as_rng

__all__ = ["EmbLookup", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """One candidate entity returned by ``lookup``."""

    entity_id: str
    distance: float


class EmbLookup:
    """End-to-end entity lookup system.

    >>> from repro.kg import generate_kg, SyntheticKGConfig
    >>> kg = generate_kg(SyntheticKGConfig(num_entities=200))
    >>> service = EmbLookup(EmbLookupConfig(epochs=2, triplets_per_entity=4))
    >>> service.fit(kg)                                   # doctest: +ELLIPSIS
    <repro.core.pipeline.EmbLookup object at ...>
    >>> candidates = service.lookup("germony", k=5)
    >>> len(candidates)
    5
    """

    def __init__(self, config: EmbLookupConfig | None = None):
        self.config = config or EmbLookupConfig()
        self.rng = as_rng(self.config.seed)
        self.model: EmbLookupModel | None = None
        self.index: VectorIndex | None = None
        self.encoder: OneHotEncoder | None = None
        self._row_to_entity: list[str] = []
        self._kg: KnowledgeGraph | None = None
        self.training_history: list[float] = []

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        kg: KnowledgeGraph,
        triplets: Sequence[Triplet] | None = None,
    ) -> "EmbLookup":
        """Train the model on ``kg`` and build the entity index.

        ``triplets`` overrides offline mining when supplied (used by the
        triplet-budget sweeps of Figure 3).
        """
        self._kg = kg
        corpus = [normalize(m) for e in kg.entities() for m in e.mentions]
        alphabet = Alphabet.fit(corpus)
        self.encoder = OneHotEncoder(alphabet, max_length=self.config.max_length)

        fasttext = FastTextModel(
            FastTextConfig(
                dim=self.config.embedding_dim,
                buckets=self.config.fasttext_buckets,
                epochs=self.config.fasttext_epochs,
                seed=int(self.rng.integers(0, 2**31)),
            )
        )
        synonym_groups = [list(e.mentions) for e in kg.entities()]
        if self.config.fasttext_objective == "anchored":
            fasttext.fit_anchored(synonym_groups)
        else:
            fasttext.fit(synonym_groups)

        self.model = EmbLookupModel(
            self.encoder,
            fasttext,
            out_dim=self.config.embedding_dim,
            finetune_fasttext=self.config.finetune_fasttext,
            normalize_output=self.config.normalize_output,
            rng=self.rng,
        )

        if triplets is None:
            miner = TripletMiner(kg, self.config.mining)
            triplets = miner.mine()
        self._train(list(triplets))
        self.build_index(kg)
        return self

    def _train(self, triplets: list[Triplet]) -> None:
        assert self.model is not None
        if not triplets or self.config.epochs == 0:
            return
        cfg = self.config
        optimizer = Adam(list(self.model.parameters()), lr=cfg.learning_rate)
        order = np.arange(len(triplets))
        hard_from = int(cfg.hard_mining_start * cfg.epochs)
        self.model.train()
        for epoch in range(cfg.epochs):
            online = epoch >= hard_from
            self.rng.shuffle(order)
            epoch_loss = 0.0
            steps = 0
            for start in range(0, len(order), cfg.batch_size):
                chunk = order[start : start + cfg.batch_size]
                batch = [triplets[i] for i in chunk]
                loss = self._batch_loss(batch, online=online)
                if loss is None:
                    continue
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                steps += 1
            self.training_history.append(epoch_loss / max(steps, 1))
        self.model.eval()

    def _batch_loss(self, batch: list[Triplet], online: bool) -> Tensor | None:
        """Triplet loss for one batch; in online mode easy triplets are
        masked out so only hard / semi-hard examples contribute."""
        assert self.model is not None
        anchors = self.model.forward_mentions([t.anchor for t in batch])
        positives = self.model.forward_mentions([t.positive for t in batch])
        negatives = self.model.forward_mentions([t.negative for t in batch])
        loss_fn = (
            contrastive_losses
            if self.config.loss == "contrastive"
            else triplet_margin_losses
        )
        losses = loss_fn(
            anchors, positives, negatives, margin=self.config.margin
        )
        if not online:
            return losses.mean()
        mask = (losses.data > 0).astype(losses.data.dtype)
        active = mask.sum()
        if active == 0:
            return None
        return (losses * Tensor(mask)).sum() * (1.0 / active)

    # -- indexing --------------------------------------------------------------------

    def index_rows(
        self, kg: KnowledgeGraph | None = None
    ) -> tuple[list[str], list[str]]:
        """The (normalized mention, entity id) rows the index stores.

        Row ``i`` of the built index embeds ``mentions[i]`` and resolves to
        ``entity_ids[i]``; alias rows are included when the config enables
        them.  Public so alternative serving stacks (e.g. the sharded
        :class:`repro.serving.LookupEngine`) can rebuild an index with the
        same row <-> entity correspondence.
        """
        kg = kg or self._kg
        if kg is None:
            raise RuntimeError("no knowledge graph available for indexing")
        mentions: list[str] = []
        entity_ids: list[str] = []
        for entity in kg.entities():
            mentions.append(normalize(entity.label))
            entity_ids.append(entity.entity_id)
            if self.config.index_entity_aliases:
                for alias in entity.aliases:
                    mentions.append(normalize(alias))
                    entity_ids.append(entity.entity_id)
        return mentions, entity_ids

    def index_row_types(self, kg: KnowledgeGraph | None = None) -> list[str]:
        """Partition key (primary entity type) of each index row.

        Aligned with :meth:`index_rows`: row ``i`` belongs to the primary
        type of the entity it resolves to (alias rows share their
        entity's key; untyped entities map to
        :data:`repro.index.partitioned.DEFAULT_PARTITION`).  This is what
        the serving engine feeds a
        :class:`~repro.index.partitioned.TypePartitionedIndex` so
        type-constrained lookups scan only matching partitions.
        """
        kg = kg or self._kg
        if kg is None:
            raise RuntimeError("no knowledge graph available for indexing")
        keys: list[str] = []
        for entity in kg.entities():
            key = entity.primary_type or DEFAULT_PARTITION
            rows = 1
            if self.config.index_entity_aliases:
                rows += len(entity.aliases)
            keys.extend([key] * rows)
        return keys

    @property
    def kg(self) -> KnowledgeGraph | None:
        """The knowledge graph the pipeline was fitted / indexed over."""
        return self._kg

    @property
    def row_entity_ids(self) -> list[str]:
        """Entity id of each index row (copy; aligned with the built index)."""
        return list(self._row_to_entity)

    def build_index(self, kg: KnowledgeGraph | None = None) -> None:
        """(Re)build the vector index from the trained model."""
        if self.model is None:
            raise RuntimeError("EmbLookup.build_index called before fit()")
        kg = kg or self._kg
        if kg is None:
            raise RuntimeError("no knowledge graph available for indexing")
        self._kg = kg

        mentions, self._row_to_entity = self.index_rows(kg)
        vectors = self._embed_in_batches(mentions)
        self.index = self._make_index()
        self.index.train(vectors)
        self.index.add(vectors)

    def _make_index(self) -> VectorIndex:
        cfg = self.config
        seed = int(self.rng.integers(0, 2**31))
        if cfg.compression == "none":
            return FlatIndex(cfg.embedding_dim)
        if cfg.compression == "pq":
            return PQIndex(cfg.embedding_dim, m=cfg.pq_m, nbits=cfg.pq_nbits, seed=seed)
        return IVFPQIndex(
            cfg.embedding_dim,
            nlist=cfg.ivf_nlist,
            m=cfg.pq_m,
            nbits=cfg.pq_nbits,
            nprobe=cfg.ivf_nprobe,
            seed=seed,
        )

    def _embed_in_batches(self, mentions: list[str], batch: int = 512) -> np.ndarray:
        assert self.model is not None
        chunks = [
            self.model.embed(mentions[i : i + batch])
            for i in range(0, len(mentions), batch)
        ]
        if not chunks:
            return np.empty((0, self.config.embedding_dim), dtype=np.float32)
        return np.concatenate(chunks, axis=0)

    # -- lookup ----------------------------------------------------------------------

    def embed_queries(self, queries: Sequence[str]) -> np.ndarray:
        """Embed query strings (normalized first) with the trained model."""
        if self.model is None:
            raise RuntimeError("EmbLookup.embed_queries called before fit()")
        return self._embed_in_batches([normalize(q) for q in queries])

    def lookup(self, query: str, k: int = 10) -> list[LookupResult]:
        """Top-``k`` candidate entities for one query string."""
        return self.lookup_batch([query], k)[0]

    def lookup_batch(
        self, queries: Sequence[str], k: int = 10
    ) -> list[list[LookupResult]]:
        """Bulk lookup: one candidate list per query.

        Rows mapping to the same entity (when aliases are indexed) are
        deduplicated, keeping the closest row.
        """
        if self.model is None or self.index is None:
            raise RuntimeError("EmbLookup.lookup called before fit()")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not queries:
            return []
        embeddings = self.embed_queries(queries)
        # Over-fetch when aliases are indexed so dedup still yields k.
        fetch = k * 3 if self.config.index_entity_aliases else k
        fetch = min(fetch, self.index.ntotal) or k
        result = self.index.search(embeddings, fetch)
        out: list[list[LookupResult]] = []
        for row_ids, row_d in zip(result.ids, result.distances):
            seen: set[str] = set()
            candidates: list[LookupResult] = []
            for idx, dist in zip(row_ids, row_d):
                if idx < 0:
                    continue
                entity_id = self._row_to_entity[int(idx)]
                if entity_id in seen:
                    continue
                seen.add(entity_id)
                candidates.append(LookupResult(entity_id, float(dist)))
                if len(candidates) == k:
                    break
            out.append(candidates)
        return out

    def clone_with_compression(self, compression: str) -> "EmbLookup":
        """A new service sharing this trained model with a different index.

        Used to compare EL (PQ) against EL-NC (flat) without retraining —
        both variants embed with the identical model, exactly as the paper's
        EL / EL-NC columns do.
        """
        if self.model is None or self.encoder is None or self._kg is None:
            raise RuntimeError("clone_with_compression requires a fitted service")
        from dataclasses import replace

        clone = EmbLookup(replace(self.config, compression=compression))
        clone.model = self.model
        clone.encoder = self.encoder
        clone.build_index(self._kg)
        return clone

    # -- persistence ------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist config, alphabet, model weights, and the row mapping."""
        if self.model is None or self.encoder is None:
            raise RuntimeError("EmbLookup.save called before fit()")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "config": {
                "embedding_dim": self.config.embedding_dim,
                "max_length": self.config.max_length,
                "compression": self.config.compression,
                "pq_m": self.config.pq_m,
                "pq_nbits": self.config.pq_nbits,
                "index_entity_aliases": self.config.index_entity_aliases,
                "fasttext_buckets": self.config.fasttext_buckets,
                "normalize_output": self.config.normalize_output,
                "seed": self.config.seed,
            },
            "alphabet": "".join(self.encoder.alphabet.chars),
            "row_to_entity": self._row_to_entity,
        }
        (directory / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        save_state_dict(self.model.state_dict(), directory / "model.npz")

    @classmethod
    def load(cls, directory: str | Path, kg: KnowledgeGraph) -> "EmbLookup":
        """Restore a saved service and rebuild its index over ``kg``."""
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise FileNotFoundError(f"no saved EmbLookup at {directory}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        cfg_d = meta["config"]
        config = EmbLookupConfig(
            embedding_dim=cfg_d["embedding_dim"],
            max_length=cfg_d["max_length"],
            compression=cfg_d["compression"],
            pq_m=cfg_d["pq_m"],
            pq_nbits=cfg_d["pq_nbits"],
            index_entity_aliases=cfg_d["index_entity_aliases"],
            fasttext_buckets=cfg_d["fasttext_buckets"],
            normalize_output=cfg_d.get("normalize_output", True),
            seed=cfg_d["seed"],
        )
        service = cls(config)
        alphabet = Alphabet(meta["alphabet"])
        service.encoder = OneHotEncoder(alphabet, max_length=config.max_length)
        fasttext = FastTextModel(
            FastTextConfig(
                dim=config.embedding_dim,
                buckets=config.fasttext_buckets,
                seed=config.seed,
            )
        )
        service.model = EmbLookupModel(
            service.encoder,
            fasttext,
            out_dim=config.embedding_dim,
            normalize_output=config.normalize_output,
            rng=config.seed,
        )
        state = load_state_dict(directory / "model.npz")
        service.model.load_state_dict(state)
        service.model.eval()
        service.build_index(kg)
        return service
