"""EmbLookup configuration.

Paper defaults: 64-d embeddings, triplet margin loss, Adam, batch 128,
100 epochs (offline mining for the first half, online hard mining for the
second), 100 triplets per entity, and product quantization to 8 bytes.
The constructor defaults here are scaled for a single-CPU box; the paper
values are documented per field and used by the benchmark harness where
runtime allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.triplets.mining import TripletMiningConfig

__all__ = ["EmbLookupConfig"]


@dataclass(frozen=True)
class EmbLookupConfig:
    """All knobs of the EmbLookup pipeline.

    Attributes
    ----------
    embedding_dim:
        Final embedding size (paper: 64).
    max_length:
        One-hot width ``L``; longer mentions are truncated.
    epochs:
        Training epochs (paper: 100).  The first ``hard_mining_start``
        fraction uses all triplets; afterwards easy (zero-loss) triplets
        are skipped.
    batch_size:
        Triplets per step (paper: 128).
    margin:
        Triplet-loss margin (scaled for L2-normalised embeddings, where
        squared distances live in [0, 4]).
    loss:
        ``"triplet"`` (the paper's objective) or ``"contrastive"`` (the
        pairwise alternative flagged in its future work).
    learning_rate:
        Adam learning rate.
    hard_mining_start:
        Fraction of epochs after which online hard/semi-hard mining kicks
        in (paper: 0.5).
    triplets_per_entity:
        Offline mining budget (paper default: 100).
    compression:
        ``"pq"`` (the paper's EL variant), ``"none"`` (EL-NC), or
        ``"ivfpq"``.
    pq_m / pq_nbits:
        Product-quantization sub-vector count and bits per code
        (paper: 8 x 8 bits = 8 bytes/entity).
    fasttext_epochs / fasttext_buckets:
        Semantic-tower pre-training knobs.
    fasttext_objective:
        ``"anchored"`` (default; regress each entity's mentions onto a
        shared target — strongest alias co-location) or ``"sgns"`` (the
        published fastText skip-gram objective).
    finetune_fasttext:
        Whether triplet training updates the fastText table too.
    normalize_output:
        L2-normalise embeddings (cosine-equivalent ranking; on by default —
        it stabilises the fixed-margin triplet loss).
    index_entity_aliases:
        When true, aliases are indexed as additional rows per entity
        (higher recall, larger index — the optional variant of
        Section III-C).
    query_cache_size:
        When positive, services built over this pipeline keep an LRU
        query cache of that capacity (normalized query -> result) —
        the serving-path optimisation for skewed real-world traffic;
        0 (the default) disables caching so benchmark tables measure
        the raw scan.
    seed:
        Master seed; all internal randomness derives from it.
    """

    embedding_dim: int = 64
    max_length: int = 32
    epochs: int = 20
    batch_size: int = 128
    margin: float = 0.4
    loss: str = "triplet"
    learning_rate: float = 1e-3
    hard_mining_start: float = 0.5
    triplets_per_entity: int = 20
    compression: str = "pq"
    pq_m: int = 8
    pq_nbits: int = 8
    ivf_nlist: int = 64
    ivf_nprobe: int = 8
    fasttext_epochs: int = 3
    fasttext_buckets: int = 2**15
    fasttext_objective: str = "anchored"
    finetune_fasttext: bool = False
    normalize_output: bool = True
    index_entity_aliases: bool = False
    query_cache_size: int = 0
    seed: int = 41
    mining: TripletMiningConfig = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be positive")
        if self.embedding_dim % self.pq_m != 0:
            raise ValueError(
                f"embedding_dim {self.embedding_dim} must be divisible by "
                f"pq_m {self.pq_m}"
            )
        if self.max_length < 1:
            raise ValueError("max_length must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.loss not in ("triplet", "contrastive"):
            raise ValueError(f"unknown loss {self.loss!r}")
        if self.fasttext_objective not in ("anchored", "sgns"):
            raise ValueError(
                f"unknown fasttext_objective {self.fasttext_objective!r}"
            )
        if not 0.0 <= self.hard_mining_start <= 1.0:
            raise ValueError("hard_mining_start must be in [0, 1]")
        if self.compression not in ("pq", "none", "ivfpq"):
            raise ValueError(f"unknown compression {self.compression!r}")
        if self.query_cache_size < 0:
            raise ValueError("query_cache_size must be >= 0")
        if self.mining is None:
            object.__setattr__(
                self,
                "mining",
                TripletMiningConfig(
                    triplets_per_entity=self.triplets_per_entity,
                    seed=self.seed,
                ),
            )

    @classmethod
    def paper_defaults(cls) -> "EmbLookupConfig":
        """The full-scale configuration reported in the paper."""
        return cls(
            embedding_dim=64,
            max_length=48,
            epochs=100,
            batch_size=128,
            triplets_per_entity=100,
            compression="pq",
        )
